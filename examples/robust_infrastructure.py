"""Fault-tolerant backbone extraction for an infrastructure network.

The paper motivates k-VCCs with transportation/network robustness: a
k-VCC guarantees k vertex-disjoint paths between every pair of members,
so the subnetwork survives any k-1 simultaneous node failures.

This example models a backbone network of regional meshes connected by
thin long-haul links, extracts the k-VCC backbones, and then *proves*
the guarantee empirically by knocking out adversarial vertex sets.

Run:  python examples/robust_infrastructure.py
"""

import itertools

from repro import Graph, ripple
from repro.graph import community_graph, is_connected


def worst_case_failures(graph: Graph, members: frozenset, k: int) -> bool:
    """Check survival of every (k-1)-subset removal inside a component.

    Exhaustive over the component's vertices — fine at demo scale and
    exactly the property the k-VCC definition promises.
    """
    vertices = sorted(members, key=repr)
    sub = graph.subgraph(members)
    for failed in itertools.combinations(vertices, k - 1):
        survivors = members - set(failed)
        if len(survivors) <= 1:
            continue
        if not is_connected(sub.subgraph(survivors)):
            return False
    return True


def main() -> None:
    k = 3
    # Three regional meshes (each a triangle-rich ring, 3-connected),
    # chained by single long-haul links that are NOT fault tolerant.
    graph = community_graph([14, 16, 14], k=k, seed=7, bridge_width=1)
    print(f"backbone network: {graph.num_vertices} routers, "
          f"{graph.num_edges} links\n")

    result = ripple(graph, k)
    print(f"{result.num_components} fault-tolerant zones "
          f"(each survives any {k - 1} router failures):")
    for index, zone in enumerate(result.components, start=1):
        survives = worst_case_failures(graph, zone, k)
        print(f"  zone {index}: {len(zone)} routers — verified against "
              f"all {k - 1}-failure combinations: {survives}")

    outside = graph.vertex_set() - result.covered_vertices()
    print(f"\nrouters outside every zone: {sorted(outside) or 'none'}")
    print("the long-haul links between zones are single points of "
          "failure — exactly what the enumeration exposes.")

    # Constructive guarantee: materialise the k disjoint routes between
    # two routers of the largest zone (what a router would actually
    # install as primary + backup paths).
    from repro.flow import vertex_disjoint_paths

    zone = max(result.components, key=len)
    members = sorted(zone)
    a, b = members[0], members[len(members) // 2]
    routes = vertex_disjoint_paths(graph, a, b, limit=k)
    print(f"\n{k} vertex-disjoint routes between router {a} and {b}:")
    for route in routes:
        print("  " + " -> ".join(map(str, route)))


if __name__ == "__main__":
    main()
