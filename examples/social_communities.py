"""Community detection in a collaboration network.

The intro scenario of the paper: find cohesive author communities in a
collaboration graph where papers form cliques of their co-authors. The
k-VCC notion asks for groups that stay connected even if any k-1
members leave — a much stronger cohesion guarantee than k-core.

This example:

1. generates a collaboration-style graph (chained author cliques plus
   cross-group noise),
2. contrasts the k-core (weak: degree-based) with the k-VCCs (strong:
   connectivity-based) at the same k,
3. scores RIPPLE and the older VCCE-BU heuristic against the exact
   enumeration with the paper's F_same / J_Index metrics.

Run:  python examples/social_communities.py
"""

from repro import accuracy_report, ripple, vcce_bu, vcce_td
from repro.graph import community_graph, k_core


def main() -> None:
    # Four research groups. Each group is triangle-rich and 4-vertex
    # connected; a couple of "junior collaborator" pairs hang off each
    # group with only 3 in-group links each (plus their mutual link);
    # groups are tied together by two prolific cross-group authors.
    k = 4
    graph = community_graph(
        [44, 48, 42, 46], k=k, seed=42,
        periphery_pairs=2, bridge_style="two_star",
    )
    print(f"collaboration graph: {graph.num_vertices} authors, "
          f"{graph.num_edges} co-authorships; looking for {k}-VCCs\n")

    # --- k-core vs k-VCC -------------------------------------------------
    core = k_core(graph, k)
    exact = vcce_td(graph, k)
    print(f"{k}-core keeps {core.num_vertices} authors in one blob;")
    print(f"{k}-VCC enumeration splits them into "
          f"{exact.num_components} robust communities:")
    for component in exact.components:
        print(f"  community of {len(component)}: "
              f"{sorted(component)[:8]}{' …' if len(component) > 8 else ''}")
    print()

    # --- heuristics vs exact ---------------------------------------------
    for label, algorithm in (("RIPPLE", ripple), ("VCCE-BU", vcce_bu)):
        result = algorithm(graph, k)
        scores = accuracy_report(result.components, exact.components)
        print(f"{label:8s}: {result.num_components} communities, "
              f"F_same={scores['F_same']:.1f}%  "
              f"J_Index={scores['J_Index']:.1f}%")

    print("\nNote: the baseline loses twice — its unitary expansion "
          "misses the junior-collaborator pairs, and its neighbour-"
          "counting merge rule fuses groups that merely share two "
          "prolific authors. RIPPLE fixes both.")


if __name__ == "__main__":
    main()
