"""Quickstart: enumerate k-vertex connected components with RIPPLE.

Builds the paper's Figure 1 style example — two dense groups tied
together by weak links — and enumerates its k-VCCs for several k,
showing how the community structure sharpens as k grows.

Run:  python examples/quickstart.py
"""

from repro import Graph, is_k_vertex_connected, ripple, vcce_td


def build_example() -> Graph:
    """A 16-vertex graph with a K5, a 3-connected ring, and a fringe."""
    graph = Graph()
    # Group A: a clique of 5 (4-vertex connected).
    for i in range(5):
        for j in range(i + 1, 5):
            graph.add_edge(f"a{i}", f"a{j}")
    # Group B: a ring of 9 where each vertex links 2 ahead; dropping
    # one chord leaves it exactly 3-vertex connected.
    for i in range(9):
        graph.add_edge(f"b{i}", f"b{(i + 1) % 9}")
        graph.add_edge(f"b{i}", f"b{(i + 2) % 9}")
    graph.remove_edge("b0", "b2")
    # Weak ties between groups and one pendant vertex.
    graph.add_edge("a0", "b0")
    graph.add_edge("a1", "b4")
    graph.add_edge("b2", "hanger")
    return graph


def main() -> None:
    graph = build_example()
    print(f"input graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges\n")

    for k in (2, 3, 4):
        result = ripple(graph, k)
        print(result.summary())
        for component in result.components:
            members = ", ".join(sorted(component))
            verified = is_k_vertex_connected(graph.subgraph(component), k)
            print(f"  [{members}]  verified {k}-vertex connected: "
                  f"{verified}")
        print()

    # RIPPLE is a heuristic; cross-check against the exact enumerator.
    for k in (2, 3, 4):
        exact = vcce_td(graph, k)
        heuristic = ripple(graph, k)
        match = set(exact.components) == set(heuristic.components)
        print(f"k={k}: RIPPLE matches the exact result: {match}")


if __name__ == "__main__":
    main()
