"""Explore the benchmark dataset registry.

Walks every registered dataset, prints its statistics (the Table II
columns), and runs a quick single-k accuracy comparison of RIPPLE
against the exact enumerator — a miniature of the full benchmark
harness, useful to sanity-check an installation in under a minute.

Run:  python examples/dataset_explorer.py [dataset ...]
"""

import sys
import time

from repro import accuracy_report, ripple, vcce_td
from repro.datasets import DATASETS


def explore(name: str) -> None:
    dataset = DATASETS[name]
    graph = dataset.graph()
    k = dataset.default_k
    print(f"{name}  (mirrors {dataset.mirrors})")
    print(f"  {dataset.why}")
    print(
        f"  |V|={graph.num_vertices}  |E|={graph.num_edges}  "
        f"avg deg={graph.average_degree():.2f}  k values={dataset.ks}"
    )

    start = time.perf_counter()
    exact = vcce_td(graph, k)
    exact_time = time.perf_counter() - start
    start = time.perf_counter()
    heuristic = ripple(graph, k)
    ripple_time = time.perf_counter() - start
    scores = accuracy_report(heuristic.components, exact.components)
    print(
        f"  k={k}: exact {exact.num_components} components in "
        f"{exact_time:.2f}s; RIPPLE {heuristic.num_components} in "
        f"{ripple_time:.2f}s "
        f"(F_same {scores['F_same']:.1f}%, J_Index {scores['J_Index']:.1f}%)"
    )
    print()


def main() -> None:
    names = sys.argv[1:] or list(DATASETS)
    unknown = [n for n in names if n not in DATASETS]
    if unknown:
        print(f"unknown datasets: {unknown}; choose from {list(DATASETS)}")
        raise SystemExit(2)
    for name in names:
        explore(name)


if __name__ == "__main__":
    main()
