"""Anatomy of the paper's core idea: UE vs ME vs RME on Figure 2.

Rebuilds the paper's Figure 2 instance — a seed community surrounded by
pairs of vertices that each have only k-1 links into the seed but
support each other — and walks the three expansion strategies over it:

* Unitary Expansion (the VCCE-BU baseline) is stuck immediately;
* exact Multiple Expansion absorbs everything (and is provably maximal);
* Ring-based Multiple Expansion gets the same result via cheap clique
  checks instead of max-flow calls.

Run:  python examples/expansion_anatomy.py
"""

from repro import PhaseTimer
from repro.core import multiple_expansion, ring_expansion, unitary_expansion
from repro.graph import clique_graph, ue_trap_graph


def figure2() -> tuple:
    """The exact Figure 2 instance of the paper (k = 3)."""
    g = clique_graph(5, offset=1)  # seed {1..5}
    edges = [
        (6, 1), (6, 2),      # v6: two anchors
        (7, 4), (7, 5),      # v7: two anchors
        (6, 7),              # …but they support each other
        (8, 6), (8, 2),      # second pair, reachable once {6,7} join
        (9, 7), (9, 3),
        (8, 9),
    ]
    for u, v in edges:
        g.add_edge(u, v)
    return g, {1, 2, 3, 4, 5}


def main() -> None:
    k = 3
    graph, seed = figure2()
    print(f"Figure 2 instance: seed {sorted(seed)} in a "
          f"{graph.num_vertices}-vertex graph, k={k}\n")

    ue = unitary_expansion(graph, k, seed)
    print(f"Unitary Expansion  : {sorted(ue)}"
          f"   (stalled — every candidate alone has < {k} anchors)")

    timer = PhaseTimer()
    me = multiple_expansion(graph, k, seed, hops=None, timer=timer)
    print(f"Multiple Expansion : {sorted(me)}"
          f"   ({timer.counter('me_flow_calls')} max-flow calls)")

    timer = PhaseTimer()
    rme = ring_expansion(graph, k, seed, timer=timer)
    print(f"Ring-based ME      : {sorted(rme)}"
          f"   ({timer.counter('rme_cliques_absorbed')} cliques absorbed,"
          f" zero max-flow calls)")

    # The same effect at scale: a long chain of mutually supporting
    # pairs. UE recovers none of the tail, RME recovers all of it.
    print("\n--- scaling the trap: a chain of 12 support pairs ---")
    chain = ue_trap_graph(k, tail=12, seed=1)
    core = set(range(2 * k))
    ue_tail = len(unitary_expansion(chain, k, core)) - len(core)
    rme_tail = len(ring_expansion(chain, k, core)) - len(core)
    print(f"tail vertices absorbed: UE {ue_tail}/24, RME {rme_tail}/24")


if __name__ == "__main__":
    main()
