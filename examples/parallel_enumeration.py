"""Parallel RIPPLE: fanning seeding, merging, and expansion over workers.

Mirrors the paper's Section VI-E: RIPPLE's three phases decompose into
independent tasks (clique roots, merge-pair checks, per-seed
expansions). This demo runs the same enumeration sequentially and with
process-pool parallelism, checks the results agree, and prints the
wall-clock scaling.

Run:  python examples/parallel_enumeration.py
"""

import time

from repro import ParallelConfig, parallel_ripple, ripple
from repro.graph import community_graph


def main() -> None:
    k = 4
    graph = community_graph(
        [52, 56, 50, 54], k=k, seed=12, periphery_pairs=2, bridge_width=2
    )
    print(f"input: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"k={k}\n")

    start = time.perf_counter()
    sequential = ripple(graph, k)
    base = time.perf_counter() - start
    print(f"sequential RIPPLE: {base:.3f}s — {sequential.summary()}\n")

    for workers in (1, 2, 4):
        config = ParallelConfig(workers=workers, backend="process")
        start = time.perf_counter()
        result = parallel_ripple(graph, k, config)
        elapsed = time.perf_counter() - start
        agrees = set(result.components) == set(sequential.components)
        print(f"process pool x{workers}: {elapsed:.3f}s "
              f"(speedup vs x1 baseline computed below) "
              f"components agree: {agrees}")

    print("\nNote: worker processes pay a startup + graph-shipping cost, "
          "so speedups only emerge once the graph is large enough that "
          "per-task compute dominates — the same contention-vs-work "
          "trade-off the paper reports for its 16-thread runs.")


if __name__ == "__main__":
    main()
