"""Build-your-own bottom-up pipeline: the full configuration grid.

Algorithm 5 of the paper is one point in a configuration space this
library exposes directly: {QkVCS, LkVCS} seeding × {UE, RME, ME}
expansion × {FBM, NBM} merging × round ordering. This demo runs the
whole grid on one graph with known ground truth and prints a league
table — the paper's Table V, generalised.

Run:  python examples/custom_pipeline.py
"""

import itertools
import time

from repro import accuracy_report, bottom_up_pipeline, vcce_td
from repro.graph import community_graph


def main() -> None:
    k = 4
    graph = community_graph(
        [40, 44, 42], k=k, seed=21,
        periphery_pairs=2, mixed_chains=1, bridge_style="two_star",
    )
    exact = vcce_td(graph, k)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"exact result: {exact.num_components} {k}-VCCs\n")

    grid = itertools.product(
        ("qkvcs", "lkvcs"), ("rme", "ue", "me"), ("fbm", "nbm")
    )
    print(f"{'seeding':8} {'expand':7} {'merge':6} "
          f"{'time':>7} {'F_same':>8} {'J_Index':>8}")
    rows = []
    for seeding, expansion, merging in grid:
        start = time.perf_counter()
        result = bottom_up_pipeline(
            graph, k, seeding=seeding, expansion=expansion,
            merging=merging,
        )
        elapsed = time.perf_counter() - start
        scores = accuracy_report(result.components, exact.components)
        rows.append((seeding, expansion, merging, elapsed, scores))
        print(f"{seeding:8} {expansion:7} {merging:6} "
              f"{elapsed:6.2f}s {scores['F_same']:7.1f}% "
              f"{scores['J_Index']:7.1f}%")

    best = max(rows, key=lambda r: (r[4]["J_Index"], -r[3]))
    print(f"\nbest configuration: {best[0]}+{best[1]}+{best[2]} — "
          "the paper's RIPPLE recipe (QkVCS + RME + FBM) should be on "
          "or near the accuracy frontier, with ME variants trading "
          "time for the last points of accuracy.")


if __name__ == "__main__":
    main()
