"""The k-VCC hierarchy: Figure 1 of the paper, reproduced and extended.

Builds a graph with the Figure 1 structure (a K5, a larger 3-connected
group, a connector, and a pendant) and prints the full decomposition
for every k, then ranks vertices by their deepest level — a
connectivity-based importance score that, unlike the k-core number,
cannot be inflated by dense-but-separable neighbourhoods.

Run:  python examples/connectivity_hierarchy.py
"""

import itertools

from repro import Graph, kvcc_hierarchy, membership_levels
from repro.graph import core_numbers


def figure1_graph() -> Graph:
    """The running example of the paper's Figure 1 (16 vertices)."""
    g = Graph()
    for u, v in itertools.combinations(range(10, 15), 2):
        g.add_edge(u, v)  # G2: a K5 → 4-vertex connected
    for i in range(9):  # G3: ring with chords → 3-vertex connected
        g.add_edge(1 + i, 1 + (i + 1) % 9)
        g.add_edge(1 + i, 1 + (i + 2) % 9)
    g.remove_edge(1, 3)
    g.add_edge(15, 1)   # v15 ties the groups together …
    g.add_edge(15, 2)
    g.add_edge(15, 10)
    g.add_edge(15, 11)
    g.add_edge(9, 14)   # … plus a direct bridge: 2- but not 3-connected
    g.add_edge(16, 9)   # v16 hangs off by a single edge
    return g


def main() -> None:
    graph = figure1_graph()
    print(f"Figure 1 graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges\n")

    levels = kvcc_hierarchy(graph)
    for k in sorted(levels):
        rendered = "; ".join(
            "{" + ", ".join(f"v{u}" for u in sorted(c)) + "}"
            for c in levels[k]
        )
        print(f"k={k}: {len(levels[k])} component(s): {rendered}")

    print("\nvertex importance: deepest k-VCC level vs k-core number")
    depth = membership_levels(graph)
    core = core_numbers(graph)
    header = f"{'vertex':>7} {'k-VCC level':>12} {'core number':>12}"
    print(header)
    for u in sorted(graph.vertices()):
        print(f"{'v' + str(u):>7} {depth[u]:>12} {core[u]:>12}")

    print("\nNote how v15 carries core number 3 (it touches both dense "
          "groups) while its true connectivity level is only 2 — it "
          "can be split off by removing two vertices. The k-VCC "
          "hierarchy sees through local density.")


if __name__ == "__main__":
    main()
