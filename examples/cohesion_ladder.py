"""The cohesion ladder: k-core vs k-truss vs k-ECC vs k-VCC.

The paper's introduction argues that local density notions (cores,
trusses, cliques) miss what actually holds a community together —
connectivity — and that vertex connectivity is the strongest practical
guarantee. This demo makes that argument concrete on one graph: two
genuinely robust groups joined through a deceptive "dense waist" that
every local model swallows and only connectivity-based models reject.

Run:  python examples/cohesion_ladder.py
"""

from repro import ripple
from repro.cohesion import k_edge_components, k_truss
from repro.graph import Graph, community_graph, k_core
from repro.graph.traversal import connected_components


def build_waisted_graph(k: int) -> Graph:
    """Two k-connected communities joined through two hub vertices.

    The hubs make the waist look dense (high degree, many triangles)
    and even k-EDGE-connected (each hub carries k edges per side), but
    the two hub *vertices* are a cut of size 2: only vertex
    connectivity sees the fragility.
    """
    g = community_graph([24, 24], k=k, seed=5, bridge_width=1)
    # delete the thin bridge; rebuild the connection through two hubs
    # that each form a (k+1)-clique with vertices of both sides
    for u, v in list(g.edges()):
        if (u < 24) != (v < 24):
            g.remove_edge(u, v)
    hub1, hub2 = "hub1", "hub2"
    g.add_edge(hub1, hub2)
    for side_start in (0, 24):
        anchors = list(range(side_start, side_start + k))
        for hub in (hub1, hub2):
            for a in anchors:
                g.add_edge(hub, a)
    return g


def main() -> None:
    k = 4
    graph = build_waisted_graph(k)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} "
          f"edges; two robust groups + a deceptive 2-hub waist; k={k}\n")

    core = k_core(graph, k)
    core_comps = [c for c in connected_components(core) if len(c) > 1]
    print(f"{k}-core:  {len(core_comps)} component(s), sizes "
          f"{sorted(map(len, core_comps), reverse=True)}")

    truss = k_truss(graph, k)
    truss_comps = [
        c for c in connected_components(truss) if len(c) > 1
    ]
    print(f"{k}-truss: {len(truss_comps)} component(s), sizes "
          f"{sorted(map(len, truss_comps), reverse=True)}")

    eccs = k_edge_components(graph, k)
    print(f"{k}-ECC:   {len(eccs)} component(s), sizes "
          f"{sorted(map(len, eccs), reverse=True)}")

    vccs = ripple(graph, k)
    print(f"{k}-VCC:   {vccs.num_components} component(s), sizes "
          f"{sorted(map(len, vccs.components), reverse=True)}")

    print("\nevery weaker model — degree, triangles, even edge "
          "connectivity — glues the graph into one blob: the waist "
          "survives any 3 LINK failures. But the two hub ROUTERS are "
          "a vertex cut of size 2, and only the k-VCC model exposes "
          "it. This is the paper's case for vertex connectivity as "
          "the community-cohesion gold standard.")


if __name__ == "__main__":
    main()
