"""Extra (beyond-paper) benches: scaling behaviour and flow engines.

The paper's 10×–46× runtime gaps live at million-vertex scale; these
benches show the *mechanisms* at reachable sizes:

* ``test_scaling_with_graph_size`` — the top-down enumerator's cost
  grows superlinearly on flow-bound structure while RIPPLE stays close
  to linear, so the ratio widens with n. This is the scale-dependence
  EXPERIMENTS.md cites when explaining which paper magnitudes carry
  over.
* ``test_flow_engine_comparison`` — Dinic vs the Even–Tarjan reference
  engine on vertex-split certification workloads (why Dinic is the
  library default).
"""

import time

from repro.bench import render_table
from repro.core import ripple, vcce_td
from repro.datasets import DATASETS
from repro.flow import Dinic, EvenTarjan
from repro.graph import circulant_graph, community_graph


def test_scaling_with_graph_size(benchmark, emit):
    sizes = (40, 80, 160)

    def sweep():
        rows = []
        for size in sizes:
            graph = community_graph(
                [size, size], k=4, seed=13, style="circulant",
                clique_pockets=max(2, size // 12), bridge_width=2,
            )
            start = time.perf_counter()
            vcce_td(graph, 4)
            td_time = time.perf_counter() - start
            start = time.perf_counter()
            ripple(graph, 4)
            rp_time = time.perf_counter() - start
            rows.append(
                [
                    2 * size,
                    graph.num_edges,
                    round(td_time, 3),
                    round(rp_time, 3),
                    round(td_time / max(rp_time, 1e-9), 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "scaling_graph_size",
        render_table(
            "Scaling: VCCE-TD vs RIPPLE on growing triangle-poor graphs",
            ["n", "m", "TD s", "RIPPLE s", "TD/RIPPLE"],
            rows,
        ),
    )
    ratios = [row[4] for row in rows]
    # the gap widens with size: superlinear certification vs near-
    # linear bottom-up work
    assert ratios[-1] > ratios[0], rows
    assert ratios[-1] > 2.0, rows


def test_flow_engine_comparison(benchmark, emit):
    """Dinic vs Even–Tarjan on repeated unit-network max-flows."""
    graph = circulant_graph(150, 10)
    index = {u: i for i, u in enumerate(graph.vertices())}
    n = graph.num_vertices

    def build(engine_cls):
        engine = engine_cls(2 * n)
        big = 2 * n + 1
        for u in graph.vertices():
            i = index[u]
            engine.add_edge(2 * i, 2 * i + 1, 1)
        for u, v in graph.edges():
            i, j = index[u], index[v]
            engine.add_edge(2 * i + 1, 2 * j, big)
            engine.add_edge(2 * j + 1, 2 * i, big)
        return engine

    pairs = [(0, 75), (10, 100), (25, 120), (3, 90)]

    def run(engine_cls):
        start = time.perf_counter()
        values = []
        for s, t in pairs:
            engine = build(engine_cls)
            values.append(engine.max_flow(2 * s + 1, 2 * t))
        return values, time.perf_counter() - start

    (dinic_vals, dinic_time) = benchmark.pedantic(
        lambda: run(Dinic), rounds=1, iterations=1
    )
    et_vals, et_time = run(EvenTarjan)
    emit(
        "flow_engines",
        render_table(
            "Flow engines on vertex-split C150(1..10) connectivity queries",
            ["engine", "seconds", "flows"],
            [
                ["Dinic", round(dinic_time, 4), str(dinic_vals)],
                ["Even-Tarjan", round(et_time, 4), str(et_vals)],
            ],
        ),
    )
    assert dinic_vals == et_vals  # the engines agree exactly


def test_hybrid_vs_td(benchmark, emit):
    """The hybrid exact enumerator vs plain top-down.

    The related-work combination (Li et al.): a bottom-up pass resolves
    most components, and the exact partition loop then certifies them
    for free. Output is identical to VCCE-TD (asserted); the speedup
    tracks how much of the graph the heuristic resolved.
    """
    from repro.core import vcce_hybrid

    rows = []
    agree = True

    def sweep():
        nonlocal agree
        out = []
        for name in ("ca-dblp", "sc-shipsec", "ca-mathscinet"):
            dataset = DATASETS[name]
            graph = dataset.graph()
            k = dataset.default_k
            start = time.perf_counter()
            exact = vcce_td(graph, k)
            td_time = time.perf_counter() - start
            start = time.perf_counter()
            hybrid = vcce_hybrid(graph, k)
            hy_time = time.perf_counter() - start
            agree &= set(exact.components) == set(hybrid.components)
            skipped = hybrid.timer.counter("certifications_skipped")
            searched = hybrid.timer.counter("cut_searches")
            out.append(
                [
                    name,
                    k,
                    round(td_time, 3),
                    round(hy_time, 3),
                    skipped,
                    searched,
                ]
            )
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "hybrid_vs_td",
        render_table(
            "Hybrid exact enumeration vs plain VCCE-TD",
            ["dataset", "k", "TD s", "hybrid s", "certs skipped",
             "cut searches"],
            rows,
        ),
    )
    assert agree
    # wherever the heuristic resolves components, certifications are
    # genuinely skipped
    assert any(row[4] > 0 for row in rows), rows
