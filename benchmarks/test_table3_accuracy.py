"""Table III: accuracy of RIPPLE vs VCCE-BU against exact results.

Paper shape: RIPPLE beats VCCE-BU on F_same and J_Index on every
(dataset, k) row; the J_Index gap is dramatic on the graphs whose
structure trips Neighbor-Based Merging (sc-shipsec, socfb-konect drop
to single digits for VCCE-BU); both metrics hit 100% on the dense web
graphs (uk-2005, it-2004); accuracy decreases as k grows on the
collaboration graphs.
"""

from repro.bench import render_table, table3_rows

HEADERS = [
    "dataset", "k",
    "F_same RIPPLE", "F_same VCCE-BU",
    "J_Index RIPPLE", "J_Index VCCE-BU",
]


def test_table3_accuracy(benchmark, emit):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    emit(
        "table3_accuracy",
        render_table(
            "Table III: accuracy comparison (percent)", HEADERS, rows
        ),
    )
    by_dataset: dict[str, list] = {}
    for row in rows:
        by_dataset.setdefault(row[0], []).append(row)

    # RIPPLE is at least as accurate as VCCE-BU on every row. On the
    # deliberately clique-poor stand-in both heuristics fragment
    # identically and a lucky NBM over-merge can nose ahead by a
    # point, so that dataset gets a small tolerance.
    for row in rows:
        name, k, rp_f, bu_f, rp_j, bu_j = row
        slack = 1.5 if name == "ca-mathscinet" else 0.01
        assert rp_f >= bu_f - slack, row
        assert rp_j >= bu_j - slack, row

    # Dense web graphs: both algorithms perfect (uk-2005 / it-2004).
    for name in ("uk-2005", "it-2004"):
        for row in by_dataset[name]:
            assert row[2] == 100.0 and row[3] == 100.0, row

    # NBM-trap graphs: VCCE-BU's J_Index collapses while RIPPLE stays
    # high — the paper's most striking rows.
    for name in ("sc-shipsec", "socfb-konect"):
        for row in by_dataset[name]:
            assert row[4] >= 85.0, row  # RIPPLE J_Index stays high
            assert row[5] <= 60.0, row  # VCCE-BU J_Index collapses

    # RIPPLE's F_same stays usable everywhere except the deliberately
    # adversarial clique-poor dataset.
    for row in rows:
        if row[0] != "ca-mathscinet":
            assert row[2] >= 70.0, row

    # Accuracy decreases with k on the collaboration graphs.
    for name in ("ca-condmat", "ca-citeseer", "ca-dblp"):
        f_values = [row[2] for row in by_dataset[name]]
        assert f_values[0] > f_values[-1], (name, f_values)
