"""Extra bench: the effect of the seeding threshold α.

The paper fixes α = 10³ for all bottom-up runs and notes that a
threshold "may result in the loss of many potential k-VCCs ... which
decreases the accuracy" when the k-VCC distribution is locally dense.

Measured outcome at this scale: *both* pipelines are insensitive to α,
because the greedy candidate growth converges to the same local k-VCS
from almost any starting subset — the first enumeration either
succeeds or the start vertex has no local seed at all. α only binds on
hub neighbourhoods whose C(d, k) explodes, i.e. at real-graph scale;
the bench documents that insensitivity explicitly and pins RIPPLE's
flatness (QkVCS covers before the α-capped fallback even runs).
"""

import time

from repro.bench import render_table
from repro.core import ripple, vcce_bu, vcce_td
from repro.datasets import DATASETS
from repro.metrics import accuracy_report

ALPHAS = (1, 10, 100, 1000)


def test_alpha_sweep(benchmark, emit):
    dataset = DATASETS["ca-dblp"]
    graph = dataset.graph()
    k = dataset.default_k
    exact = vcce_td(graph, k)

    def sweep():
        rows = []
        for alpha in ALPHAS:
            start = time.perf_counter()
            bu = vcce_bu(graph, k, alpha=alpha)
            bu_time = time.perf_counter() - start
            start = time.perf_counter()
            rp = ripple(graph, k, alpha=alpha)
            rp_time = time.perf_counter() - start
            bu_acc = accuracy_report(bu.components, exact.components)
            rp_acc = accuracy_report(rp.components, exact.components)
            rows.append(
                [
                    alpha,
                    round(bu_time, 3),
                    round(bu_acc["F_same"], 2),
                    round(rp_time, 3),
                    round(rp_acc["F_same"], 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "alpha_sweep",
        render_table(
            f"Seeding threshold α sweep ({dataset.name}, k={k})",
            ["alpha", "VCCE-BU s", "VCCE-BU F", "RIPPLE s", "RIPPLE F"],
            rows,
        ),
    )
    bu_f = [row[2] for row in rows]
    rp_f = [row[4] for row in rows]
    # more enumeration budget never hurts the baseline's accuracy
    assert bu_f == sorted(bu_f), rows
    # RIPPLE's accuracy is insensitive to α (QkVCS covers first)
    assert max(rp_f) - min(rp_f) <= 10.0, rows
