"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's
evaluation section. The rendered text lands in ``benchmarks/results/``
(one file per experiment) and is echoed to stdout, while
pytest-benchmark records the wall-clock of the underlying computation.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Write an experiment's rendered table to results/ and stdout."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _emit
