"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's
evaluation section. The rendered text lands in ``benchmarks/results/``
(one file per experiment) and is echoed to stdout, while
pytest-benchmark records the wall-clock of the underlying computation.

Every benchmark additionally runs under a live :mod:`repro.obs`
collector (the ``bench_collector`` autouse fixture), and ``emit``
writes a machine-readable ``results/<name>.json`` next to each table:
the ``repro.obs/1`` counter/phase payload plus the experiment name, so
benchmark trajectories carry per-phase counter columns alongside the
timings.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import obs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def bench_collector():
    """Collect repro.obs counters for the duration of each benchmark."""
    with obs.collecting() as collector:
        yield collector


@pytest.fixture
def emit(bench_collector):
    """Write an experiment's rendered table to results/ and stdout.

    Also dumps ``results/<name>.json``: the experiment name plus the
    counters and phase seconds the run accumulated so far.
    """

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        payload = json.loads(bench_collector.to_json())
        payload["experiment"] = name
        json_path = RESULTS_DIR / f"{name}.json"
        json_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\n{text}\n[written to {path} and {json_path}]")

    return _emit
