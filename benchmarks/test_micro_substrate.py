"""Micro-benchmarks of the substrate hot paths.

Unlike the experiment benches (single-shot pedantic runs of whole
pipelines), these measure the individual operations the pipelines hammer
— with pytest-benchmark's full statistical machinery, so substrate
regressions show up as timing shifts rather than as mysterious
end-to-end slowdowns.
"""

import pytest

from repro.core.expansion import SIGMA, ring_expansion
from repro.core.merging import flow_based_merge_condition
from repro.core.result import PhaseTimer
from repro.flow import VertexSplitNetwork
from repro.graph import (
    community_graph,
    k_core,
    maximal_cliques_at_least,
    random_gnm,
)


@pytest.fixture(scope="module")
def host():
    return community_graph([60, 60], k=4, seed=3, bridge_width=2)


def test_micro_subgraph(benchmark, host):
    members = set(range(60))
    result = benchmark(host.subgraph, members)
    assert result.num_vertices == 60


def test_micro_external_boundary(benchmark, host):
    members = set(range(30))
    result = benchmark(host.external_boundary, members)
    assert result


def test_micro_neighborhood_2hop(benchmark, host):
    result = benchmark(host.neighborhood, [0], 2)
    assert len(result) > 10


def test_micro_k_core(benchmark):
    graph = random_gnm(300, 1200, seed=8)
    result = benchmark(k_core, graph, 4)
    assert result.num_vertices > 0


def test_micro_maximal_cliques(benchmark, host):
    result = benchmark(lambda: list(maximal_cliques_at_least(host, 5)))
    assert result


def test_micro_split_network_build(benchmark, host):
    result = benchmark(VertexSplitNetwork, host)
    assert result.size == host.num_vertices


def test_micro_sigma_flow(benchmark, host):
    members = set(range(60))
    candidates = host.external_boundary(members)
    network = VertexSplitNetwork(
        host, members | candidates, virtual_sources={SIGMA: members}
    )
    candidate = next(iter(candidates))

    def query():
        return network.max_flow(candidate, SIGMA, cutoff=4)

    value = benchmark(query)
    assert value >= 0


def test_micro_fbm_condition(benchmark, host):
    side_a = set(range(60))
    side_b = set(range(60, 120))

    def check():
        return flow_based_merge_condition(
            host, 4, side_a, side_b, PhaseTimer()
        )

    assert benchmark(check) is False  # thin bridge: correctly refused


def test_micro_rme_full_expansion(benchmark, host):
    seed = set(range(8))

    def expand():
        return ring_expansion(host, 4, seed)

    result = benchmark(expand)
    assert result == set(range(60))
