"""Ablation benches for the design choices DESIGN.md §5 calls out.

These go beyond the paper's Table V (which ablates the three RIPPLE
modules) and quantify the implementation-level choices:

1. **flow cutoff at k** — every connectivity question the pipelines ask
   is a threshold test, so Dinic stops after k augmenting paths;
2. **merge-first round ordering** in Algorithm 5;
3. **sparse certificates** in the top-down cut search;
4. **ME neighbourhood scope** — the accuracy/time dial the paper's
   conclusion advertises ("flexible control of the local search step
   size").
"""

import time

from repro.bench import render_table
from repro.core import vcce_td
from repro.core.pipeline import bottom_up_pipeline
from repro.core.ripple import ripple_me
from repro.datasets import DATASETS
from repro.flow import VertexSplitNetwork, find_vertex_cut
from repro.metrics import accuracy_report


def test_ablation_flow_cutoff(benchmark, emit):
    """Threshold flows (cutoff=k) vs full max-flows on σ-style queries.

    The workload is a wide circulant whose boundary vertices have ~12
    disjoint paths into the seed: a threshold test at k=4 stops after 4
    augmenting rounds, the full flow runs all ~12.
    """
    from repro.graph import circulant_graph

    k = 4
    graph = circulant_graph(200, 12)
    members = set(range(100))
    candidates = sorted(graph.external_boundary(members))
    network = VertexSplitNetwork(
        graph, members | set(candidates), virtual_sources={"s": members}
    )

    def run(cutoff):
        start = time.perf_counter()
        for _ in range(20):  # repeat for measurable timings
            for u in candidates:
                network.max_flow(u, "s", cutoff=cutoff)
        return time.perf_counter() - start

    with_cutoff = benchmark.pedantic(
        lambda: run(k), rounds=1, iterations=1
    )
    full = run(float("inf"))
    emit(
        "ablation_flow_cutoff",
        render_table(
            "Ablation: Dinic cutoff at k vs full max-flow "
            f"({20 * len(candidates)} σ-queries, C200(1..12), k={k})",
            ["variant", "seconds"],
            [["cutoff=k", round(with_cutoff, 4)],
             ["full flow", round(full, 4)]],
        ),
    )
    # the full flow does strictly more augmentation work
    assert full > with_cutoff


def test_ablation_round_ordering(benchmark, emit):
    """Merge-first (the paper's choice) vs expand-first rounds."""
    dataset = DATASETS["ca-dblp"]
    graph = dataset.graph()
    k = dataset.default_k
    exact = vcce_td(graph, k)

    def run(order):
        start = time.perf_counter()
        result = bottom_up_pipeline(graph, k, order=order)
        return result, time.perf_counter() - start

    (merge_first, mf_time) = benchmark.pedantic(
        lambda: run("merge_first"), rounds=1, iterations=1
    )
    expand_first, ef_time = run("expand_first")
    mf_acc = accuracy_report(merge_first.components, exact.components)
    ef_acc = accuracy_report(expand_first.components, exact.components)
    emit(
        "ablation_round_ordering",
        render_table(
            f"Ablation: round ordering ({dataset.name}, k={k})",
            ["order", "seconds", "F_same", "J_Index"],
            [
                ["merge-first", round(mf_time, 3),
                 round(mf_acc["F_same"], 2), round(mf_acc["J_Index"], 2)],
                ["expand-first", round(ef_time, 3),
                 round(ef_acc["F_same"], 2), round(ef_acc["J_Index"], 2)],
            ],
        ),
    )
    # Both orderings are sound; accuracy must agree on planted data.
    assert abs(mf_acc["F_same"] - ef_acc["F_same"]) < 5.0


def test_ablation_sparse_certificate(benchmark, emit):
    """Cut search on the CKT certificate vs on the raw dense graph.

    The certificate earns its keep when (a) the graph is dense
    (m ≫ k(n-1)) *and* (b) the common-neighbour pruning rule cannot
    shortcut the flows — i.e. far-apart pairs share few neighbours.
    A wide circulant is exactly that regime: the full certification
    scan must run Θ(n) flows, each 7–8× cheaper on the certificate.
    """
    from repro.graph import circulant_graph

    graph = circulant_graph(300, 30)  # 60-connected, m = 30n
    k = 4

    def run(certificate):
        start = time.perf_counter()
        cut = find_vertex_cut(graph, k, certificate=certificate)
        return cut, time.perf_counter() - start

    (cert_cut, cert_time) = benchmark.pedantic(
        lambda: run(True), rounds=1, iterations=1
    )
    raw_cut, raw_time = run(False)
    emit(
        "ablation_sparse_certificate",
        render_table(
            f"Ablation: CKT sparse certificate in find_vertex_cut "
            f"(n={graph.num_vertices}, m={graph.num_edges}, k={k})",
            ["variant", "seconds", "cut found"],
            [
                ["certificate", round(cert_time, 4), cert_cut is not None],
                ["raw graph", round(raw_time, 4), raw_cut is not None],
            ],
        ),
    )
    # Both agree there is no small cut, and the sparse search is
    # genuinely cheaper on this flow-bound workload.
    assert cert_cut is None and raw_cut is None
    assert cert_time < raw_time


def test_ablation_me_scope(benchmark, emit):
    """RIPPLE-ME accuracy/time as the expansion scope widens.

    The paper's conclusion: ME gives the user a dial between speed
    (small neighbourhood) and accuracy (wide neighbourhood).
    """
    dataset = DATASETS["ca-dblp"]
    graph = dataset.graph()
    k = dataset.default_k
    exact = vcce_td(graph, k)

    def sweep():
        rows = []
        for hops in (1, 2, None):
            start = time.perf_counter()
            result = ripple_me(graph, k, hops=hops)
            seconds = time.perf_counter() - start
            acc = accuracy_report(result.components, exact.components)
            rows.append(
                [
                    "unbounded" if hops is None else f"{hops}-hop",
                    round(seconds, 3),
                    round(acc["F_same"], 2),
                    round(acc["J_Index"], 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_me_scope",
        render_table(
            f"Ablation: ME scope sweep ({dataset.name}, k={k})",
            ["scope", "seconds", "F_same", "J_Index"],
            rows,
        ),
    )
    f_values = [row[2] for row in rows]
    # widening the scope never loses accuracy
    assert f_values == sorted(f_values), rows
