"""Table V: ablation of RIPPLE's three modules.

Paper shape: full RIPPLE has the best accuracy on every dataset; each
swap toward a baseline module loses something — replacing FBM with NBM
collapses accuracy on the trap datasets, replacing RME with UE drops
coverage of jointly-supported vertices, and replacing QkVCS with LkVCS
mainly costs seeding time and coverage.
"""

from repro.bench import render_table, table5_rows

HEADERS = ["dataset", "k", "variant", "time s", "F_same", "J_Index"]


def test_table5_ablation(benchmark, emit):
    rows = benchmark.pedantic(table5_rows, rounds=1, iterations=1)
    emit(
        "table5_ablation",
        render_table("Table V: ablation study", HEADERS, rows),
    )
    by_dataset: dict[str, dict[str, list]] = {}
    for row in rows:
        by_dataset.setdefault(row[0], {})[row[2]] = row

    for name, variants in by_dataset.items():
        full = variants["RIPPLE"]
        # full RIPPLE is the accuracy front-runner on every dataset
        for label, row in variants.items():
            assert full[4] >= row[4] - 0.01, (name, label, row)
            assert full[5] >= row[5] - 0.01, (name, label, row)

    # NBM hurts exactly where the paper says: the trap datasets.
    for name in ("sc-shipsec", "socfb-konect"):
        variants = by_dataset[name]
        assert variants["noFBM"][5] < variants["RIPPLE"][5] - 20, variants

    # UE loses the periphery on the heavy-periphery dataset.
    dblp = by_dataset["ca-dblp"]
    assert dblp["noRME"][4] < dblp["RIPPLE"][4], dblp
