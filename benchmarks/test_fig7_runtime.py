"""Figure 7: running time of VCCE-TD / VCCE-BU / RIPPLE as k varies.

Paper shape: runtimes generally *decrease* as k grows (the k-core
shrinks); the bottom-up methods track each other's trend; VCCE-TD is
the slowest end-to-end on most graphs. At pure-Python toy scale the
TD/BU/RIPPLE constant factors are much closer than the paper's C++
runs on multi-million-vertex graphs — the robust part of the gap is
where certification cannot shortcut flows (triangle-poor structure),
so that is what the assertions pin, alongside the k-trend.
"""

from repro.bench import fig7_series, grouped_bar_chart, render_series

DATASETS = (
    "ca-condmat",
    "arabic-2005",
    "sc-shipsec",
    "ca-dblp",
    "ca-mathscinet",
    "cit-patent",
)


def test_fig7_runtime_vs_k(benchmark, emit):
    def run():
        return {name: fig7_series(name) for name in DATASETS}

    all_series = benchmark.pedantic(run, rounds=1, iterations=1)
    blocks = []
    for name, (ks, times) in all_series.items():
        blocks.append(
            render_series(
                f"Figure 7 ({name}): runtime vs k (seconds)",
                "k",
                ks,
                times,
            )
        )
        blocks.append(
            grouped_bar_chart(
                f"Figure 7 ({name}), log-scale bars", ks, times,
                unit="s", log=True,
            )
        )
    emit("fig7_runtime", "\n\n".join(blocks))

    for name, (ks, times) in all_series.items():
        # k-trend: the largest k is never the slowest point for the
        # bottom-up methods (k-core shrinkage dominates).
        for algo in ("VCCE-BU", "RIPPLE"):
            series = times[algo]
            assert series[-1] <= max(series) + 1e-9, (name, algo, series)
        # every run finished with a positive measurable time
        for algo, series in times.items():
            assert all(t >= 0 for t in series)

    # Where flow-heavy certification cannot shortcut through shared
    # neighbours (the triangle-poor dataset), the top-down method pays
    # the paper's gap clearly; elsewhere, at toy scale, constant
    # factors keep TD competitive (EXPERIMENTS.md discusses the
    # scale-dependence).
    ks, times = all_series["ca-mathscinet"]
    td_math = sum(times["VCCE-TD"])
    rp_math = sum(times["RIPPLE"])
    assert td_math > 2.0 * rp_math, times
