"""Table IV: RIPPLE vs RIPPLE-ME (exact multiple expansion).

Paper shape: RIPPLE-ME is consistently at least as accurate as RIPPLE
(flow-verified expansion sees joint structures the ring heuristic
cannot) but pays for it in max-flow time — dramatically so at small k,
where candidate rings are large (several rows time out entirely in the
paper). We assert the accuracy dominance per row and the aggregate
slowdown.
"""

from repro.bench import render_table, table4_rows

HEADERS = [
    "dataset", "k",
    "RIPPLE s", "RIPPLE F", "RIPPLE J",
    "ME s", "ME F", "ME J",
]


def test_table4_ripple_vs_ripple_me(benchmark, emit):
    rows = benchmark.pedantic(table4_rows, rounds=1, iterations=1)
    emit(
        "table4_ripple_me",
        render_table(
            "Table IV: RIPPLE vs RIPPLE-ME (1-hop exact expansion)",
            HEADERS,
            rows,
        ),
    )
    assert rows, "no rows produced"
    me_slower_count = 0
    for row in rows:
        name, k, rp_s, rp_f, rp_j, me_s, me_f, me_j = row
        # accuracy dominance, row by row
        assert me_f >= rp_f - 0.01, row
        assert me_j >= rp_j - 0.01, row
        if me_s > rp_s:
            me_slower_count += 1
    # the flow-based expansion costs more on a clear majority of rows
    assert me_slower_count >= len(rows) * 0.6, rows

    # somewhere the ring heuristic must actually lose accuracy that ME
    # recovers — otherwise the table is vacuous
    assert any(row[6] > row[3] + 0.5 for row in rows), rows
