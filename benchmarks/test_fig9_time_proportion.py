"""Figure 9: share of RIPPLE's runtime spent in each phase.

Paper shape: seeding + merging + expansion account for essentially all
of the runtime once the graph is loaded; merging and expansion
dominate on most datasets, while on cit-patent the QkVCS verification
work takes the majority. Our pure-Python profile shifts more weight
into seeding (the flow-based kBFS verification and LkVCS fallback are
relatively pricier than the C++ original), which EXPERIMENTS.md
documents; the invariants pinned here are the phase accounting itself
and the paper's cit-patent observation.
"""

from repro.bench import fig9_rows, render_table

HEADERS = ["dataset", "k", "seeding %", "merging %", "expansion %", "other %"]


def test_fig9_time_proportions(benchmark, emit):
    rows = benchmark.pedantic(fig9_rows, rounds=1, iterations=1)
    emit(
        "fig9_time_proportion",
        render_table(
            "Figure 9: RIPPLE phase time shares (percent)", HEADERS, rows
        ),
    )
    assert len(rows) == 10
    for row in rows:
        name, k, seeding, merging, expansion, other = row
        total = seeding + merging + expansion + other
        assert abs(total - 100.0) < 2.0, row
        # the three pipeline phases dominate; bookkeeping is noise
        assert other <= 25.0, row

    # cit-patent: seeding (QkVCS verification) takes the majority —
    # the paper calls this dataset out explicitly.
    citpatent = next(row for row in rows if row[0] == "cit-patent")
    assert citpatent[2] > 50.0, citpatent
