"""Extra bench: the introduction's cohesion-model comparison.

For every dataset at its default k, count the components each model
produces and the vertices it keeps. The paper's intro claim in numbers:
the connectivity-based models are strictly more discriminating — they
keep no more vertices than the local models, and the k-VCC count is
the finest sound decomposition (trap bridges and dense waists survive
every weaker notion).
"""

from repro.bench import render_table
from repro.cohesion import k_edge_components, k_truss
from repro.core import vcce_td
from repro.datasets import DATASETS
from repro.graph import k_core
from repro.graph.traversal import connected_components

NAMES = ("ca-dblp", "sc-shipsec", "uk-2005", "socfb-konect")


def test_cohesion_ladder(benchmark, emit):
    def sweep():
        rows = []
        for name in NAMES:
            dataset = DATASETS[name]
            graph = dataset.graph()
            k = dataset.default_k
            core = k_core(graph, k)
            core_comps = [
                c for c in connected_components(core) if len(c) > k
            ]
            truss = k_truss(graph, k)
            truss_comps = [
                c for c in connected_components(truss) if len(c) > k
            ]
            eccs = [c for c in k_edge_components(graph, k) if len(c) > k]
            vccs = vcce_td(graph, k).components
            def cell(comps):
                union = set()
                for c in comps:
                    union |= set(c)
                return f"{len(comps)}/{len(union)}"

            rows.append(
                [name, k, cell(core_comps), cell(truss_comps),
                 cell(eccs), cell(vccs)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "cohesion_ladder",
        render_table(
            "Cohesion ladder: components/covered vertices per model",
            ["dataset", "k", "k-core", "k-truss", "k-ECC", "k-VCC"],
            rows,
        ),
    )
    for row in rows:
        counts = [int(c.split("/")[0]) for c in row[2:]]
        covers = [int(c.split("/")[1]) for c in row[2:]]
        # the ladder: each strictly stronger connectivity model keeps
        # no more vertices (every k-VCC sits inside some k-ECC, every
        # k-ECC inside the k-core) …
        assert covers[0] >= covers[2] >= covers[3], row
        # … and the k-VCC decomposition is at least as fine as k-ECC
        assert counts[3] >= counts[2], row
