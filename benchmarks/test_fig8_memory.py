"""Figure 8: peak memory of the three algorithms.

Paper shape: VCCE-TD's recursive graph partitioning stores stacks of
subgraph copies and uses orders of magnitude more memory than the
bottom-up methods on most graphs (24GB vs ~100MB on ca-citeseer);
RIPPLE and VCCE-BU stay within the same order of magnitude of each
other; on the giant-component graph (socfb-konect) the gap narrows
because one huge seed dominates everyone's footprint.
"""

from repro.bench import bar_chart, fig8_rows, render_table

HEADERS = ["dataset", "k", "VCCE-TD KiB", "VCCE-BU KiB", "RIPPLE KiB"]


def test_fig8_peak_memory(benchmark, emit):
    rows = benchmark.pedantic(fig8_rows, rounds=1, iterations=1)
    chart = bar_chart(
        "Figure 8 (VCCE-TD peaks, log scale)",
        [row[0] for row in rows],
        [row[2] for row in rows],
        unit=" KiB",
        log=True,
    )
    emit(
        "fig8_memory",
        render_table(
            "Figure 8: peak traced allocations (KiB)", HEADERS, rows
        )
        + "\n\n"
        + chart,
    )
    assert len(rows) == 10
    td_beats_ripple = 0
    for row in rows:
        name, k, td_kib, bu_kib, rp_kib = row
        assert td_kib > 0 and bu_kib > 0 and rp_kib > 0
        # bottom-up methods stay within one order of magnitude of each
        # other (paper: "comparable memory usage").
        ratio = max(bu_kib, rp_kib) / min(bu_kib, rp_kib)
        assert ratio < 10, row
        if td_kib > rp_kib:
            td_beats_ripple += 1
    # The top-down partitioning out-allocates RIPPLE on most datasets.
    assert td_beats_ripple >= 6, [r[0] for r in rows]
