"""Table VI: QkVCS seeding coverage and speedup over LkVCS.

Paper shape: the cheap stages cover most of the k-core before the
LkVCS fallback runs — BK-MCQ is the heavy lifter (100% coverage on the
dense web graphs), kBFS contributes a complementary share, and total
coverage exceeds 80% everywhere. The paper reports 4-22x seeding
speedups at multi-million-vertex scale; at toy scale the constant
factors of the two seeders nearly cancel, so we assert the coverage
structure and that the measured ratio stays within a sane band
(documented in EXPERIMENTS.md).
"""

from repro.bench import render_table, table6_rows

HEADERS = ["dataset", "k", "kBFS %", "BK-MCQ %", "total %", "speedup x"]


def test_table6_seeding_efficiency(benchmark, emit):
    rows = benchmark.pedantic(table6_rows, rounds=1, iterations=1)
    emit(
        "table6_seeding",
        render_table(
            "Table VI: QkVCS coverage of the k-core and speedup vs LkVCS",
            HEADERS,
            rows,
        ),
    )
    assert rows
    by_dataset: dict[str, list] = {}
    for row in rows:
        by_dataset.setdefault(row[0], []).append(row)

    for row in rows:
        name, k, kbfs, clique, total, speedup = row
        assert 0.0 <= kbfs <= 100.0
        assert 0.0 <= clique <= 100.0
        # the union covers at least each stage alone
        assert total >= max(kbfs, clique) - 0.01, row
        # coverage is high wherever the evaluated k has clique support;
        # mixed-build-k datasets drop toward the paper's ~80% floor at
        # their largest k (only some communities carry (k+1)-cliques)
        assert total >= 55.0, row
        assert speedup > 0.05, row

    # BK-MCQ covers the dense web graph completely (paper: uk-2005).
    for row in by_dataset["uk-2005"]:
        assert row[3] == 100.0, row
