"""Figure 10: parallel RIPPLE runtime and speedup vs worker count.

Paper shape: wall time falls as threads are added, with saturating (and
sometimes reversing) speedup at high thread counts because the merging
phase contends on shared seed state. Substitution note (DESIGN.md §3):
CPython threads cannot run this CPU-bound work in parallel, so the
measured backend is a process pool; per-task pickling and process
startup play the role of the paper's lock contention, producing the
same saturation shape. At toy graph scale the absolute speedups are
modest; the assertions pin the task decomposition's correctness and
the shape (the best multi-worker time does not blow up vs one worker).
"""

from repro.bench import fig10_rows, render_table
from repro.core import ripple
from repro.datasets import DATASETS

HEADERS = ["dataset", "k", "backend", "workers", "time s", "speedup x"]


def test_fig10_parallel_scaling(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: fig10_rows("ca-dblp", worker_counts=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    emit(
        "fig10_parallel",
        render_table(
            "Figure 10: parallel RIPPLE (process pool)", HEADERS, rows
        ),
    )
    assert [row[3] for row in rows] == [1, 2, 4]
    times = [row[4] for row in rows]
    speedups = [row[5] for row in rows]
    assert all(t > 0 for t in times)
    assert speedups[0] == 1.0
    # Shape: adding workers never costs more than 2x the single-worker
    # wall time (saturation, not explosion).
    assert max(times) <= 2.5 * times[0], rows


def test_fig10_thread_backend(benchmark, emit):
    """The GIL-bound thread backend: same decomposition, flat scaling.

    Included to make the substitution explicit: the task structure is
    identical to the process backend, but CPython threads cannot run
    the CPU-bound work concurrently, so the curve is flat — the
    reproduction's analogue of the paper's "16 threads slower than 8"
    contention note, taken to its limit.
    """
    rows = benchmark.pedantic(
        lambda: fig10_rows(
            "sc-shipsec", worker_counts=(1, 4), backend="thread"
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "fig10_parallel_threads",
        render_table(
            "Figure 10 (thread backend, GIL-bound)", HEADERS, rows
        ),
    )
    times = [row[4] for row in rows]
    # flat: threads give no CPU parallelism, and no catastrophic cost
    assert max(times) <= 3.0 * min(times), rows


def test_fig10_parallel_result_correctness(benchmark):
    """The parallel decomposition returns the sequential components."""
    from repro.parallel import ParallelConfig, parallel_ripple

    dataset = DATASETS["sc-shipsec"]
    graph = dataset.graph()
    k = dataset.default_k
    expected = set(ripple(graph, k).components)

    def run():
        config = ParallelConfig(workers=2, backend="process")
        return parallel_ripple(graph, k, config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(result.components) == expected
