"""Table II: statistics of the benchmark graphs.

Paper shape: ten datasets spanning two orders of magnitude in size,
average degrees from ~3 to ~180, and k_max from 16 to 499. Our
synthetic stand-ins span smaller absolute ranges (pure-Python scale)
but preserve the qualitative spread: dense web-like graphs carry the
largest k_max, sparse collaboration graphs the smallest.
"""

from repro.bench import render_table, table2_rows

HEADERS = ["dataset", "mirrors", "|V|", "|E|", "avg deg", "k_max"]


def test_table2_dataset_statistics(benchmark, emit):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    emit(
        "table2_datasets",
        render_table("Table II: dataset statistics", HEADERS, rows),
    )
    assert len(rows) == 10
    by_name = {row[0]: row for row in rows}
    # Dense web stand-ins must carry the largest k_max, as in the paper.
    k_max_web = by_name["uk-2005"][5]
    k_max_sparse = by_name["ca-mathscinet"][5]
    assert k_max_web > k_max_sparse
    # Average degree ordering: web graphs denser than collaboration.
    assert by_name["uk-2005"][4] > by_name["ca-mathscinet"][4]
    for row in rows:
        assert row[2] > 0 and row[3] > 0
        assert row[5] >= 2
