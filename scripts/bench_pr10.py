"""Benchmark the asyncio backend + shard router for the PR-10 trajectory.

Usage:
    PYTHONPATH=src python scripts/bench_pr10.py [--output-dir DIR]
        [--trajectory-out FILE] [--quick]

Three measured configurations, all via the PR-6 open-loop harness
(fresh daemon subprocess per repetition, seeded schedules, warmup
excluded):

* ``smoke`` scenario against the **threaded** backend — the gated
  baseline;
* ``smoke`` scenario against the **asyncio** backend
  (``ripple serve --backend aio``) — must clear the same committed
  ``benchmarks/baselines/loadtest_gate.json`` thresholds the threaded
  backend is gated on (rps floor, p95 ceiling, both
  calibration-scaled);
* ``sharded`` scenario against the asyncio backend with a 3-shard,
  2-replica router (``--shards 3 --replicas 2``) — the scatter-gather
  overhead on batch/scan-heavy traffic.

Writes ``benchmarks/trajectory/BENCH_pr10.json`` (commit this) and
exits non-zero if the aio backend misses the gate.
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.perfgate import calibrate  # noqa: E402
from repro.graph.generators import planted_kvcc_graph  # noqa: E402
from repro.graph.io import write_edge_list  # noqa: E402
from repro.loadtest import (  # noqa: E402
    get_scenario,
    run_scenario,
    write_run_table,
    write_samples_jsonl,
)

ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT_DIR = ROOT / "benchmarks" / "results" / "loadtest_pr10"
DEFAULT_TRAJECTORY = ROOT / "benchmarks" / "trajectory" / "BENCH_pr10.json"
GATE = ROOT / "benchmarks" / "baselines" / "loadtest_gate.json"

GRAPH_ARGS = (3, 30, 4)
GRAPH_SEED = 7
TOPOLOGY = "planted-3x30-k4"

#: (case key, scenario, run_scenario overrides)
CONFIGS = (
    ("serve-aio/smoke-thread", "smoke", {"daemon_backend": "thread"}),
    ("serve-aio/smoke-aio", "smoke", {"daemon_backend": "aio"}),
    (
        "serve-aio/sharded-aio-3x2",
        "sharded",
        {"daemon_backend": "aio", "daemon_shards": 3, "daemon_replicas": 2},
    ),
)


def _median(values) -> float:
    cleaned = [v for v in values if v == v]
    return round(statistics.median(cleaned), 6) if cleaned else float("nan")


def _case(rows, extra: dict) -> dict:
    return {
        **extra,
        "offered_rps": rows[0].offered_rps,
        "repetitions": len(rows),
        "achieved_rps_median": _median(r.achieved_rps for r in rows),
        "p50_latency_ms_median": _median(r.p50_latency_ms for r in rows),
        "p95_latency_ms_median": _median(r.p95_latency_ms for r in rows),
        "p99_latency_ms_median": _median(r.p99_latency_ms for r in rows),
        "server_p95_ms_median": _median(r.server_p95_ms for r in rows),
        "failure_rate_max": max(r.failure_rate for r in rows),
        "shed_requests_total": sum(r.shed_requests for r in rows),
        "rss_peak_mb_max": max(r.rss_peak_mb for r in rows),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir", type=Path, default=DEFAULT_OUTPUT_DIR
    )
    parser.add_argument(
        "--trajectory-out", type=Path, default=DEFAULT_TRAJECTORY
    )
    parser.add_argument(
        "--quick", action="store_true", help="one repetition per config"
    )
    args = parser.parse_args(argv)

    gate = json.loads(GATE.read_text(encoding="utf-8"))
    calibration_s = calibrate()
    # Same normalisation the CI load gate applies: a slower machine
    # relaxes the ceiling and the floor by its measured slowness.
    slowness = max(calibration_s / gate["calibration_s"], 1e-9)
    rps_floor = gate["rps_floor"] / slowness
    p95_ceiling_ms = gate["p95_ceiling_ms"] * slowness

    args.output_dir.mkdir(parents=True, exist_ok=True)
    samples_path = args.output_dir / "samples.jsonl"
    samples_path.write_text("", encoding="utf-8")

    all_rows, cases = [], {}
    with tempfile.TemporaryDirectory(prefix="ripple-bench-pr10-") as tmp:
        graph_path = Path(tmp) / "smoke.edges"
        write_edge_list(
            planted_kvcc_graph(*GRAPH_ARGS, seed=GRAPH_SEED), graph_path
        )
        for key, scenario_name, overrides in CONFIGS:
            scenario = get_scenario(scenario_name)
            if args.quick:
                scenario = scenario.with_overrides(repetitions=1)
            print(
                f"running {key}: scenario {scenario.name!r}, "
                f"{scenario.offered_rps:g} rps x {scenario.duration_s:g}s "
                f"x {scenario.repetitions} rep(s), {overrides}"
            )
            outcome = run_scenario(
                scenario,
                graph_path,
                topology=TOPOLOGY,
                calibration_s=calibration_s,
                **overrides,
            )
            all_rows.extend(outcome.rows)
            for repetition, samples in sorted(outcome.samples.items()):
                write_samples_jsonl(
                    samples_path, key, repetition, samples
                )
            cases[key] = _case(
                outcome.rows,
                {
                    "description": (
                        f"{scenario.name} scenario on {TOPOLOGY} via "
                        f"{overrides.get('daemon_backend')} backend"
                        + (
                            f", {overrides['daemon_shards']} shards x "
                            f"{overrides['daemon_replicas']} replicas"
                            if "daemon_shards" in overrides
                            else ""
                        )
                    ),
                },
            )

    write_run_table(args.output_dir / "run_table.csv", all_rows)

    aio = cases["serve-aio/smoke-aio"]
    gate_report = {
        "gate": "benchmarks/baselines/loadtest_gate.json",
        "calibration_s": round(calibration_s, 6),
        "slowness": round(slowness, 3),
        "rps_floor_scaled": round(rps_floor, 3),
        "p95_ceiling_ms_scaled": round(p95_ceiling_ms, 3),
        "aio_achieved_rps_median": aio["achieved_rps_median"],
        "aio_p95_latency_ms_median": aio["p95_latency_ms_median"],
        "aio_clears_rps_floor": aio["achieved_rps_median"] >= rps_floor,
        "aio_within_p95_ceiling": (
            aio["p95_latency_ms_median"] <= p95_ceiling_ms
        ),
        "aio_failure_rate_max": aio["failure_rate_max"],
    }

    document = {
        "schema": "repro.bench-trajectory/1",
        "pr": 10,
        "date": datetime.date.today().isoformat(),
        "title": (
            "Async sharded serving: asyncio daemon backend vs threaded, "
            "plus the k-core shard router with read replicas"
        ),
        "method": (
            "scripts/bench_pr10.py: the PR-6 open-loop harness drives "
            "the smoke scenario at a fresh daemon subprocess per "
            "repetition — once with --backend thread, once with "
            "--backend aio — and the batch/scan-heavy sharded scenario "
            "at an aio daemon routing over 3 shards x 2 replicas. "
            "Medians across repetitions; the aio smoke case is checked "
            "against the committed loadtest_gate.json thresholds under "
            "the same calibration scaling CI applies."
        ),
        "calibration_s": round(calibration_s, 6),
        "topology": TOPOLOGY,
        "gate_check": gate_report,
        "cases": cases,
    }
    args.trajectory_out.parent.mkdir(parents=True, exist_ok=True)
    args.trajectory_out.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )

    for key, case in cases.items():
        print(
            f"{key}: {case['achieved_rps_median']:.1f}/"
            f"{case['offered_rps']:g} rps, "
            f"p95 {case['p95_latency_ms_median']:.2f} ms, "
            f"max failure rate {case['failure_rate_max']:.4f}"
        )
    print(f"wrote {args.trajectory_out}")

    if not (
        gate_report["aio_clears_rps_floor"]
        and gate_report["aio_within_p95_ceiling"]
        and aio["failure_rate_max"] == 0
    ):
        print(
            f"FAIL: aio backend misses the load gate "
            f"(rps {aio['achieved_rps_median']} vs floor "
            f"{rps_floor:.1f}, p95 {aio['p95_latency_ms_median']} ms "
            f"vs ceiling {p95_ceiling_ms:.1f} ms)"
        )
        return 1
    print("bench-pr10: OK — aio clears the threaded backend's gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
