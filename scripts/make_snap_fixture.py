"""Generate a SNAP-style edge-list fixture for the streaming loader.

Usage:
    python scripts/make_snap_fixture.py -o snap_fixture.txt

The fixture exercises everything ``--format snap`` must tolerate at a
realistic scale (>= 100k distinct edges by default): ``#`` and ``%``
comment headers, tab- and space-separated pairs, trailing extra
columns, self-loop lines, and duplicate edges in both orientations.

The topology is chosen so ``ripple enumerate -k 3`` finishes quickly
despite the size: a large random recursive tree (acyclic, so the
3-core prune deletes it wholesale) decorated with disjoint k-cliques
hanging off tree vertices. The k-VCCs of the result are exactly the
planted cliques, which makes the expected component count a one-line
assertion in CI.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path


def emit_lines(
    cliques: int,
    clique_size: int,
    fringe: int,
    seed: int,
):
    """Yield the fixture's lines (without trailing newlines)."""
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []

    # Random recursive tree: vertex i attaches to a uniform earlier
    # vertex. Trees are acyclic, so none of this survives a 3-core.
    for v in range(1, fringe):
        edges.append((rng.randrange(v), v))

    # Disjoint (clique_size)-cliques above the fringe label range, each
    # tethered to the tree by one edge (a pendant attachment adds no
    # core structure).
    first_clique_vertex = fringe
    label = first_clique_vertex
    for _ in range(cliques):
        members = list(range(label, label + clique_size))
        label += clique_size
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                edges.append((u, v))
        edges.append((members[0], rng.randrange(fringe)))

    expected_components = cliques
    distinct = len(edges)

    yield "# SNAP-style fixture (scripts/make_snap_fixture.py)"
    yield f"# Nodes: {label} Edges: {distinct}"
    yield f"% planted {expected_components} {clique_size}-cliques on a random tree"
    yield "# FromNodeId\tToNodeId"

    # Interleave the noise the loader must absorb: duplicates (both
    # orientations), self-loops, tab separators, extra columns.
    duplicates = rng.sample(range(distinct), min(400, distinct))
    flip = set(duplicates[len(duplicates) // 2 :])
    noise_at = {
        position: index for index, position in enumerate(duplicates)
    }
    for position, (u, v) in enumerate(edges):
        if position % 3 == 0:
            yield f"{u}\t{v}"
        elif position % 997 == 0:
            yield f"{u} {v} 1.0"
        else:
            yield f"{u} {v}"
        index = noise_at.get(position)
        if index is not None:
            yield (f"{v} {u}" if position in flip else f"{u} {v}")
            if index % 2 == 0:
                yield f"{u} {u}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", type=Path, required=True, help="output path"
    )
    parser.add_argument(
        "--cliques", type=int, default=36, help="planted cliques (default 36)"
    )
    parser.add_argument(
        "--clique-size", type=int, default=14, help="clique order (default 14)"
    )
    parser.add_argument(
        "--fringe",
        type=int,
        default=97_000,
        help="random-tree vertices (default 97000)",
    )
    parser.add_argument(
        "--seed", type=int, default=20260808, help="RNG seed"
    )
    args = parser.parse_args(argv)

    args.output.parent.mkdir(parents=True, exist_ok=True)
    lines = 0
    with open(args.output, "w", encoding="utf-8") as handle:
        for line in emit_lines(
            args.cliques, args.clique_size, args.fringe, args.seed
        ):
            handle.write(line + "\n")
            lines += 1
    distinct = (
        args.fringe
        - 1
        + args.cliques
        * (args.clique_size * (args.clique_size - 1) // 2 + 1)
    )
    print(
        f"wrote {args.output}: {lines} lines, {distinct} distinct edges, "
        f"{args.cliques} planted {args.clique_size}-cliques"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
