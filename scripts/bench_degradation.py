"""Sweep offered load past capacity and record the shed curve.

Usage:
    PYTHONPATH=src python scripts/bench_degradation.py [--output-dir DIR]
        [--trajectory-out FILE] [--quick]

Capacity is made *deterministic* instead of machine-dependent: the
daemon runs with 2 workers and an armed ``engine.resolve:*:hang:*``
fault (20 ms per resolve), so it can complete at most ~100 queries/s
no matter how fast the host is. The ``degrade`` scenario is then
driven at 0.5x, 1x, 1.5x and 2x that capacity; past saturation the
bounded admission queue must shed with ``overloaded`` (clients burn
their retry budget with jittered backoff) while the accepted requests
keep a sane p95 — graceful degradation, not collapse.

Artifacts:

* ``<output-dir>/run_table.csv`` + ``samples.jsonl`` — one row per
  load factor (see ``docs/loadtest.md`` for the shed taxonomy);
* ``benchmarks/trajectory/BENCH_pr7.json`` — the shed curve for the
  bench trajectory (commit this).

The committed ``benchmarks/baselines/degradation_gate.json``
thresholds were chosen from this script's 2x row — refresh both
together.
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.perfgate import calibrate  # noqa: E402
from repro.graph.generators import planted_kvcc_graph  # noqa: E402
from repro.graph.io import write_edge_list  # noqa: E402
from repro.loadtest import (  # noqa: E402
    get_scenario,
    run_scenario,
    write_run_table,
    write_samples_jsonl,
)

ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT_DIR = ROOT / "benchmarks" / "results" / "degradation"
DEFAULT_TRAJECTORY = ROOT / "benchmarks" / "trajectory" / "BENCH_pr7.json"

#: The perf-gate smoke graph (same shape bench_loadtest.py drives).
GRAPH_ARGS = (3, 30, 4)
GRAPH_SEED = 7
TOPOLOGY = "planted-3x30-k4"

#: 2 daemon workers x 20 ms hang-calibrated resolve = ~100 queries/s,
#: independent of host speed (the hang dominates real service time).
DAEMON_WORKERS = 2
HANG_SECONDS = 0.02
CAPACITY_RPS = DAEMON_WORKERS / HANG_SECONDS
DAEMON_MAX_QUEUE = 8
DAEMON_ENV = {
    "REPRO_FAULT": "engine.resolve:*:hang:*",
    "REPRO_FAULT_HANG_SECONDS": str(HANG_SECONDS),
}

LOAD_FACTORS = (0.5, 1.0, 1.5, 2.0)


def _median(values) -> float:
    cleaned = [v for v in values if v == v]  # drop NaN
    return round(statistics.median(cleaned), 6) if cleaned else float("nan")


def summarise(rows_by_factor) -> dict:
    """Per-load-factor medians for the trajectory doc."""
    cases: dict[str, dict] = {}
    for factor, reps in sorted(rows_by_factor.items()):
        cases[f"serve-degrade/{factor:g}x"] = {
            "description": (
                f"degrade scenario at {factor:g}x hang-calibrated "
                f"capacity ({reps[0].offered_rps:g} rps offered vs "
                f"~{CAPACITY_RPS:g} rps servable), {reps[0].workers} "
                f"client workers, retry budget 3, daemon max-queue "
                f"{DAEMON_MAX_QUEUE}, {len(reps)} repetition(s)"
            ),
            "load_factor": factor,
            "offered_rps": reps[0].offered_rps,
            "achieved_rps_median": _median(r.achieved_rps for r in reps),
            "p50_latency_ms_median": _median(r.p50_latency_ms for r in reps),
            "p95_latency_ms_median": _median(r.p95_latency_ms for r in reps),
            "p99_latency_ms_median": _median(r.p99_latency_ms for r in reps),
            "failure_rate_max": max(r.failure_rate for r in reps),
            "shed_rate_median": _median(r.shed_rate for r in reps),
            "shed_requests_total": sum(r.shed_requests for r in reps),
            "retried_requests_total": sum(r.retried_requests for r in reps),
            "retries_total": sum(r.retries_total for r in reps),
            "serving_shed_total": sum(r.serving_shed for r in reps),
            "serving_internal_errors_total": sum(
                r.serving_internal_errors for r in reps
            ),
        }
    return cases


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=DEFAULT_OUTPUT_DIR,
        help=f"run_table.csv / samples.jsonl directory "
        f"(default {DEFAULT_OUTPUT_DIR})",
    )
    parser.add_argument(
        "--trajectory-out",
        type=Path,
        default=DEFAULT_TRAJECTORY,
        help=f"trajectory document to write (default {DEFAULT_TRAJECTORY})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="sweep only 0.5x and 2x (for a fast local check)",
    )
    args = parser.parse_args(argv)

    calibration_s = calibrate()
    args.output_dir.mkdir(parents=True, exist_ok=True)
    table_path = args.output_dir / "run_table.csv"
    samples_path = args.output_dir / "samples.jsonl"
    samples_path.write_text("", encoding="utf-8")

    factors = (0.5, 2.0) if args.quick else LOAD_FACTORS
    rows = []
    rows_by_factor: dict[float, list] = {}
    with tempfile.TemporaryDirectory(prefix="ripple-degrade-") as tmp:
        graph_path = Path(tmp) / "smoke.edges"
        write_edge_list(
            planted_kvcc_graph(*GRAPH_ARGS, seed=GRAPH_SEED), graph_path
        )
        for factor in factors:
            scenario = get_scenario("degrade").with_overrides(
                offered_rps=CAPACITY_RPS * factor
            )
            print(
                f"running {factor:g}x: {scenario.offered_rps:g} rps "
                f"offered vs ~{CAPACITY_RPS:g} rps hang-calibrated "
                f"capacity"
            )
            outcome = run_scenario(
                scenario,
                graph_path,
                topology=TOPOLOGY,
                daemon_workers=DAEMON_WORKERS,
                daemon_max_queue=DAEMON_MAX_QUEUE,
                daemon_env=DAEMON_ENV,
                calibration_s=calibration_s,
            )
            rows.extend(outcome.rows)
            rows_by_factor[factor] = list(outcome.rows)
            for repetition, samples in sorted(outcome.samples.items()):
                write_samples_jsonl(
                    samples_path, scenario.name, repetition, samples
                )

    write_run_table(table_path, rows)

    document = {
        "schema": "repro.bench-trajectory/1",
        "pr": 7,
        "date": datetime.date.today().isoformat(),
        "title": (
            "Graceful degradation: shed curve of ripple serve under "
            "admission control, swept past hang-calibrated capacity"
        ),
        "method": (
            "scripts/bench_degradation.py: the daemon runs 2 workers "
            "with an armed engine.resolve:*:hang:* fault (20 ms per "
            "resolve) so capacity is ~100 rps regardless of host "
            "speed; the degrade scenario (point-only, 16 client "
            "workers, retry budget 3) is offered 0.5x/1x/1.5x/2x that "
            "capacity open-loop; shed responses carry retry_after_ms "
            "and clients back off with seeded jitter; latency is "
            "measured from the scheduled arrival instant; warmup "
            "excluded; medians across repetitions."
        ),
        "calibration_s": round(calibration_s, 6),
        "topology": TOPOLOGY,
        "capacity_rps": CAPACITY_RPS,
        "daemon_max_queue": DAEMON_MAX_QUEUE,
        "cases": summarise(rows_by_factor),
    }
    args.trajectory_out.parent.mkdir(parents=True, exist_ok=True)
    args.trajectory_out.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )

    for name, case in document["cases"].items():
        print(
            f"{name}: {case['achieved_rps_median']:.1f}/"
            f"{case['offered_rps']:g} rps, "
            f"p95 {case['p95_latency_ms_median']:.2f} ms, "
            f"shed {case['shed_rate_median']:.4f}, "
            f"internal {case['serving_internal_errors_total']}, "
            f"max failure rate {case['failure_rate_max']:.4f}"
        )
    print(f"wrote {table_path}")
    print(f"wrote {args.trajectory_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
