"""CI metrics smoke: scrape ``/metrics`` mid-run and validate it.

Usage:
    PYTHONPATH=src python scripts/ci_metrics_smoke.py --graph FILE
        [--artifacts DIR] [--requests N] [-k K]

Spawns a ``ripple serve --tcp`` daemon with ``--metrics-port 0`` and
``--access-log``, drives point queries at it, and — while load is
still in flight — scrapes the Prometheus endpoint and checks that:

* the whole exposition parses under the text-format v0.0.4 grammar
  with no duplicate metric families or samples
  (:func:`repro.serving.metrics.validate_exposition`);
* the required families are present with the right types:
  ``serving_requests_total`` (counter), per-class
  ``serving_queue_depth`` (gauge), and the ``serving_handle_seconds``
  histogram;
* the JSONL access log holds one complete record per request, and
  client-supplied ``request_id`` values round-tripped unmodified.

The scraped exposition is saved to ``<artifacts>/metrics.txt`` and the
access log to ``<artifacts>/metrics_access.jsonl`` so the CI artifact
upload preserves both for autopsy. Exit 0 on success, 1 on any
violation (with the reason on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.loadtest.harness import DaemonProcess, ask  # noqa: E402
from repro.serving.metrics import validate_exposition  # noqa: E402

#: Family -> declared type the exposition must contain (the acceptance
#: floor; the full catalogue lives in docs/observability.md).
REQUIRED_FAMILIES = {
    "serving_requests_total": "counter",
    "serving_queue_depth": "gauge",
    "serving_handle_seconds": "histogram",
}

#: Keys every access-log record must carry.
REQUIRED_LOG_KEYS = ("ts", "request_id", "op", "outcome", "handle_ms")


def _fail(message: str) -> int:
    print(f"ci_metrics_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def _drive(address, count: int, k: int, offset: int, errors: list) -> None:
    for i in range(count):
        request_id = f"ci-{offset + i:05d}"
        try:
            response = ask(
                address,
                {"op": "query", "v": 0, "k": k, "request_id": request_id},
            )
        except (OSError, ValueError) as exc:
            errors.append(f"{request_id}: {exc}")
            return
        if response.get("request_id") != request_id:
            errors.append(
                f"{request_id}: response echoed "
                f"{response.get('request_id')!r}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--graph", required=True, help="edge-list file")
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=Path("load-artifacts"),
        help="directory for metrics.txt / metrics_access.jsonl",
    )
    parser.add_argument(
        "--requests", type=int, default=200, help="total queries to fire"
    )
    parser.add_argument("-k", type=int, default=4, help="query k")
    args = parser.parse_args(argv)

    args.artifacts.mkdir(parents=True, exist_ok=True)
    access_path = args.artifacts / "metrics_access.jsonl"
    access_path.write_text("", encoding="utf-8")

    daemon = DaemonProcess(
        args.graph, access_log=access_path, metrics_port=0
    )
    errors: list[str] = []
    try:
        address = daemon.start()
        # The metrics announce line follows the listening line; give
        # the stderr drain a moment to parse it.
        deadline = time.monotonic() + 10.0
        while daemon.metrics_address is None:
            if time.monotonic() > deadline:
                return _fail(
                    "daemon never announced a metrics address; stderr: "
                    + " | ".join(daemon.stderr_lines[-5:])
                )
            time.sleep(0.05)
        host, port = daemon.metrics_address
        url = f"http://{host}:{port}/metrics"

        # Warm the surfaces synchronously, then scrape *mid-run* with
        # the second half of the load still in flight.
        first_half = args.requests // 2
        _drive(address, first_half, args.k, 0, errors)
        driver = threading.Thread(
            target=_drive,
            args=(address, args.requests - first_half, args.k, first_half,
                  errors),
            name="ci-metrics-driver",
        )
        driver.start()
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                content_type = response.headers.get("Content-Type", "")
                text = response.read().decode("utf-8")
        finally:
            driver.join(timeout=120)
        (args.artifacts / "metrics.txt").write_text(text, encoding="utf-8")
    finally:
        daemon.stop()

    if errors:
        return _fail(
            f"{len(errors)} request failure(s): " + "; ".join(errors[:3])
        )
    if "version=0.0.4" not in content_type:
        return _fail(f"unexpected Content-Type {content_type!r}")
    try:
        declared = validate_exposition(text)
    except Exception as exc:
        return _fail(f"exposition failed the grammar check: {exc}")
    for family, kind in REQUIRED_FAMILIES.items():
        if declared.get(family) != kind:
            return _fail(
                f"metric family {family!r} must be declared as {kind!r}, "
                f"got {declared.get(family)!r}"
            )
    if 'serving_queue_depth{class="point"}' not in text:
        return _fail("serving_queue_depth carries no per-class samples")

    records = [
        json.loads(line)
        for line in access_path.read_text(encoding="utf-8").splitlines()
    ]
    queries = [r for r in records if r.get("op") == "query"]
    if len(queries) < args.requests:
        return _fail(
            f"access log holds {len(queries)} query records, "
            f"expected {args.requests}"
        )
    for record in records:
        missing = [key for key in REQUIRED_LOG_KEYS if key not in record]
        if missing:
            return _fail(f"access record missing {missing}: {record}")
    echoed = {r["request_id"] for r in queries}
    expected = {f"ci-{i:05d}" for i in range(args.requests)}
    if not expected <= echoed:
        return _fail(
            f"{len(expected - echoed)} client request ids never appeared "
            f"in the access log"
        )

    print(
        f"ci_metrics_smoke: OK — {len(declared)} metric families "
        f"validated mid-run, {len(records)} access records with "
        f"round-tripped request ids"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
