"""Re-measure the perf-gate cases and compare against a baseline.

Usage:
    python scripts/bench_compare.py [BASELINE] [--save-current FILE]
    python scripts/bench_compare.py --load-table run_table.csv \
        [--load-gate benchmarks/baselines/loadtest_gate.json]

Exits 0 when every case stays within tolerance (wall +30%,
calibration-adjusted; peak traced memory +20%), 1 on any regression
(with a per-span delta table localising it), 2 on usage errors.

``--load-table`` switches to the serving-capacity gate instead: every
row of the load-test run table (see ``docs/loadtest.md``) is judged
against the committed ``repro.loadgate/1`` thresholds — failure_rate
within the cap (0 by default), p95 latency under a ceiling, achieved
throughput over a floor, plus the shed-taxonomy bounds when the gate
sets them: ``max_shed_rate`` (collateral shedding under nominal load),
``min_shed_rate`` (a degradation gate proving overload actually shed
instead of silently queueing), and ``max_internal_errors`` (the
daemon's ``serving.errors.internal`` delta). The same busy-loop
calibration that normalises the perf gate rescales the latency/rps
thresholds per row, so a slow CI runner does not flake the gate; shed
bounds are absolute rates and stay unscaled.

``--inject-slowdown CASE:FACTOR`` multiplies one case's measured wall
time before the comparison — a test hook proving the gate actually
trips (used by the test suite and handy for CI dry runs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import perfgate  # noqa: E402

DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "baselines"
    / "smoke.json"
)

DEFAULT_LOAD_GATE = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "baselines"
    / "loadtest_gate.json"
)


def _run_load_gate(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.loadtest.run_table import read_run_table

    try:
        gate = perfgate.load_gate_config(str(args.load_gate))
        rows = read_run_table(args.load_table)
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verdict = perfgate.compare_load_table(rows, gate)
    print(perfgate.render_load_report(verdict))
    return 0 if verdict["ok"] else 1


def _parse_slowdown(spec: str) -> tuple[str, float]:
    name, _, factor = spec.rpartition(":")
    if not name:
        raise argparse.ArgumentTypeError(
            f"expected CASE:FACTOR, got {spec!r}"
        )
    try:
        value = float(factor)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad factor in {spec!r}"
        ) from exc
    if value <= 0:
        raise argparse.ArgumentTypeError("factor must be positive")
    return name, value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline",
        nargs="?",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline document (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="uninstrumented wall-time repeats per case (default 5)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=perfgate.WALL_TOLERANCE,
        help="relative wall regression allowed (default 0.30)",
    )
    parser.add_argument(
        "--mem-tolerance",
        type=float,
        default=perfgate.MEM_TOLERANCE,
        help="relative memory regression allowed (default 0.20)",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=_parse_slowdown,
        metavar="CASE:FACTOR",
        help="test hook: scale one case's measured wall time",
    )
    parser.add_argument(
        "--save-current",
        type=Path,
        metavar="FILE",
        help="also save the candidate measurement document (CI artifact)",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="print the per-span delta table even when the gate passes",
    )
    parser.add_argument(
        "--load-table",
        type=Path,
        metavar="CSV",
        help="judge a load-test run_table.csv instead of re-measuring "
        "the perf cases (see docs/loadtest.md)",
    )
    parser.add_argument(
        "--load-gate",
        type=Path,
        default=DEFAULT_LOAD_GATE,
        metavar="FILE",
        help=f"load-gate thresholds (default {DEFAULT_LOAD_GATE})",
    )
    args = parser.parse_args(argv)

    if args.load_table is not None:
        return _run_load_gate(args)

    try:
        baseline = perfgate.load_document(str(args.baseline))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    candidate = perfgate.run_suite(repeats=args.repeats)
    if args.inject_slowdown is not None:
        name, factor = args.inject_slowdown
        case = candidate["cases"].get(name)
        if case is None:
            print(
                f"error: --inject-slowdown names unknown case {name!r}; "
                f"known: {', '.join(sorted(candidate['cases']))}",
                file=sys.stderr,
            )
            return 2
        case["wall_s"] = round(case["wall_s"] * factor, 6)

    if args.save_current is not None:
        args.save_current.parent.mkdir(parents=True, exist_ok=True)
        with open(args.save_current, "w", encoding="utf-8") as handle:
            json.dump(candidate, handle, indent=2, sort_keys=True)
            handle.write("\n")

    verdict = perfgate.compare(
        baseline,
        candidate,
        wall_tolerance=args.wall_tolerance,
        mem_tolerance=args.mem_tolerance,
    )
    print(perfgate.render_report(verdict, verbose_spans=args.spans))
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
