"""Load-test the serving tier and write the PR-6 capacity trajectory.

Usage:
    PYTHONPATH=src python scripts/bench_loadtest.py [--output-dir DIR]
        [--trajectory-out FILE] [--scenario NAME ...] [--quick]

Spawns a fresh ``ripple serve`` daemon per repetition on the perf-gate
smoke graph (3 planted 4-VCCs of 30 vertices) and drives the built-in
scenarios at it open-loop. Artifacts:

* ``<output-dir>/run_table.csv`` + ``samples.jsonl`` — the capacity
  record (one row per scenario×repetition, see ``docs/loadtest.md``);
* ``benchmarks/trajectory/BENCH_pr6.json`` — per-scenario medians for
  the bench trajectory (commit this; regenerate on the same class of
  machine you quote it from).

The committed ``benchmarks/baselines/loadtest_gate.json`` thresholds
were chosen from this script's ``smoke`` rows — refresh both together.
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.perfgate import calibrate  # noqa: E402
from repro.graph.generators import planted_kvcc_graph  # noqa: E402
from repro.graph.io import write_edge_list  # noqa: E402
from repro.loadtest import (  # noqa: E402
    get_scenario,
    run_scenario,
    write_run_table,
    write_samples_jsonl,
)

ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT_DIR = ROOT / "benchmarks" / "results" / "loadtest"
DEFAULT_TRAJECTORY = ROOT / "benchmarks" / "trajectory" / "BENCH_pr6.json"

#: The perf-gate smoke graph (same shape bench_serving.py measures).
GRAPH_ARGS = (3, 30, 4)
GRAPH_SEED = 7
TOPOLOGY = "planted-3x30-k4"

DEFAULT_SCENARIOS = ("point", "mixed", "storm", "smoke")


def _median(values) -> float:
    cleaned = [v for v in values if v == v]  # drop NaN
    return round(statistics.median(cleaned), 6) if cleaned else float("nan")


def summarise(rows) -> dict:
    """Per-scenario medians across repetitions for the trajectory doc."""
    cases: dict[str, dict] = {}
    for name in sorted({row.scenario for row in rows}):
        reps = [row for row in rows if row.scenario == name]
        cases[f"serve-load/{name}"] = {
            "description": (
                f"{name} scenario on {TOPOLOGY}: "
                f"{reps[0].offered_rps:g} rps offered open-loop, "
                f"{reps[0].workers} client workers, "
                f"{len(reps)} repetition(s)"
            ),
            "offered_rps": reps[0].offered_rps,
            "achieved_rps_median": _median(r.achieved_rps for r in reps),
            "p50_latency_ms_median": _median(r.p50_latency_ms for r in reps),
            "p95_latency_ms_median": _median(r.p95_latency_ms for r in reps),
            "p99_latency_ms_median": _median(r.p99_latency_ms for r in reps),
            "failure_rate_max": max(r.failure_rate for r in reps),
            "cpu_usage_avg_median": _median(r.cpu_usage_avg for r in reps),
            "rss_peak_mb_max": max(r.rss_peak_mb for r in reps),
            "stale_rebuilds_total": sum(
                r.serving_index_stale_rebuilds for r in reps
            ),
        }
    return cases


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=DEFAULT_OUTPUT_DIR,
        help=f"run_table.csv / samples.jsonl directory "
        f"(default {DEFAULT_OUTPUT_DIR})",
    )
    parser.add_argument(
        "--trajectory-out",
        type=Path,
        default=DEFAULT_TRAJECTORY,
        help=f"trajectory document to write (default {DEFAULT_TRAJECTORY})",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help=f"scenario to run; repeatable "
        f"(default: {' '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single repetition per scenario (for a fast local check)",
    )
    args = parser.parse_args(argv)

    calibration_s = calibrate()
    args.output_dir.mkdir(parents=True, exist_ok=True)
    table_path = args.output_dir / "run_table.csv"
    samples_path = args.output_dir / "samples.jsonl"
    samples_path.write_text("", encoding="utf-8")

    rows = []
    with tempfile.TemporaryDirectory(prefix="ripple-loadtest-") as tmp:
        graph_path = Path(tmp) / "smoke.edges"
        write_edge_list(
            planted_kvcc_graph(*GRAPH_ARGS, seed=GRAPH_SEED), graph_path
        )
        for name in args.scenarios or DEFAULT_SCENARIOS:
            scenario = get_scenario(name)
            if args.quick:
                scenario = scenario.with_overrides(repetitions=1)
            print(
                f"running {scenario.name!r}: {scenario.offered_rps:g} rps "
                f"x {scenario.duration_s:g}s x {scenario.repetitions} rep(s)"
            )
            outcome = run_scenario(
                scenario,
                graph_path,
                topology=TOPOLOGY,
                calibration_s=calibration_s,
            )
            rows.extend(outcome.rows)
            for repetition, samples in sorted(outcome.samples.items()):
                write_samples_jsonl(
                    samples_path, scenario.name, repetition, samples
                )

    write_run_table(table_path, rows)

    document = {
        "schema": "repro.bench-trajectory/1",
        "pr": 6,
        "date": datetime.date.today().isoformat(),
        "title": (
            "Serving under load: open-loop capacity of the ripple serve "
            "daemon (spawned subprocess, concurrent TCP clients)"
        ),
        "method": (
            "scripts/bench_loadtest.py: per scenario, a fresh daemon "
            "subprocess per repetition on the perf-gate smoke graph; "
            "precomputed seeded open-loop schedules (latency measured "
            "from the scheduled arrival instant, so queueing counts); "
            "warmup excluded; CPU/RSS polled from /proc of the daemon; "
            "medians across repetitions. calibration_s is the perf-gate "
            "busy loop on this machine — the load gate rescales its "
            "thresholds by it."
        ),
        "calibration_s": round(calibration_s, 6),
        "topology": TOPOLOGY,
        "cases": summarise(rows),
    }
    args.trajectory_out.parent.mkdir(parents=True, exist_ok=True)
    args.trajectory_out.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )

    for name, case in document["cases"].items():
        print(
            f"{name}: {case['achieved_rps_median']:.1f}/"
            f"{case['offered_rps']:g} rps, "
            f"p95 {case['p95_latency_ms_median']:.2f} ms, "
            f"max failure rate {case['failure_rate_max']:.4f}"
        )
    print(f"wrote {table_path}")
    print(f"wrote {args.trajectory_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
