"""Measure cold vs. indexed vs. cached QkVCS latency; write the PR-5 row.

Usage:
    PYTHONPATH=src python scripts/bench_serving.py [--output FILE]

Every (vertex, k) query on the planted smoke graph is answered three
ways — cold (a fresh ``kvcc_containing`` enumeration per query), from
a prebuilt :class:`repro.serving.KvccIndex` with the result cache
disabled, and from a warm LRU cache — and the per-query medians land
in ``benchmarks/trajectory/BENCH_pr5.json``. The committed document is
what ``benchmarks/test_serving_latency.py`` checks the ≥10× indexed
speedup claim against, so regenerate it on the same class of machine
you quote it from.
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.query import kvcc_containing  # noqa: E402
from repro.graph.generators import planted_kvcc_graph  # noqa: E402
from repro.serving import KvccIndex, QueryEngine  # noqa: E402

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "trajectory"
    / "BENCH_pr5.json"
)

#: The perf-gate smoke graph: 3 planted 4-VCCs of 30 vertices.
GRAPH_ARGS = (3, 30, 4)
GRAPH_SEED = 7
KS = (2, 4)


def _median_latency(answer, queries) -> float:
    """Median seconds per query of ``answer(vertex, k)`` over ``queries``."""
    samples = []
    for vertex, k in queries:
        start = time.perf_counter()
        answer(vertex, k)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure() -> dict:
    graph = planted_kvcc_graph(*GRAPH_ARGS, seed=GRAPH_SEED)
    queries = [(vertex, k) for vertex in sorted(graph.vertices()) for k in KS]

    cold_s = _median_latency(
        lambda vertex, k: kvcc_containing(graph, vertex, k), queries
    )

    build_start = time.perf_counter()
    index = KvccIndex.build(graph)
    build_s = time.perf_counter() - build_start

    uncached = QueryEngine(graph, index, cache_size=0)
    indexed_s = _median_latency(uncached.query, queries)

    cached = QueryEngine(graph, index)
    for vertex, k in queries:  # warm every entry
        cached.query(vertex, k)
    cached_s = _median_latency(cached.query, queries)

    num_communities, size, k = GRAPH_ARGS
    case = f"qkvcs/planted-{num_communities}x{size}-k{k}"
    return {
        "schema": "repro.bench-trajectory/1",
        "pr": 5,
        "date": datetime.date.today().isoformat(),
        "title": (
            "Query serving: persistent KvccIndex + cached QueryEngine "
            "vs. per-query enumeration"
        ),
        "method": (
            "per-query wall medians over every (vertex, k) pair of the "
            "perf-gate smoke graph, k in "
            f"{list(KS)}; cold = one kvcc_containing enumeration per "
            "query, indexed = QueryEngine on a prebuilt KvccIndex with "
            "cache_size=0, cached = the same engine after a full "
            "warming pass. index_build_s is the one-off cost the "
            "indexed/cached paths amortise."
        ),
        "queries": len(queries),
        "cases": {
            case: {
                "description": (
                    f"{len(queries)} QkVCS queries on {num_communities} "
                    f"planted {k}-VCCs of {size} vertices"
                ),
                "index_build_s": round(build_s, 6),
                "cold": {"median_s": round(cold_s, 9)},
                "indexed": {"median_s": round(indexed_s, 9)},
                "cached": {"median_s": round(cached_s, 9)},
                "speedup_indexed_vs_cold": round(cold_s / indexed_s, 1),
                "speedup_cached_vs_cold": round(cold_s / cached_s, 1),
            }
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"trajectory file to write (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    document = measure()
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )

    (case_name, case) = next(iter(document["cases"].items()))
    print(f"{case_name}: {document['queries']} queries")
    for source in ("cold", "indexed", "cached"):
        print(f"  {source:>7}: {case[source]['median_s'] * 1e6:10.1f} us/query")
    print(
        f"  indexed speedup {case['speedup_indexed_vs_cold']}x, "
        f"cached {case['speedup_cached_vs_cold']}x "
        f"(index built once in {case['index_build_s']:.3f}s)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
