"""Measure the perf-gate cases and write a committed baseline document.

Usage:
    python scripts/bench_baseline.py --refresh [--output FILE]

Baselines are committed (``benchmarks/baselines/smoke.json``) so CI
can gate pull requests without a trusted previous run; the document
embeds a busy-loop calibration so the comparison normalises away
machine-speed differences (see ``repro.bench.perfgate``). Refusing to
overwrite without ``--refresh`` keeps an accidental local run from
silently moving the goalposts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import perfgate  # noqa: E402

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "baselines"
    / "smoke.json"
)

DEFAULT_STATS_OUTPUT = DEFAULT_OUTPUT.with_name("smoke_stats.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"baseline file to write (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="uninstrumented wall-time repeats per case (default 5)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="required to overwrite an existing baseline file",
    )
    parser.add_argument(
        "--stats-output",
        type=Path,
        default=None,
        help=(
            "repro.obs/1 stats baseline to write alongside (default: "
            "<output>_stats.json next to --output, i.e. "
            f"{DEFAULT_STATS_OUTPUT}); CI diffs each run against it "
            "with `ripple stats diff`"
        ),
    )
    args = parser.parse_args(argv)
    if args.stats_output is None:
        args.stats_output = args.output.with_name(
            args.output.stem + "_stats.json"
        )

    if not args.refresh:
        for existing in (args.output, args.stats_output):
            if existing.exists():
                print(
                    f"error: {existing} exists; pass --refresh to overwrite",
                    file=sys.stderr,
                )
                return 2

    document = perfgate.run_suite(repeats=args.repeats)
    document["csr_microbench"] = _csr_microbench()
    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {args.output}")
    for name, case in sorted(document["cases"].items()):
        print(
            f"  {name}: wall {case['wall_s']:.6f}s, "
            f"peak {case['mem_peak_bytes']} bytes"
        )
    print(f"  calibration: {document['calibration_s']:.6f}s")

    # Sibling repro.obs/1 baseline: one instrumented run of the first
    # smoke case, saved so the CI perf-gate job can upload a
    # `ripple stats diff` of the committed counters vs the current
    # run's (counters are deterministic; the timing rows are
    # informational only and never gated).
    stats_doc = json.loads(_stats_baseline().to_json())
    with open(args.stats_output, "w", encoding="utf-8") as handle:
        json.dump(stats_doc, handle, indent=2)
        handle.write("\n")
    print(f"stats baseline written to {args.stats_output}")

    micro = document["csr_microbench"]
    print(
        "  csr microbench: network build "
        f"{micro['build_csr_us']:.1f}us (csr) vs "
        f"{micro['build_dict_us']:.1f}us (dict), "
        f"ratio {micro['build_ratio']:.2f}x"
    )
    return 0


def _csr_microbench(builds: int = 100, batches: int = 5) -> dict:
    """Per-build cost of the flow network: CSR route vs dict route.

    The tentpole claim of the flat-array substrate is that a
    ``VertexSplitNetwork`` over a primed CSR snapshot beats the
    dict-adjacency construction it replaced; this records that ratio
    (best-of-``batches`` mean over ``builds`` constructions each) next
    to the gated walls so a regression in either route is visible in
    the committed baseline. Informational only — never gated.
    """
    import time

    from repro.flow import fastpath
    from repro.flow.network import VertexSplitNetwork
    from repro.graph.generators import planted_kvcc_graph

    graph = planted_kvcc_graph(3, 30, 4, seed=0)
    members = set(sorted(graph.vertices())[:30])
    graph.csr()  # prime the snapshot so the CSR route is taken
    out: dict = {"builds": builds, "batches": batches}
    for key, csr_on in (("build_csr_us", True), ("build_dict_us", False)):
        best = float("inf")
        with fastpath.configured(csr=csr_on):
            for _ in range(batches):
                start = time.perf_counter()
                for _ in range(builds):
                    VertexSplitNetwork(graph, members)
                best = min(best, time.perf_counter() - start)
        out[key] = round(best / builds * 1e6, 2)
    out["build_ratio"] = round(out["build_dict_us"] / out["build_csr_us"], 3)
    return out


def _stats_baseline() -> "obs.Collector":
    """Collect one instrumented RIPPLE run of the CI smoke case."""
    from repro import obs
    from repro.core.ripple import ripple
    from repro.graph.generators import planted_kvcc_graph

    graph = planted_kvcc_graph(3, 30, 4, seed=0)
    collector = obs.Collector()
    collector.enable_spans()
    with obs.collecting(collector):
        ripple(graph, 4)
    return collector


if __name__ == "__main__":
    sys.exit(main())
