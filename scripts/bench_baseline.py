"""Measure the perf-gate cases and write a committed baseline document.

Usage:
    python scripts/bench_baseline.py --refresh [--output FILE]

Baselines are committed (``benchmarks/baselines/smoke.json``) so CI
can gate pull requests without a trusted previous run; the document
embeds a busy-loop calibration so the comparison normalises away
machine-speed differences (see ``repro.bench.perfgate``). Refusing to
overwrite without ``--refresh`` keeps an accidental local run from
silently moving the goalposts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import perfgate  # noqa: E402

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parents[1]
    / "benchmarks"
    / "baselines"
    / "smoke.json"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"baseline file to write (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="uninstrumented wall-time repeats per case (default 5)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="required to overwrite an existing baseline file",
    )
    args = parser.parse_args(argv)

    if args.output.exists() and not args.refresh:
        print(
            f"error: {args.output} exists; pass --refresh to overwrite",
            file=sys.stderr,
        )
        return 2

    document = perfgate.run_suite(repeats=args.repeats)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {args.output}")
    for name, case in sorted(document["cases"].items()):
        print(
            f"  {name}: wall {case['wall_s']:.6f}s, "
            f"peak {case['mem_peak_bytes']} bytes"
        )
    print(f"  calibration: {document['calibration_s']:.6f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
