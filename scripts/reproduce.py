"""Run the full reproduction and assemble a single REPORT.md.

Orchestrates what `pytest benchmarks/ --benchmark-only` does, but
without pytest: every experiment runner executes in-process, the
rendered tables are collected, and the output is one markdown report
with the measured tables inline — handy for CI artifacts or for a
quick "did my change move any number?" diff.

Usage:  python scripts/reproduce.py [output.md]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro import __version__
from repro.bench import (
    fig7_series,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    render_series,
    render_table,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
)


def _block(title: str, text: str) -> str:
    return f"## {title}\n\n```\n{text}\n```\n"


def main() -> None:
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("REPORT.md")
    started = time.perf_counter()
    sections: list[str] = [
        "# Reproduction report",
        "",
        f"Library version {__version__}. Regenerates every table and "
        "figure of the paper's evaluation on the synthetic stand-in "
        "datasets; see EXPERIMENTS.md for the paper-vs-measured "
        "interpretation of each exhibit.",
        "",
    ]

    steps = [
        (
            "Table II — dataset statistics",
            lambda: render_table(
                "Table II",
                ["dataset", "mirrors", "|V|", "|E|", "avg deg", "k_max"],
                table2_rows(),
            ),
        ),
        (
            "Table III — accuracy",
            lambda: render_table(
                "Table III",
                ["dataset", "k", "F_same RP", "F_same BU",
                 "J_Index RP", "J_Index BU"],
                table3_rows(),
            ),
        ),
        (
            "Figure 7 — runtime vs k (ca-mathscinet)",
            lambda: render_series(
                "Figure 7",
                "k",
                *fig7_series("ca-mathscinet"),
            ),
        ),
        (
            "Figure 8 — peak memory",
            lambda: render_table(
                "Figure 8 (KiB)",
                ["dataset", "k", "VCCE-TD", "VCCE-BU", "RIPPLE"],
                fig8_rows(),
            ),
        ),
        (
            "Table IV — RIPPLE vs RIPPLE-ME",
            lambda: render_table(
                "Table IV",
                ["dataset", "k", "RP s", "RP F", "RP J",
                 "ME s", "ME F", "ME J"],
                table4_rows(),
            ),
        ),
        (
            "Table V — ablation",
            lambda: render_table(
                "Table V",
                ["dataset", "k", "variant", "time", "F_same", "J_Index"],
                table5_rows(),
            ),
        ),
        (
            "Table VI — seeding",
            lambda: render_table(
                "Table VI",
                ["dataset", "k", "kBFS %", "BK-MCQ %", "total %",
                 "speedup"],
                table6_rows(),
            ),
        ),
        (
            "Figure 9 — phase shares",
            lambda: render_table(
                "Figure 9 (%)",
                ["dataset", "k", "seeding", "merging", "expansion",
                 "other"],
                fig9_rows(),
            ),
        ),
        (
            "Figure 10 — parallel scaling",
            lambda: render_table(
                "Figure 10",
                ["dataset", "k", "backend", "workers", "time s",
                 "speedup"],
                fig10_rows("ca-dblp", worker_counts=(1, 2, 4)),
            ),
        ),
    ]
    for title, build in steps:
        print(f"running: {title} …", flush=True)
        sections.append(_block(title, build()))

    elapsed = time.perf_counter() - started
    sections.append(f"_Total reproduction time: {elapsed:.1f}s._\n")
    target.write_text("\n".join(sections), encoding="utf-8")
    print(f"report written to {target} ({elapsed:.1f}s)")


if __name__ == "__main__":
    main()
