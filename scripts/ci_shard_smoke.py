#!/usr/bin/env python
"""CI shard gate: N-shard answers byte-identical to the single index.

Usage:
    PYTHONPATH=src python scripts/ci_shard_smoke.py --graph FILE
        [--format snap] [--shards 4] [--replicas 2] [--artifacts DIR]

Builds one monolithic :class:`KvccIndex` and a ``--shards``-way
:class:`ShardSet` over the same graph, round-trips the shard set
through its ``repro.kvcc-shards/1`` manifest on disk, then asks a
:class:`ShardRouter` (over the *loaded* manifest) and a plain
:class:`QueryEngine` **every vertex at every k** from 1 to the indexed
ceiling. Each pair of answers is serialised with the daemon's own wire
encoder and compared as JSON bytes — components, ordering, ``source``
tag, everything. One differing byte fails the job.

Also cross-checks the shard-key invariant directly (no shard_k-core
component spans two shards) and that the sweep exercised every shard.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.datasets.registry import load_snap_graph  # noqa: E402
from repro.graph.io import read_edge_list  # noqa: E402
from repro.serving import (  # noqa: E402
    KvccIndex,
    QueryEngine,
    ShardRouter,
    ShardSet,
)
from repro.serving.protocol import _encode_result  # noqa: E402
from repro.serving.shard import core_partition  # noqa: E402


def _wire(result) -> str:
    """The exact bytes the daemon would put on the wire for a result."""
    return json.dumps(_encode_result(result), separators=(",", ":"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--graph", required=True, help="graph file")
    parser.add_argument(
        "--format",
        choices=("edgelist", "snap"),
        default="snap",
        help="graph file format (default: snap)",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument(
        "--shard-k",
        type=int,
        default=3,
        help="partition by connected components of this core "
        "(default 3: the fixture's 3-core is its disjoint planted "
        "cliques; its 2-core is one self-loop-anchored component)",
    )
    parser.add_argument(
        "--artifacts", default=None, help="directory for the manifest"
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    if args.format == "snap":
        graph = load_snap_graph(args.graph)
    else:
        graph = read_edge_list(args.graph, allow_self_loops=True)
    print(
        f"shard-smoke: graph {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges"
    )

    index = KvccIndex.build(graph)
    engine = QueryEngine(graph, index, cache_size=0)

    shard_set = ShardSet.build(graph, args.shards, shard_k=args.shard_k)
    groups = core_partition(graph, args.shard_k)
    owners = shard_set.owner_map()
    for group in groups:
        spans = {owners[v] for v in group}
        if len(spans) != 1:
            print(
                f"FAIL: a shard_k-core component of {len(group)} "
                f"vertices spans shards {sorted(spans)}"
            )
            return 1
    print(
        f"shard-smoke: {len(groups)} core component(s) packed into "
        f"{args.shards} shard(s); no component spans shards"
    )

    artifacts = Path(
        args.artifacts if args.artifacts else tempfile.mkdtemp()
    )
    artifacts.mkdir(parents=True, exist_ok=True)
    manifest = artifacts / "shard-smoke.shards.json"
    shard_set.save(manifest)
    loaded = ShardSet.load(manifest)
    router = ShardRouter(
        loaded, graph=graph, replicas=args.replicas, cache_size=0
    )

    ceiling = index.ceiling
    queries = mismatches = 0
    shards_hit = set()
    for vertex in sorted(graph.vertices(), key=repr):
        shard = owners.get(vertex)
        if shard is not None:
            shards_hit.add(shard)
        for k in range(1, ceiling + 1):
            queries += 1
            mine = _wire(router.query(vertex, k))
            theirs = _wire(engine.query(vertex, k))
            if mine != theirs:
                mismatches += 1
                if mismatches <= 5:
                    print(f"MISMATCH v={vertex!r} k={k}:")
                    print(f"  router: {mine[:200]}")
                    print(f"  engine: {theirs[:200]}")
    router.close()

    nonempty = sum(1 for s in loaded.shards if s.num_vertices)
    elapsed = time.perf_counter() - started
    print(
        f"shard-smoke: {queries} queries (every vertex x k in "
        f"[1, {ceiling}]), {mismatches} mismatches, "
        f"{len(shards_hit)}/{nonempty} non-empty shards exercised, "
        f"{elapsed:.1f}s"
    )
    if mismatches:
        print("FAIL: sharded answers are not byte-identical")
        return 1
    if len(shards_hit) != nonempty:
        print("FAIL: the sweep left a non-empty shard untouched")
        return 1
    print("shard-smoke: OK — byte-identical across the full sweep")
    return 0


if __name__ == "__main__":
    sys.exit(main())
