"""The :class:`Collector`: process-wide counters and phase timers.

A collector is a plain accumulator — named integer counters, named
wall-clock buckets, and named latency histograms (see
:mod:`repro.obs.histogram`) — with a merge operation so that worker
processes
can aggregate locally and ship their snapshots back to the parent
(see :mod:`repro.parallel.executor`). The :class:`NullCollector`
subclass turns every recording method into a no-op so that
instrumented hot paths (Dinic augmentation loops, ME candidate
filters, FBM pair tests) cost one dynamic dispatch when observability
is off.

Snapshots serialise to the ``repro.obs/1`` JSON schema documented in
``docs/observability.md``; :meth:`Collector.to_json` /
:meth:`Collector.from_json` round-trip it.

Beyond the flat counters, a collector can carry a hierarchical
:class:`~repro.obs.spans.SpanRecorder` (see :mod:`repro.obs.spans`),
enabled per-collector via :meth:`Collector.enable_spans` — off by
default so the counter-only path keeps its cost. Span trees ride in
snapshots under the optional ``"spans"`` key and are re-parented under
the merging side's current span by :meth:`Collector.merge`.
"""

from __future__ import annotations

import json
import threading
import time

from repro.errors import ParseError
from repro.obs.histogram import Histogram
from repro.obs.spans import NULL_SPAN, SpanRecorder

__all__ = ["SCHEMA", "Collector", "NullCollector"]

#: Identifier embedded in every JSON dump so downstream tooling can
#: detect layout changes.
SCHEMA = "repro.obs/1"


class Collector:
    """Accumulates named counters and per-phase seconds.

    >>> collector = Collector()
    >>> collector.count("flow.dinic.calls")
    >>> with collector.span("seeding"):
    ...     pass
    >>> collector.counter("flow.dinic.calls")
    1
    """

    __slots__ = (
        "_counters",
        "_seconds",
        "_histograms",
        "_hist_lock",
        "_workers_merged",
        "_spans",
    )

    is_noop = False

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        # Histograms are multi-field updates (bucket + count + sum), so
        # unlike single-slot counter bumps a torn read would fail the
        # snapshot's count invariant. The serving daemon records into
        # one shared collector from every session thread, hence the
        # lock; counter-only paths never touch it.
        self._histograms: dict[str, Histogram] = {}
        self._hist_lock = threading.Lock()
        self._workers_merged = 0
        self._spans: SpanRecorder | None = None

    # -- recording -----------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def add_seconds(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock seconds into phase ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def span(self, name: str) -> "_Span":
        """Context manager timing its block into phase ``name``."""
        return _Span(self, name)

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation into histogram ``name``.

        Thread-safe: the serving daemon's session threads all record
        into the server's shared collector.
        """
        with self._hist_lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.record(seconds)

    # -- hierarchical spans --------------------------------------------

    def enable_spans(
        self, max_spans: int | None = None
    ) -> SpanRecorder:
        """Attach a span recorder (idempotent); returns it.

        Span recording is opt-in per collector: until this is called,
        :meth:`start_span` and friends are no-ops costing one ``None``
        check, so counter-only collection keeps its price.
        """
        if self._spans is None:
            self._spans = (
                SpanRecorder()
                if max_spans is None
                else SpanRecorder(max_spans)
            )
        return self._spans

    @property
    def spans(self) -> SpanRecorder | None:
        """The attached span recorder, or ``None`` when spans are off."""
        return self._spans

    def start_span(self, name: str, **attrs):
        """Context manager opening a child span of the current span."""
        if self._spans is None:
            return NULL_SPAN
        return self._spans.start(name, attrs)

    def span_event(self, name: str, **attrs) -> None:
        """Record a zero-duration marker under the current span."""
        if self._spans is not None:
            self._spans.event(name, **attrs)

    def agg_span(self, name: str):
        """Time one hot leaf call into the current span's aggregates."""
        if self._spans is None:
            return NULL_SPAN
        return self._spans.agg(name)

    def set_span_attrs(self, **attrs) -> None:
        """Update the current (innermost open) span's attributes."""
        if self._spans is not None:
            self._spans.set_attrs(**attrs)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def seconds(self, name: str) -> float:
        """Seconds accumulated for a phase (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    @property
    def counters(self) -> dict[str, int]:
        """A copy of the counter → value mapping."""
        return dict(self._counters)

    @property
    def phases(self) -> dict[str, float]:
        """A copy of the phase → seconds mapping."""
        return dict(self._seconds)

    def histogram(self, name: str) -> Histogram | None:
        """The named latency histogram, or ``None`` if never observed."""
        return self._histograms.get(name)

    @property
    def histograms(self) -> dict[str, Histogram]:
        """A copy of the histogram-name → histogram mapping."""
        return dict(self._histograms)

    def histogram_snapshots(self) -> dict[str, dict]:
        """Consistent snapshots of every histogram (name, sorted).

        Taken under the recording lock so a concurrent ``record`` can
        never produce a snapshot whose declared count disagrees with
        its bucket total.
        """
        with self._hist_lock:
            return {
                name: self._histograms[name].to_snapshot()
                for name in sorted(self._histograms)
            }

    @property
    def workers_merged(self) -> int:
        """How many worker snapshots have been merged in."""
        return self._workers_merged

    def is_empty(self) -> bool:
        """True when nothing has been recorded or merged."""
        return (
            not self._counters
            and not self._seconds
            and not self._histograms
            and self._workers_merged == 0
            and (self._spans is None or self._spans.is_empty())
        )

    # -- aggregation ---------------------------------------------------

    def snapshot(self) -> dict:
        """The current state as a plain mergeable dict."""
        state = {
            "counters": dict(self._counters),
            "phases": dict(self._seconds),
        }
        if self._histograms:
            state["histograms"] = self.histogram_snapshots()
        if self._spans is not None and not self._spans.is_empty():
            state["spans"] = self._spans.snapshot()
        return state

    def take(self) -> dict:
        """Snapshot the current state, then reset. For worker deltas."""
        state = self.snapshot()
        self.reset()
        return state

    def merge(self, snapshot: "Collector | dict") -> None:
        """Fold another collector (or a :meth:`snapshot` dict) into this.

        Used by the parallel executor: each pool task records into its
        own scoped collector and returns the snapshot with its result;
        the orchestrator merges them so per-run totals include worker
        activity.
        """
        if isinstance(snapshot, Collector):
            snapshot = snapshot.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, int(value))
        for name, seconds in snapshot.get("phases", {}).items():
            self.add_seconds(name, float(seconds))
        with self._hist_lock:
            for name, payload in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                histogram.merge(payload)
        spans_payload = snapshot.get("spans")
        if spans_payload:
            # Re-parent the worker's subtree under whatever span is
            # open here (the dispatching stage span), tagged with
            # origin="worker" so exporters can give it its own track.
            self.enable_spans().adopt(spans_payload)
        self._workers_merged += 1

    def reset(self) -> None:
        """Drop every recorded counter, phase, histogram, merge mark."""
        self._counters.clear()
        self._seconds.clear()
        with self._hist_lock:
            self._histograms.clear()
        self._workers_merged = 0
        if self._spans is not None:
            self._spans.reset()

    def reset_histograms(self) -> None:
        """Zero the window-scoped latency histograms only.

        Lifetime counters, phases, and spans are untouched — this backs
        the ``stats`` op's ``reset: true`` option, which lets an
        operator start a fresh measurement window without losing the
        daemon's cumulative request accounting.
        """
        with self._hist_lock:
            self._histograms.clear()

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Check the documented counter invariants; raise on violation.

        Enforced (see ``docs/observability.md``):

        * every counter, phase total, and the merge mark is
          non-negative;
        * ``merge.tests_attempted`` equals ``merge.tests_accepted`` +
          ``merge.tests_rejected`` (every attempted pair test resolves
          one way or the other).

        Raises :class:`repro.errors.ParseError` — the caller is either
        :meth:`from_json` (a corrupted document) or a tool refusing to
        aggregate inconsistent telemetry.
        """
        for name, value in self._counters.items():
            if value < 0:
                raise ParseError(
                    f"counter {name!r} is negative ({value})"
                )
        for name, seconds in self._seconds.items():
            if seconds < 0:
                raise ParseError(
                    f"phase {name!r} has negative seconds ({seconds})"
                )
        if self._workers_merged < 0:
            raise ParseError(
                f"workers_merged is negative ({self._workers_merged})"
            )
        attempted = self._counters.get("merge.tests_attempted", 0)
        accepted = self._counters.get("merge.tests_accepted", 0)
        rejected = self._counters.get("merge.tests_rejected", 0)
        if attempted != accepted + rejected:
            raise ParseError(
                "merge.tests_attempted invariant violated: "
                f"{attempted} attempted != {accepted} accepted "
                f"+ {rejected} rejected"
            )

    # -- serialisation -------------------------------------------------

    def to_json(self) -> str:
        """Serialise to the ``repro.obs/1`` schema (see docs).

        The optional ``"spans"`` key is only present when a span tree
        was recorded, so counter-only dumps keep the original layout.
        """
        payload = {
            "schema": SCHEMA,
            "counters": dict(sorted(self._counters.items())),
            "phases": dict(sorted(self._seconds.items())),
            "workers_merged": self._workers_merged,
        }
        if self._histograms:
            payload["histograms"] = self.histogram_snapshots()
        if self._spans is not None and not self._spans.is_empty():
            payload["spans"] = self._spans.snapshot()
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, document: str) -> "Collector":
        """Rebuild a collector from :meth:`to_json` output.

        Raises :class:`repro.errors.ParseError` on malformed documents
        and on documents violating :meth:`validate`'s invariants.
        """
        try:
            payload = json.loads(document)
            if payload.get("schema") != SCHEMA:
                raise ValueError(
                    f"unknown schema {payload.get('schema')!r}, "
                    f"expected {SCHEMA!r}"
                )
            collector = cls()
            for name, value in payload["counters"].items():
                collector._counters[str(name)] = int(value)
            for name, seconds in payload["phases"].items():
                collector._seconds[str(name)] = float(seconds)
            collector._workers_merged = int(
                payload.get("workers_merged", 0)
            )
            for name, histogram_payload in payload.get(
                "histograms", {}
            ).items():
                collector._histograms[str(name)] = (
                    Histogram.from_snapshot(histogram_payload)
                )
            spans_payload = payload.get("spans")
            if spans_payload:
                collector.enable_spans().load(dict(spans_payload))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ParseError(
                f"not a valid repro.obs document: {exc}"
            ) from exc
        collector.validate()
        return collector


class _Span:
    """Context manager produced by :meth:`Collector.span`."""

    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: Collector, name: str) -> None:
        self._collector = collector
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._collector.add_seconds(
            self._name, time.perf_counter() - self._start
        )


class _NullSpan:
    """Reusable do-nothing span for :class:`NullCollector`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullCollector(Collector):
    """A collector that records nothing.

    Installed as the process default so instrumentation calls in hot
    loops reduce to a single no-op method dispatch. Reading methods
    report emptiness; merging into it is discarded.
    """

    __slots__ = ()

    is_noop = True

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def add_seconds(self, name: str, seconds: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def span(self, name: str) -> "_NullSpan":  # type: ignore[override]
        return _NULL_SPAN

    def enable_spans(
        self, max_spans: int | None = None
    ) -> SpanRecorder:
        # Hand back a throwaway recorder instead of attaching one: the
        # shared NULL default must never start accumulating state.
        return SpanRecorder()

    def start_span(self, name: str, **attrs):
        return NULL_SPAN

    def span_event(self, name: str, **attrs) -> None:
        pass

    def agg_span(self, name: str):
        return NULL_SPAN

    def set_span_attrs(self, **attrs) -> None:
        pass

    def merge(self, snapshot: "Collector | dict") -> None:
        pass
