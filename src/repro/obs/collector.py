"""The :class:`Collector`: process-wide counters and phase timers.

A collector is a plain accumulator — named integer counters plus named
wall-clock buckets — with a merge operation so that worker processes
can aggregate locally and ship their snapshots back to the parent
(see :mod:`repro.parallel.executor`). The :class:`NullCollector`
subclass turns every recording method into a no-op so that
instrumented hot paths (Dinic augmentation loops, ME candidate
filters, FBM pair tests) cost one dynamic dispatch when observability
is off.

Snapshots serialise to the ``repro.obs/1`` JSON schema documented in
``docs/observability.md``; :meth:`Collector.to_json` /
:meth:`Collector.from_json` round-trip it.
"""

from __future__ import annotations

import json
import time

from repro.errors import ParseError

__all__ = ["SCHEMA", "Collector", "NullCollector"]

#: Identifier embedded in every JSON dump so downstream tooling can
#: detect layout changes.
SCHEMA = "repro.obs/1"


class Collector:
    """Accumulates named counters and per-phase seconds.

    >>> collector = Collector()
    >>> collector.count("flow.dinic.calls")
    >>> with collector.span("seeding"):
    ...     pass
    >>> collector.counter("flow.dinic.calls")
    1
    """

    __slots__ = ("_counters", "_seconds", "_workers_merged")

    is_noop = False

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        self._workers_merged = 0

    # -- recording -----------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def add_seconds(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock seconds into phase ``name``."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def span(self, name: str) -> "_Span":
        """Context manager timing its block into phase ``name``."""
        return _Span(self, name)

    # -- reading -------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    def seconds(self, name: str) -> float:
        """Seconds accumulated for a phase (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    @property
    def counters(self) -> dict[str, int]:
        """A copy of the counter → value mapping."""
        return dict(self._counters)

    @property
    def phases(self) -> dict[str, float]:
        """A copy of the phase → seconds mapping."""
        return dict(self._seconds)

    @property
    def workers_merged(self) -> int:
        """How many worker snapshots have been merged in."""
        return self._workers_merged

    def is_empty(self) -> bool:
        """True when nothing has been recorded or merged."""
        return (
            not self._counters
            and not self._seconds
            and self._workers_merged == 0
        )

    # -- aggregation ---------------------------------------------------

    def snapshot(self) -> dict:
        """The current state as a plain mergeable dict."""
        return {
            "counters": dict(self._counters),
            "phases": dict(self._seconds),
        }

    def take(self) -> dict:
        """Snapshot the current state, then reset. For worker deltas."""
        state = self.snapshot()
        self.reset()
        return state

    def merge(self, snapshot: "Collector | dict") -> None:
        """Fold another collector (or a :meth:`snapshot` dict) into this.

        Used by the parallel executor: each pool task records into its
        own scoped collector and returns the snapshot with its result;
        the orchestrator merges them so per-run totals include worker
        activity.
        """
        if isinstance(snapshot, Collector):
            snapshot = snapshot.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, int(value))
        for name, seconds in snapshot.get("phases", {}).items():
            self.add_seconds(name, float(seconds))
        self._workers_merged += 1

    def reset(self) -> None:
        """Drop every recorded counter, phase, and merge mark."""
        self._counters.clear()
        self._seconds.clear()
        self._workers_merged = 0

    # -- serialisation -------------------------------------------------

    def to_json(self) -> str:
        """Serialise to the ``repro.obs/1`` schema (see docs)."""
        payload = {
            "schema": SCHEMA,
            "counters": dict(sorted(self._counters.items())),
            "phases": dict(sorted(self._seconds.items())),
            "workers_merged": self._workers_merged,
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, document: str) -> "Collector":
        """Rebuild a collector from :meth:`to_json` output."""
        try:
            payload = json.loads(document)
            if payload.get("schema") != SCHEMA:
                raise ValueError(
                    f"unknown schema {payload.get('schema')!r}, "
                    f"expected {SCHEMA!r}"
                )
            collector = cls()
            for name, value in payload["counters"].items():
                collector._counters[str(name)] = int(value)
            for name, seconds in payload["phases"].items():
                collector._seconds[str(name)] = float(seconds)
            collector._workers_merged = int(
                payload.get("workers_merged", 0)
            )
            return collector
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ParseError(
                f"not a valid repro.obs document: {exc}"
            ) from exc


class _Span:
    """Context manager produced by :meth:`Collector.span`."""

    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: Collector, name: str) -> None:
        self._collector = collector
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._collector.add_seconds(
            self._name, time.perf_counter() - self._start
        )


class _NullSpan:
    """Reusable do-nothing span for :class:`NullCollector`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullCollector(Collector):
    """A collector that records nothing.

    Installed as the process default so instrumentation calls in hot
    loops reduce to a single no-op method dispatch. Reading methods
    report emptiness; merging into it is discarded.
    """

    __slots__ = ()

    is_noop = True

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def add_seconds(self, name: str, seconds: float) -> None:
        pass

    def span(self, name: str) -> "_NullSpan":  # type: ignore[override]
        return _NULL_SPAN

    def merge(self, snapshot: "Collector | dict") -> None:
        pass
