"""Observability substrate: counters, spans, and structured tracing.

Every performance claim in the paper's evaluation reduces to *where the
flow work goes* — augmentations inside Dinic, candidate filters inside
Multiple Expansion, pair tests inside Flow-Based Merging. This package
is the measurement layer those claims are checked against:

* :class:`Collector` — named integer counters + per-phase seconds,
  mergeable across workers, serialisable to the ``repro.obs/1`` JSON
  schema;
* :class:`NullCollector` — the zero-overhead default: recording methods
  are no-ops, so instrumented hot paths stay hot when nobody is
  measuring;
* :mod:`repro.obs.trace` — an opt-in (``REPRO_TRACE=1``) structured
  event log for debugging fixed-point loops;
* :mod:`repro.obs.spans` — an opt-in hierarchical span tree (wall,
  CPU, peak memory, attributes) for profiling where a run's time goes;
  enabled with ``collecting(spans=True)`` and recorded through
  :func:`start_span` / :func:`span_event` / :func:`agg_span`.

The *active* collector is tracked per thread. Module-level
:func:`count` / :func:`add_seconds` / :func:`span` delegate to it, so
instrumentation sites never hold a collector reference:

    from repro import obs

    with obs.collecting() as collector:
        ripple(graph, k=3)
    print(collector.counter("flow.dinic.augmentations"))

The thread-local scoping is what makes worker aggregation safe: each
parallel task pushes its own collector, records, pops, and returns the
snapshot with its result (see :mod:`repro.parallel.executor`).
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs import spans, trace
from repro.obs.collector import SCHEMA, Collector, NullCollector
from repro.obs.histogram import Histogram

__all__ = [
    "Collector",
    "Histogram",
    "NULL",
    "NullCollector",
    "SCHEMA",
    "add_seconds",
    "agg_span",
    "collecting",
    "count",
    "get_collector",
    "observe",
    "set_collector",
    "set_span_attrs",
    "span",
    "span_event",
    "spans",
    "start_span",
    "trace",
    "trace_event",
]

#: The process-wide no-op default every thread starts with.
NULL = NullCollector()


class _Local(threading.local):
    # Class-attribute fallback: a thread that never installed a
    # collector reads the shared no-op through plain attribute lookup,
    # sparing the hot module-level helpers a ``getattr`` default.
    collector: Collector = NULL


_tls = _Local()

# Pick up REPRO_TRACE from the environment as soon as the library is
# imported, so `REPRO_TRACE=1 python script.py` needs no code changes.
trace.configure_from_env()


def get_collector() -> Collector:
    """The thread's active collector (the shared no-op by default)."""
    return _tls.collector


def set_collector(collector: Collector) -> Collector:
    """Install ``collector`` as this thread's active one; returns the
    previous active collector so callers can restore it."""
    previous = get_collector()
    _tls.collector = collector
    return previous


@contextmanager
def collecting(
    collector: Collector | None = None,
    *,
    spans: bool = False,
) -> Iterator[Collector]:
    """Scope a collector over a block of work (thread-local).

    With no argument a fresh :class:`Collector` is created. The
    previously active collector is restored on exit, so scopes nest —
    the mechanism behind per-task worker deltas. ``spans=True``
    additionally enables hierarchical span recording on the scoped
    collector (see :mod:`repro.obs.spans`).
    """
    active = Collector() if collector is None else collector
    if spans:
        active.enable_spans()
    previous = set_collector(active)
    try:
        yield active
    finally:
        _tls.collector = previous


def count(name: str, amount: int = 1) -> None:
    """Bump a counter on the active collector."""
    collector = _tls.collector
    if collector.is_noop:
        # Early-out without a method dispatch: instrumentation sites in
        # flow/merge inner loops run millions of times uninstrumented,
        # and the gated perf cases time exactly that configuration.
        return
    collector.count(name, amount)


def add_seconds(name: str, seconds: float) -> None:
    """Accumulate seconds into a phase on the active collector."""
    _tls.collector.add_seconds(name, seconds)


def observe(name: str, seconds: float) -> None:
    """Record one latency observation into a histogram on the active
    collector (a no-op under the null default)."""
    _tls.collector.observe(name, seconds)


def span(name: str):
    """Context manager timing its block on the active collector."""
    return _tls.collector.span(name)


def start_span(name: str, **attrs):
    """Open a hierarchical span on the active collector (context
    manager; a no-op unless spans are enabled on it)."""
    collector = _tls.collector
    if collector.is_noop:
        return spans.NULL_SPAN
    return collector.start_span(name, **attrs)


def span_event(name: str, **attrs) -> None:
    """Record a zero-duration marker span on the active collector."""
    collector = _tls.collector
    if collector.is_noop:
        return
    collector.span_event(name, **attrs)


def agg_span(name: str):
    """Time one hot leaf call into the current span's aggregates
    (context manager; cheaper than a tree node per call)."""
    collector = _tls.collector
    if collector.is_noop:
        return spans.NULL_SPAN
    return collector.agg_span(name)


def set_span_attrs(**attrs) -> None:
    """Attach attributes to the current span on the active collector."""
    collector = _tls.collector
    if collector.is_noop:
        return
    collector.set_span_attrs(**attrs)


def trace_event(event: str, **fields) -> None:
    """Emit a structured trace event (no-op unless tracing is on)."""
    trace.emit(event, **fields)
