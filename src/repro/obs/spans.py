"""Hierarchical spans: where inside a run the time and memory go.

Counters (:mod:`repro.obs.collector`) answer *how much*; the span tree
answers *where*. A :class:`SpanRecorder` maintains a stack of open
:class:`Span` nodes per collector — each records wall time, CPU time
(``time.process_time``), peak traced memory (when ``tracemalloc`` is
active) and peak-RSS growth, plus free-form attributes (``k``, seed id,
candidate-ring size, merge-pair ids). Closed spans attach to their
parent, so one RIPPLE run yields the paper's Figure 9 breakdown as an
actual tree: QkVCS seeding → ME/RME expansion rounds → FBM merge tests,
with the flow-solver calls aggregated underneath.

Worker propagation: a parallel task records into its own recorder and
ships the serialised subtree back inside its counter snapshot
(:meth:`repro.obs.Collector.snapshot`); the orchestrator *adopts* it —
re-parents it under whichever span is open at merge time, tagged with
``origin="worker"`` — so the tree of a parallel run still reads
top-down (retries and degradations appear as zero-duration sibling
event spans, emitted by :mod:`repro.resilience.supervisor`).

Exporters: :func:`to_chrome_trace` emits the Chrome trace-event JSON
that chrome://tracing and Perfetto load (worker subtrees are placed on
their own tracks via greedy lane assignment); :func:`render_span_tree`
renders a flame-style text profile in which repeated siblings are
aggregated by name; :func:`span_totals` reduces a tree to per-name
totals for ``ripple stats diff`` and the perf-regression gate.
"""

from __future__ import annotations

import time
import tracemalloc

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanRecorder",
    "aggregate_tree",
    "render_span_tree",
    "span_totals",
    "to_chrome_trace",
]

#: Default cap on recorded spans per recorder: a pathological run
#: (thousands of merge pairs) degrades to dropped-span accounting
#: instead of unbounded memory.
DEFAULT_MAX_SPANS = 50_000


def _rss_peak_bytes() -> int:
    """Current peak RSS of this process in bytes (0 if unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    # ru_maxrss is KiB on Linux (bytes on macOS; close enough for deltas).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class Span:
    """One node of the span tree (a closed or in-flight measurement)."""

    __slots__ = (
        "name",
        "attrs",
        "t0",
        "wall",
        "cpu",
        "mem_peak",
        "rss_peak",
        "children",
        "agg",
        "_w0",
        "_c0",
        "_mem_base",
        "_abs_peak",
        "_r0",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.t0 = 0.0  # Unix epoch seconds (comparable across processes)
        self.wall = 0.0
        self.cpu = 0.0
        self.mem_peak: int | None = None  # tracemalloc peak above start
        self.rss_peak: int | None = None  # peak-RSS growth across the span
        self.children: list[Span] = []
        #: Aggregated leaf calls (flow solvers, cut searches):
        #: name → [count, wall_seconds, cpu_seconds].
        self.agg: dict[str, list] = {}
        self._w0 = 0.0
        self._c0 = 0.0
        self._mem_base = 0
        self._abs_peak = 0
        self._r0 = 0

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe; ships in worker snapshots)."""
        payload: dict = {
            "name": self.name,
            "t0": round(self.t0, 6),
            "wall": round(self.wall, 9),
            "cpu": round(self.cpu, 9),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.mem_peak is not None:
            payload["mem_peak"] = self.mem_peak
        if self.rss_peak is not None:
            payload["rss_peak"] = self.rss_peak
        if self.agg:
            payload["agg"] = {
                name: {
                    "count": entry[0],
                    "wall": round(entry[1], 9),
                    "cpu": round(entry[2], 9),
                }
                for name, entry in self.agg.items()
            }
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output."""
        span = cls(str(payload["name"]), dict(payload.get("attrs") or {}))
        span.t0 = float(payload.get("t0", 0.0))
        span.wall = float(payload.get("wall", 0.0))
        span.cpu = float(payload.get("cpu", 0.0))
        if "mem_peak" in payload:
            span.mem_peak = int(payload["mem_peak"])
        if "rss_peak" in payload:
            span.rss_peak = int(payload["rss_peak"])
        for name, entry in (payload.get("agg") or {}).items():
            span.agg[str(name)] = [
                int(entry.get("count", 0)),
                float(entry.get("wall", 0.0)),
                float(entry.get("cpu", 0.0)),
            ]
        span.children = [
            cls.from_dict(child) for child in payload.get("children") or []
        ]
        return span

    def walk(self):
        """Yield this span and every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpanContext:
    """Shared do-nothing context for disabled/over-cap spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager opening/closing one span on its recorder."""

    __slots__ = ("_recorder", "_name", "_attrs", "_span", "_tracing")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None
        self._tracing = False

    def __enter__(self) -> Span:
        span = Span(self._name, self._attrs)
        self._span = span
        recorder = self._recorder
        span._r0 = _rss_peak_bytes()
        self._tracing = tracemalloc.is_tracing()
        if self._tracing:
            current, peak = tracemalloc.get_traced_memory()
            # Fold the window's peak into every open ancestor before
            # resetting it, so nested resets never lose a high-water mark.
            for open_span in recorder._stack:
                if peak > open_span._abs_peak:
                    open_span._abs_peak = peak
            span._mem_base = current
            span._abs_peak = current
            tracemalloc.reset_peak()
        recorder._stack.append(span)
        span.t0 = time.time()
        span._w0 = time.perf_counter()
        span._c0 = time.process_time()
        return span

    def __exit__(self, *exc_info) -> None:
        span = self._span
        recorder = self._recorder
        span.wall = time.perf_counter() - span._w0
        span.cpu = time.process_time() - span._c0
        if self._tracing and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            if peak > span._abs_peak:
                span._abs_peak = peak
            span.mem_peak = max(0, span._abs_peak - span._mem_base)
            tracemalloc.reset_peak()
        rss_now = _rss_peak_bytes()
        if rss_now > span._r0:
            span.rss_peak = rss_now - span._r0
        recorder._stack.pop()
        parent = recorder._stack[-1] if recorder._stack else None
        if self._tracing and parent is not None:
            # The child's absolute peak is also a peak of the parent's
            # window; fold it up so the parent's own reading is exact.
            if span._abs_peak > parent._abs_peak:
                parent._abs_peak = span._abs_peak
        (parent.children if parent is not None else recorder.roots).append(
            span
        )


class _AggContext:
    """Context manager timing one aggregated leaf call (no tree node)."""

    __slots__ = ("_recorder", "_name", "_w0", "_c0")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._w0 = 0.0
        self._c0 = 0.0

    def __enter__(self) -> "_AggContext":
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc_info) -> None:
        stack = self._recorder._stack
        if not stack:
            return  # a bare call outside any span: counters still see it
        entry = stack[-1].agg.setdefault(self._name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += time.perf_counter() - self._w0
        entry[2] += time.process_time() - self._c0


class SpanRecorder:
    """Owns one span tree: an open-span stack plus the closed roots.

    A recorder belongs to exactly one :class:`repro.obs.Collector`;
    collectors are thread-scoped, so the stack needs no locking.
    """

    __slots__ = ("roots", "dropped", "max_spans", "_stack", "_count")

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.roots: list[Span] = []
        self.dropped = 0
        self.max_spans = max_spans
        self._stack: list[Span] = []
        self._count = 0

    # -- recording -----------------------------------------------------

    def start(self, name: str, attrs: dict) -> _SpanContext | _NullSpanContext:
        """Context manager opening a child span of the current span."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        self._count += 1
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration marker span under the current span."""
        if self._count >= self.max_spans:
            self.dropped += 1
            return
        self._count += 1
        span = Span(name, attrs)
        span.t0 = time.time()
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)

    def agg(self, name: str) -> _AggContext:
        """Context manager folding a hot leaf call into the current span."""
        return _AggContext(self, name)

    def set_attrs(self, **attrs) -> None:
        """Update the current (innermost open) span's attributes."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def is_empty(self) -> bool:
        """True when nothing has been recorded or adopted."""
        return not self.roots and not self._stack and not self.dropped

    # -- worker propagation --------------------------------------------

    def adopt(self, payload: dict, origin: str = "worker") -> int:
        """Re-parent a serialised subtree under the current span.

        ``payload`` is a :meth:`snapshot` dict shipped back from a
        worker task; its roots are tagged ``origin=<origin>`` so
        exporters can place them on their own tracks. Returns how many
        root subtrees were adopted.
        """
        roots = payload.get("roots") or []
        self.dropped += int(payload.get("dropped", 0))
        parent = self._stack[-1] if self._stack else None
        target = parent.children if parent is not None else self.roots
        for root_dict in roots:
            span = Span.from_dict(root_dict)
            span.attrs.setdefault("origin", origin)
            target.append(span)
            self._count += sum(1 for _ in span.walk())
        return len(roots)

    # -- serialisation -------------------------------------------------

    def snapshot(self) -> dict:
        """The closed tree as a plain dict (open spans are excluded)."""
        return {
            "roots": [root.to_dict() for root in self.roots],
            "dropped": self.dropped,
        }

    def load(self, payload: dict) -> None:
        """Replace this recorder's state with a :meth:`snapshot` dict."""
        self.roots = [
            Span.from_dict(root) for root in payload.get("roots") or []
        ]
        self.dropped = int(payload.get("dropped", 0))
        self._stack = []
        self._count = sum(
            1 for root in self.roots for _ in root.walk()
        )

    def reset(self) -> None:
        """Drop every recorded span (open spans included)."""
        self.roots = []
        self.dropped = 0
        self._stack = []
        self._count = 0


# ---------------------------------------------------------------------
# Reductions and exporters
# ---------------------------------------------------------------------


def span_totals(roots: list[Span]) -> dict[str, dict]:
    """Per-name totals over a tree: count, wall, cpu, peak memory.

    Every span contributes its own (inclusive) wall/cpu to its name's
    bucket; aggregated leaf calls contribute under their own names.
    Used by ``ripple stats diff`` and the perf-regression gate.
    """
    totals: dict[str, dict] = {}

    def bucket(name: str) -> dict:
        return totals.setdefault(
            name,
            {"count": 0, "wall": 0.0, "cpu": 0.0, "mem_peak": 0},
        )

    for root in roots:
        for span in root.walk():
            entry = bucket(span.name)
            entry["count"] += 1
            entry["wall"] += span.wall
            entry["cpu"] += span.cpu
            if span.mem_peak is not None and span.mem_peak > entry["mem_peak"]:
                entry["mem_peak"] = span.mem_peak
            for agg_name, (count, wall, cpu) in span.agg.items():
                agg_entry = bucket(agg_name)
                agg_entry["count"] += count
                agg_entry["wall"] += wall
                agg_entry["cpu"] += cpu
    return totals


class _AggNode:
    """One row of the aggregated (by-name) view of a span tree."""

    __slots__ = ("name", "count", "wall", "cpu", "mem_peak", "children", "agg")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.mem_peak = 0
        self.children: dict[str, _AggNode] = {}
        self.agg: dict[str, list] = {}


def aggregate_tree(roots: list[Span]) -> list[_AggNode]:
    """Collapse sibling spans sharing a name into one aggregate node.

    Fifty ``expand.seed`` spans under ``phase.expansion`` become one
    row with ``count=50`` and summed times — the flame-style profile
    view; the Chrome trace keeps full per-span detail.
    """

    def fold(spans: list[Span], into: dict[str, _AggNode]) -> None:
        for span in spans:
            node = into.setdefault(span.name, _AggNode(span.name))
            node.count += 1
            node.wall += span.wall
            node.cpu += span.cpu
            if span.mem_peak is not None and span.mem_peak > node.mem_peak:
                node.mem_peak = span.mem_peak
            for name, (count, wall, cpu) in span.agg.items():
                entry = node.agg.setdefault(name, [0, 0.0, 0.0])
                entry[0] += count
                entry[1] += wall
                entry[2] += cpu
            fold(span.children, node.children)

    top: dict[str, _AggNode] = {}
    fold(roots, top)
    return list(top.values())


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def render_span_tree(
    roots: list[Span],
    dropped: int = 0,
    max_children: int = 12,
) -> str:
    """Flame-style text rendering of the aggregated span tree."""
    lines: list[str] = []

    def emit(node: _AggNode, depth: int) -> None:
        indent = "  " * depth
        label = f"{indent}{node.name}"
        count = f"x{node.count}" if node.count > 1 else ""
        mem = (
            f"  peak +{_format_bytes(node.mem_peak)}"
            if node.mem_peak
            else ""
        )
        lines.append(
            f"{label:<46} {count:>6} {node.wall:>10.4f}s"
            f"  cpu {node.cpu:>8.4f}s{mem}"
        )
        for agg_name, (agg_count, agg_wall, _) in sorted(
            node.agg.items(), key=lambda item: -item[1][1]
        ):
            agg_label = f"{indent}  - {agg_name}"
            lines.append(
                f"{agg_label:<46} {f'x{agg_count}':>6} {agg_wall:>10.4f}s"
                "  (aggregated)"
            )
        ranked = sorted(node.children.values(), key=lambda n: -n.wall)
        for child in ranked[:max_children]:
            emit(child, depth + 1)
        hidden = ranked[max_children:]
        if hidden:
            hidden_wall = sum(n.wall for n in hidden)
            lines.append(
                f"{indent}  … {len(hidden)} more name(s),"
                f" {hidden_wall:.4f}s"
            )

    for node in sorted(aggregate_tree(roots), key=lambda n: -n.wall):
        emit(node, 0)
    if dropped:
        lines.append(f"({dropped} span(s) dropped past the recorder cap)")
    return "\n".join(lines)


def to_chrome_trace(
    roots: list[Span], dropped: int = 0, process_name: str = "ripple"
) -> dict:
    """The span tree as Chrome trace-event JSON (Perfetto-loadable).

    Orchestrator spans land on track 0 in tree order; every adopted
    worker subtree (``origin`` attribute set) gets a worker track,
    reusing lanes greedily so concurrent tasks never overlap on one
    track (Chrome slices on a track must nest).
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    #: per-lane wall-clock end time, index 0 reserved for the main track
    lane_ends: list[float] = [float("inf")]

    def lane_for(span: Span) -> int:
        start, end = span.t0, span.t0 + span.wall
        for lane in range(1, len(lane_ends)):
            if lane_ends[lane] <= start:
                lane_ends[lane] = end
                return lane
        lane_ends.append(end)
        return len(lane_ends) - 1

    def emit(span: Span, tid: int) -> None:
        if "origin" in span.attrs:
            tid = lane_for(span)
        args: dict = dict(span.attrs)
        args["cpu_s"] = round(span.cpu, 6)
        if span.mem_peak is not None:
            args["mem_peak_bytes"] = span.mem_peak
        if span.rss_peak is not None:
            args["rss_peak_bytes"] = span.rss_peak
        for agg_name, (count, wall, _) in span.agg.items():
            args[f"agg.{agg_name}"] = f"{count} call(s) / {wall:.6f}s"
        record = {
            "name": span.name,
            "pid": 0,
            "tid": tid,
            "ts": int(span.t0 * 1e6),
            "args": args,
        }
        if span.wall > 0 or span.children:
            record["ph"] = "X"
            record["dur"] = max(int(span.wall * 1e6), 1)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        events.append(record)
        for child in span.children:
            emit(child, tid)

    for root in roots:
        emit(root, 0)
    for lane in range(1, len(lane_ends)):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": lane,
                "args": {"name": f"worker-lane-{lane}"},
            }
        )
    trace: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if dropped:
        trace["metadata"] = {"dropped_spans": dropped}
    return trace
