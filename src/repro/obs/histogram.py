"""Fixed-boundary log-bucketed latency histograms.

A :class:`Histogram` is the latency counterpart of a counter: an exact
count of observations per bucket, mergeable by addition, with bucket
edges fixed at import time so two histograms recorded in different
processes (or different weeks) always share a layout and can be folded
together without resampling.

Layout
------
Buckets are logarithmic with four sub-buckets per power of two,
starting at 1 µs: the upper bound of bucket ``i`` is
``1e-6 * 2 ** (i / 4)`` seconds. 97 finite bounds cover 1 µs through
``2**24`` µs (~16.8 s); one final overflow bucket catches everything
beyond. Bucket ``i`` holds observations in ``(bounds[i-1], bounds[i]]``
(bucket 0 additionally includes zero), so any quantile read off a
bucket's upper edge overshoots the true order statistic by at most one
bucket ratio (``2**0.25``, ~19%) — tight enough that server-derived
percentiles can be cross-checked against client-side measurements.

Snapshots are sparse dicts (only non-empty buckets), keyed by the
stringified bucket index so they survive JSON round-trips, and carry a
``layout`` tag so a future edge change is detected instead of silently
merged. They ride inside the ``repro.obs/1`` schema under the optional
``"histograms"`` key (see :mod:`repro.obs.collector`).
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil, isnan, nan

from repro.errors import ParseError

__all__ = ["BOUNDS", "LAYOUT", "RATIO", "Histogram", "subtract_snapshots"]

#: Sub-buckets per power of two; the ratio between adjacent bounds.
_SUBDIV = 4

#: Powers of two covered above the 1 µs base.
_POWERS = 24

#: Ratio between adjacent bucket upper bounds (relative quantile error).
RATIO = 2.0 ** (1.0 / _SUBDIV)

#: Finite bucket upper bounds in seconds, ascending. ``BOUNDS[i]`` is
#: exactly ``1e-6 * 2**(i/4)`` — deterministic across processes and
#: Python versions because it is pure float arithmetic on constants.
BOUNDS: tuple[float, ...] = tuple(
    1e-6 * 2.0 ** (i / _SUBDIV) for i in range(_POWERS * _SUBDIV + 1)
)

#: Total bucket count: one per finite bound plus the overflow bucket.
_NUM_BUCKETS = len(BOUNDS) + 1

#: Layout tag embedded in every snapshot. Bump when edges change so a
#: merge across incompatible layouts fails loudly.
LAYOUT = f"log2x{_SUBDIV}/1e-6/{len(BOUNDS)}"


class Histogram:
    """An exact-count latency histogram over the fixed bucket layout.

    >>> h = Histogram()
    >>> h.record(0.003)
    >>> h.count
    1
    >>> 0.003 <= h.quantile(0.5) <= 0.003 * RATIO
    True
    """

    __slots__ = ("_counts", "_count", "_sum")

    def __init__(self) -> None:
        self._counts = [0] * _NUM_BUCKETS
        self._count = 0
        self._sum = 0.0

    # -- recording -----------------------------------------------------

    def record(self, seconds: float) -> None:
        """Count one observation of ``seconds`` (negatives clamp to 0)."""
        value = float(seconds)
        if value < 0.0 or isnan(value):
            value = 0.0
        self._counts[bisect_left(BOUNDS, value)] += 1
        self._count += 1
        self._sum += value

    # -- reading -------------------------------------------------------

    @property
    def count(self) -> int:
        """Total observations recorded (or merged in)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values in seconds."""
        return self._sum

    @property
    def counts(self) -> tuple[int, ...]:
        """Per-bucket observation counts (dense, overflow last)."""
        return tuple(self._counts)

    def is_empty(self) -> bool:
        """True when nothing has been recorded or merged."""
        return self._count == 0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate in seconds (NaN when empty).

        Returns the upper bound of the bucket holding the nearest-rank
        order statistic, so the estimate is an upper bound on the true
        value and overshoots it by at most a factor of :data:`RATIO`.
        Overflow-bucket observations report the top finite bound.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self._count == 0:
            return nan
        rank = ceil(q * self._count)
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                return BOUNDS[min(index, len(BOUNDS) - 1)]
        return BOUNDS[-1]  # pragma: no cover - unreachable

    def summary(self) -> dict:
        """Derived p50/p95/p99 (milliseconds) plus count and mean."""
        if self._count == 0:
            return {"count": 0}
        return {
            "count": self._count,
            "mean_ms": round(self._sum / self._count * 1000.0, 4),
            "p50_ms": round(self.quantile(0.50) * 1000.0, 4),
            "p95_ms": round(self.quantile(0.95) * 1000.0, 4),
            "p99_ms": round(self.quantile(0.99) * 1000.0, 4),
        }

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram (or a snapshot dict) into this one."""
        if isinstance(other, Histogram):
            for index, bucket_count in enumerate(other._counts):
                self._counts[index] += bucket_count
            self._count += other._count
            self._sum += other._sum
            return
        loaded = Histogram.from_snapshot(other)
        self.merge(loaded)

    def reset(self) -> None:
        """Drop every recorded observation."""
        for index in range(_NUM_BUCKETS):
            self._counts[index] = 0
        self._count = 0
        self._sum = 0.0

    # -- serialisation -------------------------------------------------

    def to_snapshot(self) -> dict:
        """Sparse JSON-safe snapshot (bucket index → count, ascending)."""
        return {
            "layout": LAYOUT,
            "count": self._count,
            "sum": self._sum,
            "buckets": {
                str(index): bucket_count
                for index, bucket_count in enumerate(self._counts)
                if bucket_count
            },
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "Histogram":
        """Rebuild from :meth:`to_snapshot`; raises on invalid layouts.

        Raises :class:`repro.errors.ParseError` on layout mismatch,
        out-of-range bucket indices, negative counts, or a total that
        disagrees with the bucket counts.
        """
        try:
            layout = payload.get("layout")
            if layout != LAYOUT:
                raise ValueError(
                    f"histogram layout {layout!r} != {LAYOUT!r}"
                )
            histogram = cls()
            total = 0
            for key, bucket_count in payload.get("buckets", {}).items():
                index = int(key)
                if not 0 <= index < _NUM_BUCKETS:
                    raise ValueError(f"bucket index {index} out of range")
                bucket_count = int(bucket_count)
                if bucket_count < 0:
                    raise ValueError(
                        f"bucket {index} has negative count {bucket_count}"
                    )
                histogram._counts[index] = bucket_count
                total += bucket_count
            declared = int(payload.get("count", total))
            if declared != total:
                raise ValueError(
                    f"declared count {declared} != bucket total {total}"
                )
            histogram._count = total
            histogram._sum = float(payload.get("sum", 0.0))
            if histogram._sum < 0.0:
                raise ValueError(f"negative sum {histogram._sum}")
        except (AttributeError, TypeError, ValueError) as exc:
            raise ParseError(
                f"not a valid histogram snapshot: {exc}"
            ) from exc
        return histogram


def subtract_snapshots(after: dict, before: dict) -> Histogram:
    """The window delta ``after - before`` as a fresh histogram.

    Both snapshots must come from the same monotonically-growing
    histogram (e.g. two successive ``stats`` reads of a serving
    daemon); per-bucket differences clamp at zero so a server restart
    between reads degrades to "just the after window" instead of
    raising.
    """
    histogram = Histogram.from_snapshot(after)
    earlier = Histogram.from_snapshot(before)
    total = 0
    for index in range(_NUM_BUCKETS):
        clamped = max(0, histogram._counts[index] - earlier._counts[index])
        histogram._counts[index] = clamped
        total += clamped
    histogram._count = total
    histogram._sum = max(0.0, histogram._sum - earlier._sum)
    return histogram
