"""Opt-in structured-event trace log (``REPRO_TRACE=1``).

Counters say *how much*; the trace says *in what order*. When tracing
is enabled, instrumented fixed-point loops (ME candidate shrinking,
RME ring passes, FBM merge rounds) emit one JSON object per line —
monotonic ``seq``, wall-clock ``ts``, an ``event`` name, and
event-specific integer fields — to the file named by
``REPRO_TRACE_FILE`` (default: stderr).

The sink is module-global and configured once, either from the
environment at import time (:func:`configure_from_env`) or explicitly
(:func:`configure`). When no sink is configured, :func:`emit` returns
after a single ``None`` check, so tracing costs nothing when off.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import IO

__all__ = [
    "close",
    "configure",
    "configure_from_env",
    "emit",
    "is_enabled",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_sink: IO[str] | None = None
_owns_sink = False
_seq = 0


def configure(
    path: str | None = None, stream: IO[str] | None = None
) -> None:
    """Install the trace sink: a file path, an open stream, or neither.

    Passing neither disables tracing (and closes any owned sink).
    """
    global _sink, _owns_sink, _seq
    close()
    if path is not None:
        _sink = open(path, "a", encoding="utf-8")
        _owns_sink = True
    elif stream is not None:
        _sink = stream
        _owns_sink = False
    _seq = 0


def configure_from_env(environ: dict | None = None) -> bool:
    """Read ``REPRO_TRACE`` / ``REPRO_TRACE_FILE`` and (re)configure.

    Returns True when tracing ended up enabled. ``REPRO_TRACE`` must be
    a truthy string (``1``, ``true``, ``yes``, ``on``; case-insensitive);
    ``REPRO_TRACE_FILE`` redirects events from stderr into a file.
    """
    env = os.environ if environ is None else environ
    flag = str(env.get("REPRO_TRACE", "")).strip().lower()
    if flag not in _TRUTHY:
        configure()
        return False
    path = env.get("REPRO_TRACE_FILE")
    if path:
        configure(path=path)
    else:
        configure(stream=sys.stderr)
    return True


def is_enabled() -> bool:
    """Whether a trace sink is currently installed."""
    return _sink is not None


def emit(event: str, **fields) -> None:
    """Write one structured event; a no-op when tracing is off.

    Field values must be JSON-safe (the instrumentation sites only pass
    ints and short strings).
    """
    global _seq
    sink = _sink
    if sink is None:
        return
    _seq += 1
    record = {"seq": _seq, "ts": round(time.time(), 6), "event": event}
    record.update(fields)
    sink.write(json.dumps(record, sort_keys=True) + "\n")
    sink.flush()


def close() -> None:
    """Close an owned sink and disable tracing."""
    global _sink, _owns_sink
    if _sink is not None and _owns_sink:
        _sink.close()
    _sink = None
    _owns_sink = False
