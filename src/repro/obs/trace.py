"""Opt-in structured-event trace log (``REPRO_TRACE=1``).

Counters say *how much*; the trace says *in what order*. When tracing
is enabled, instrumented fixed-point loops (ME candidate shrinking,
RME ring passes, FBM merge rounds) emit one JSON object per line —
monotonic ``seq``, wall-clock ``ts``, an ``event`` name, and
event-specific integer fields — to the file named by
``REPRO_TRACE_FILE`` (default: stderr).

The sink is module-global and configured once, either from the
environment at import time (:func:`configure_from_env`) or explicitly
(:func:`configure`). When no sink is configured, :func:`emit` returns
after a single ``None`` check, so tracing costs nothing when off.

Durability: events are buffered and flushed every
:data:`FLUSH_INTERVAL` events — except ``resilience.*`` events, which
flush immediately so crash recoveries are never lost from the tail of
the file, and :func:`close` runs via ``atexit`` so an abnormal exit
still lands the buffered tail on disk.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import time
from typing import IO

__all__ = [
    "FLUSH_INTERVAL",
    "close",
    "configure",
    "configure_from_env",
    "emit",
    "is_enabled",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Buffered events between periodic flushes (resilience events and
#: :func:`close` flush regardless).
FLUSH_INTERVAL = 32

_sink: IO[str] | None = None
_owns_sink = False
_seq = 0
_unflushed = 0


def configure(
    path: str | None = None, stream: IO[str] | None = None
) -> None:
    """Install the trace sink: a file path, an open stream, or neither.

    Passing neither disables tracing (and closes any owned sink).
    """
    global _sink, _owns_sink, _seq, _unflushed
    close()
    if path is not None:
        _sink = open(path, "a", encoding="utf-8")
        _owns_sink = True
    elif stream is not None:
        _sink = stream
        _owns_sink = False
    _seq = 0
    _unflushed = 0


def configure_from_env(environ: dict | None = None) -> bool:
    """Read ``REPRO_TRACE`` / ``REPRO_TRACE_FILE`` and (re)configure.

    Returns True when tracing ended up enabled. ``REPRO_TRACE`` must be
    a truthy string (``1``, ``true``, ``yes``, ``on``; case-insensitive);
    ``REPRO_TRACE_FILE`` redirects events from stderr into a file.
    """
    env = os.environ if environ is None else environ
    flag = str(env.get("REPRO_TRACE", "")).strip().lower()
    if flag not in _TRUTHY:
        configure()
        return False
    path = env.get("REPRO_TRACE_FILE")
    if path:
        configure(path=path)
    else:
        configure(stream=sys.stderr)
    return True


def is_enabled() -> bool:
    """Whether a trace sink is currently installed."""
    return _sink is not None


def emit(event: str, **fields) -> None:
    """Write one structured event; a no-op when tracing is off.

    Field values must be JSON-safe (the instrumentation sites only pass
    ints and short strings). ``resilience.*`` events force an immediate
    flush; others are flushed every :data:`FLUSH_INTERVAL` events.
    """
    global _seq, _unflushed
    sink = _sink
    if sink is None:
        return
    _seq += 1
    record = {"seq": _seq, "ts": round(time.time(), 6), "event": event}
    record.update(fields)
    sink.write(json.dumps(record, sort_keys=True) + "\n")
    _unflushed += 1
    if _unflushed >= FLUSH_INTERVAL or event.startswith("resilience."):
        sink.flush()
        _unflushed = 0


def close() -> None:
    """Flush and close an owned sink, then disable tracing.

    Registered with ``atexit`` so a ``REPRO_TRACE_FILE`` sink lands its
    buffered tail on disk even when the process exits abnormally.
    """
    global _sink, _owns_sink, _unflushed
    if _sink is not None:
        try:
            _sink.flush()
        except ValueError:  # pragma: no cover - sink already closed
            pass
        if _owns_sink:
            _sink.close()
    _sink = None
    _owns_sink = False
    _unflushed = 0


atexit.register(close)
