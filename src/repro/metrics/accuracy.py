"""Accuracy metrics for comparing detected k-VCCs against the truth.

The paper's Section VI uses two metrics from Wang et al. (VLDB'15):

* **Cross Common Fraction** ``F_same`` (Eq. 1): for each detected
  component take its best-overlapping true component and vice versa,
  sum the shared sizes both ways with weight ½ each. We report the
  *normalised* value — the raw Eq. 1 count divided by the same
  expression evaluated with both sides perfect (½·Σ|detected| +
  ½·Σ|truth|) — so identical results score 100% and missing or
  fragmented communities pull the score down.
* **Jaccard Index** ``J_Index`` (Eq. 2): over vertex *pairs*.
  ``S_t`` = pairs co-members in both results; ``S_f1`` = co-members
  only in the detected result; ``S_f2`` = co-members only in the truth.
  ``J = |S_t| / (|S_t| + |S_f1| + |S_f2|)``. Very sensitive to wrong
  merges: fusing two large true communities creates quadratically many
  false co-member pairs, which is why the paper's Table III shows NBM's
  over-merging as single-digit J_Index scores.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

__all__ = ["f_same", "j_index", "accuracy_report"]


def _normalise(components: Iterable[Iterable]) -> list[frozenset]:
    return [frozenset(c) for c in components]


def f_same(
    detected: Sequence[Iterable], truth: Sequence[Iterable]
) -> float:
    """Normalised Cross Common Fraction in ``[0, 1]``.

    Returns 1.0 when both sides are empty, 0.0 when exactly one is.
    """
    ours = _normalise(detected)
    real = _normalise(truth)
    if not ours and not real:
        return 1.0
    if not ours or not real:
        return 0.0
    forward = sum(max(len(a & b) for b in real) for a in ours)
    backward = sum(max(len(a & b) for a in ours) for b in real)
    raw = 0.5 * forward + 0.5 * backward
    perfect = 0.5 * sum(len(a) for a in ours) + 0.5 * sum(
        len(b) for b in real
    )
    return raw / perfect


def _co_member_pairs(components: list[frozenset]) -> set[frozenset]:
    pairs: set[frozenset] = set()
    for comp in components:
        ordered = sorted(comp, key=repr)
        pairs.update(
            frozenset(p) for p in itertools.combinations(ordered, 2)
        )
    return pairs


def j_index(
    detected: Sequence[Iterable], truth: Sequence[Iterable]
) -> float:
    """Pairwise Jaccard index in ``[0, 1]`` (Eq. 2).

    Returns 1.0 when neither side contains any co-member pair.
    """
    ours = _co_member_pairs(_normalise(detected))
    real = _co_member_pairs(_normalise(truth))
    if not ours and not real:
        return 1.0
    union = len(ours | real)
    return len(ours & real) / union


def accuracy_report(
    detected: Sequence[Iterable], truth: Sequence[Iterable]
) -> dict[str, float]:
    """Both metrics as percentages, keyed like the paper's tables."""
    return {
        "F_same": 100.0 * f_same(detected, truth),
        "J_Index": 100.0 * j_index(detected, truth),
    }
