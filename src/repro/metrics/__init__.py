"""Accuracy metrics (F_same and J_Index) from Wang et al., VLDB'15."""

from repro.metrics.accuracy import accuracy_report, f_same, j_index

__all__ = ["accuracy_report", "f_same", "j_index"]
