"""The query engine: batched QkVCS answers from the index, cached.

A :class:`QueryEngine` turns the "which k-VCC contains this vertex?"
question (the paper's QkVCS building block, exposed live as
:func:`repro.core.query.kvcc_containing`) into an amortised service:

* answers come from a :class:`~repro.serving.index.KvccIndex` in
  O(lookup) — built once, reused by every query;
* a bounded LRU cache short-circuits repeated (vertex, k) pairs, the
  dominant shape of real query traffic;
* k above an incomplete index's ceiling falls back to the live
  enumerator, so capped indexes degrade to correct-but-slower instead
  of wrong;
* a missing index degrades gracefully: the first query builds it from
  the graph (build-on-first-use), later queries ride the result.

Everything is thread-safe (the TCP daemon serves connections from
concurrent threads) and instrumented with ``serving.*`` counters and
spans (see the catalogue in ``docs/observability.md``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro import obs
from repro.core.query import kvcc_containing
from repro.errors import ParameterError, ReproError
from repro.graph.adjacency import Graph
from repro.graph.traversal import component_of
from repro.resilience import Deadline
from repro.serving import chaos
from repro.serving.index import KvccIndex

__all__ = [
    "BatchDeadlineExpired",
    "LRUCache",
    "QueryEngine",
    "QueryResult",
]


class BatchDeadlineExpired(ReproError):
    """A batch's deadline expired between queries.

    Deadlines are cooperative (checked at query boundaries, like the
    pipeline's stage boundaries): the queries answered before expiry
    ride along in :attr:`completed` so callers can return a partial
    response instead of discarding paid-for work.
    """

    def __init__(self, completed: list["QueryResult"], total: int) -> None:
        super().__init__(
            f"deadline expired after {len(completed)} of {total} queries"
        )
        self.completed = completed
        self.total = total


@dataclass(frozen=True)
class QueryResult:
    """One answered QkVCS query.

    ``components`` holds *every* k-VCC of level ``k`` containing the
    vertex — distinct k-VCCs may overlap in up to k-1 vertices, so
    overlap vertices get several. ``source`` says where the answer came
    from: ``"cache"``, ``"index"``, or ``"live"`` (above-ceiling
    fallback; live answers mirror :func:`kvcc_containing` and carry at
    most one component).
    """

    vertex: Hashable
    k: int
    components: tuple[frozenset, ...]
    source: str

    @property
    def best(self) -> frozenset | None:
        """The first (largest, per hierarchy order) component, or None —
        the shape :func:`repro.core.query.kvcc_containing` returns."""
        return self.components[0] if self.components else None


class LRUCache:
    """A small thread-safe LRU map; ``capacity=0`` disables caching."""

    __slots__ = ("_capacity", "_data", "_lock")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ParameterError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self._capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value (refreshed to most-recent), or None."""
        with self._lock:
            try:
                self._data.move_to_end(key)
            except KeyError:
                return None
            return self._data[key]

    def put(self, key, value) -> None:
        """Insert/refresh; evicts the least-recent entry beyond capacity."""
        if self._capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if len(self._data) > self._capacity:
                self._data.popitem(last=False)
                obs.count("serving.cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def snapshot_keys(self) -> list:
        """The cached keys, most-recently-used first — the working set
        a reload's warm-cache handoff re-primes (values are *not*
        copied: post-reload answers must come from the new index)."""
        with self._lock:
            return list(reversed(self._data.keys()))


class QueryEngine:
    """Answers single and batched QkVCS queries from an index + cache.

    Construct with a graph, an index, or both:

    * graph only — the index is built on first use (and ``max_k`` caps
      how deep);
    * index only — pure lookups; above-ceiling queries on an incomplete
      index raise (there is no graph to fall back to);
    * both — the index is checked against the graph's fingerprint and
      rebuilt when stale, and above-ceiling queries fall back to live
      :func:`kvcc_containing` enumeration.
    """

    def __init__(
        self,
        graph: Graph | None = None,
        index: KvccIndex | None = None,
        *,
        cache_size: int = 1024,
        max_k: int | None = None,
    ) -> None:
        if graph is None and index is None:
            raise ParameterError("QueryEngine needs a graph, an index, or both")
        self._graph = graph
        self._index = index
        self._max_k = max_k
        self._cache = LRUCache(cache_size)
        self._lock = threading.Lock()
        # (num_vertices, num_edges) of the graph the current index was
        # last fingerprint-verified against; None = not yet verified.
        self._validated: tuple[int, int] | None = None
        # Monotone generation counter, bumped under the lock on every
        # index swap (first build, stale rebuild, reload). A reader
        # that sees version N is guaranteed the whole index is the one
        # swapped in at N — swaps replace the reference atomically,
        # never mutate in place.
        self._version = 1 if index is not None else 0

    # -- index management ----------------------------------------------

    @property
    def cache(self) -> LRUCache:
        return self._cache

    @property
    def index(self) -> KvccIndex | None:
        """The current index (None until built on first use)."""
        return self._index

    @property
    def graph(self) -> Graph | None:
        return self._graph

    @property
    def version(self) -> int:
        """The index generation (monotone; bumped on every swap)."""
        return self._version

    def ensure_index(self) -> KvccIndex:
        """The index, building (missing) or rebuilding (stale) as needed.

        Staleness is fingerprint-checked when the engine first adopts a
        (graph, index) pairing and again whenever the graph's size
        changes; between those events each call costs two int
        comparisons, so the full O(E) fingerprint never lands on the
        per-query path. An in-place edit that preserves both vertex and
        edge counts slips past the probe — after one, hand the engine a
        fresh index (or a freshly copied graph) instead of mutating
        underneath it.
        """
        with self._lock:
            if self._index is not None and self._graph is not None:
                probe = (self._graph.num_vertices, self._graph.num_edges)
                if self._validated != probe:
                    if self._index.is_stale(self._graph):
                        obs.count("serving.index.stale_rebuilds")
                        self._index = KvccIndex.build(
                            self._graph, max_k=self._max_k
                        )
                        self._version += 1
                        self._cache.clear()
                    self._validated = probe
            if self._index is None:
                self._index = KvccIndex.build(self._graph, max_k=self._max_k)
                self._version += 1
                self._validated = (
                    self._graph.num_vertices,
                    self._graph.num_edges,
                )
            return self._index

    def reload(self, graph: Graph) -> None:
        """Adopt a fresh copy of the served graph (e.g. re-read from disk).

        The reload is a **versioned atomic swap**: when the new graph's
        fingerprint differs from the current index, the replacement
        index is built *outside* the engine lock — on the reloading
        thread, while in-flight queries keep riding the old
        (graph, index, cache) triple — and only the reference swap
        happens under the lock, together with a cache clear and a
        version bump. A query therefore observes either the complete
        old generation or the complete new one, never a half-built
        mixture; a failed build raises out of here with the old
        generation still serving and the version untouched.

        The cache is conservatively cleared even for a same-fingerprint
        reload — cached answers are consulted *before* the index, so a
        stale entry would otherwise outlive the swap. Reloads are rare
        (mutation events, not queries); the cache re-warms from the
        index at index-lookup cost.
        """
        with self._lock:
            current = self._index
            max_k = self._max_k
        replacement = current
        if current is None or current.is_stale(graph):
            if current is not None:
                obs.count("serving.index.stale_rebuilds")
            # The expensive part, deliberately outside the lock.
            replacement = KvccIndex.build(graph, max_k=max_k)
        chaos.fire("reload.swap")
        with self._lock:
            obs.count("serving.engine.reloads")
            self._graph = graph
            self._index = replacement
            self._validated = (graph.num_vertices, graph.num_edges)
            self._cache.clear()
            self._version += 1

    # -- queries -------------------------------------------------------

    def query(
        self,
        vertex: Hashable,
        k: int,
        *,
        deadline: Deadline | None = None,
        request_id=None,
    ) -> QueryResult:
        """Answer one QkVCS query.

        Resolution order: cache → index → live fallback (above an
        incomplete index's ceiling, needs the graph). The deadline is
        checked once before any live work; expiry raises
        :class:`BatchDeadlineExpired` with no completed answers.

        Each successful resolution records its wall time into the
        ``serving.resolve_seconds.{cache,index,live}`` histogram of the
        tier that answered, so an operator can see not just hit *rates*
        but the latency shape of each tier. ``request_id`` (assigned by
        the protocol layer) is attached to the resolution span and to
        chaos fault draws for per-request causality.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        obs.count("serving.queries")
        resolve_started = time.perf_counter()
        # Chaos stage: hang stalls the query (deterministic service
        # time for calibrated-overload runs), other modes raise
        # FaultInjected and surface as an `internal` protocol error.
        chaos.fire("engine.resolve", request_id=request_id)
        cached = self._cache.get((vertex, k))
        if cached is not None:
            obs.count("serving.cache.hits")
            obs.observe(
                "serving.resolve_seconds.cache",
                time.perf_counter() - resolve_started,
            )
            return QueryResult(vertex, k, cached, "cache")
        obs.count("serving.cache.misses")
        if deadline is not None and deadline.expired():
            raise BatchDeadlineExpired([], 1)
        span_attrs = {"k": k}
        if request_id is not None:
            span_attrs["request_id"] = request_id
        with obs.start_span("serving.query", **span_attrs):
            index = self.ensure_index()
            if vertex not in index:
                raise ParameterError(
                    f"vertex {vertex!r} not in the served graph"
                )
            if index.covers(k):
                obs.count("serving.index.hits")
                components = index.containing(vertex, k)
                source = "index"
            else:
                components = self._live_fallback(vertex, k)
                source = "live"
        self._cache.put((vertex, k), components)
        obs.observe(
            f"serving.resolve_seconds.{source}",
            time.perf_counter() - resolve_started,
        )
        return QueryResult(vertex, k, components, source)

    def query_batch(
        self,
        queries: Iterable[tuple[Hashable, int]],
        *,
        deadline: Deadline | None = None,
        request_id=None,
    ) -> list[QueryResult]:
        """Answer ``(vertex, k)`` pairs in order.

        The deadline is checked between queries (cooperatively, like
        the pipeline's stage boundaries); on expiry the completed
        prefix rides along in :class:`BatchDeadlineExpired`.
        """
        pairs = list(queries)
        span_attrs = {"size": len(pairs)}
        if request_id is not None:
            span_attrs["request_id"] = request_id
        results: list[QueryResult] = []
        with obs.start_span("serving.batch", **span_attrs):
            obs.count("serving.batches")
            for vertex, k in pairs:
                if deadline is not None and deadline.expired():
                    obs.count("serving.deadline_expirations")
                    raise BatchDeadlineExpired(results, len(pairs))
                results.append(self.query(vertex, k, request_id=request_id))
        return results

    def _live_fallback(self, vertex: Hashable, k: int) -> tuple[frozenset, ...]:
        """Exact live answer for k above an incomplete index's ceiling."""
        if self._graph is None:
            raise ParameterError(
                f"k={k} is above the indexed ceiling and the engine "
                f"has no graph for a live fallback"
            )
        obs.count("serving.live.fallbacks")
        with obs.start_span("serving.live_fallback", k=k):
            if k == 1:
                component = component_of(self._graph, vertex)
                if len(component) > 1:
                    return (frozenset(component),)
                return ()
            component = kvcc_containing(self._graph, vertex, k)
            return () if component is None else (component,)

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able summary for the wire protocol's ``stats`` op."""
        index = self._index
        return {
            "version": self._version,
            "cache": {
                "capacity": self._cache.capacity,
                "entries": len(self._cache),
            },
            "index": None
            if index is None
            else {
                "ceiling": index.ceiling,
                "complete": index.complete,
                "num_vertices": index.num_vertices,
                "num_edges": index.num_edges,
                "fingerprint": index.fingerprint,
            },
            "has_graph": self._graph is not None,
        }
