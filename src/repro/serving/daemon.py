"""The ``ripple serve`` daemon: stdio and TCP front ends.

Both front ends speak the line-delimited JSON protocol of
:mod:`repro.serving.protocol` over the same :class:`QueryEngine`:

* **stdio** — one session on stdin/stdout, for subprocess embedding
  and shell pipelines (requests in, responses out, in order);
* **TCP** — a threading server handling each connection in its own
  thread; a shared :class:`~repro.serving.admission.AdmissionController`
  caps how many requests are *answered* concurrently, lets a bounded
  number wait (partitioned by cost class), and sheds the rest with an
  ``overloaded`` error instead of queueing without bound.

Per-request deadlines reuse :class:`repro.resilience.Deadline` and are
cooperative: expiry is observed at query boundaries, so a batch cut
short returns its completed prefix with a ``deadline`` error code.

Both front ends cap the request line at ``max_line_bytes``: an
oversized line is drained and answered with a ``bad-request`` error
(the session survives) instead of buffering an unbounded line in
memory.

Degradation is graceful end to end: a missing index file means the
engine builds one from the graph on first use (the first query pays
the build; the rest ride it), a stale index (fingerprint mismatch
against the served graph) is rebuilt instead of serving wrong answers,
and a corrupt index file is quarantined at load time (see
:mod:`repro.serving.index`) with the engine rebuilding live.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import IO

from repro import obs
from repro.serving.accesslog import AccessLog
from repro.serving.admission import AdmissionController
from repro.serving.chaos import SessionCrash
from repro.serving.engine import QueryEngine
from repro.serving.protocol import ServerContext, error_line, handle_line

__all__ = ["ServeSettings", "TcpServerHandle", "serve_stdio", "serve_tcp"]


@dataclass(frozen=True)
class ServeSettings:
    """Daemon tunables shared by the stdio and TCP front ends."""

    #: Per-request wall-clock budget in seconds (None = unbounded).
    request_timeout: float | None = None
    #: Maximum requests answered concurrently (TCP only).
    workers: int = 4
    #: Zero-argument callable returning a fresh Graph for the
    #: ``reload`` op (None = reload is unsupported on this daemon).
    reloader: Callable | None = None
    #: Bound on requests *waiting* for a worker before the daemon
    #: starts shedding (TCP only; see AdmissionController).
    max_queue: int = 32
    #: ``bounded`` (default), ``strict`` (no waiting), or ``block``
    #: (legacy unbounded queueing — never sheds).
    shed_policy: str = "bounded"
    #: Longest accepted request line; anything longer is drained and
    #: answered with ``bad-request``.
    max_line_bytes: int = 1 << 20
    #: Path for the JSONL access log (None = no access log); one
    #: record per request line, appended and flushed as responses go
    #: out (see :mod:`repro.serving.accesslog`).
    access_log: str | None = None


def _open_context(settings: ServeSettings) -> ServerContext:
    access_log = (
        AccessLog.open(settings.access_log)
        if settings.access_log is not None
        else None
    )
    return ServerContext(access_log=access_log)


def _oversized_response(limit: int) -> str:
    obs.count("serving.oversized_lines")
    return error_line(
        f"request line exceeds {limit} bytes", "bad-request"
    )


def serve_stdio(
    engine: QueryEngine,
    settings: ServeSettings = ServeSettings(),
    *,
    in_stream: IO[str],
    out_stream: IO[str],
) -> int:
    """Serve one session over text streams; returns served request count.

    Ends at EOF or after a ``shutdown`` op. Blank lines are ignored,
    malformed lines get ``parse`` error responses — the session
    survives bad input.
    """
    served = 0
    obs.count("serving.sessions")
    limit = settings.max_line_bytes
    context = _open_context(settings)
    try:
        while True:
            line = in_stream.readline(limit)
            if not line:
                break
            if len(line) >= limit and not line.endswith("\n"):
                # Oversized: drain the rest of the line in bounded
                # chunks, reject it, keep the session.
                while True:
                    chunk = in_stream.readline(limit)
                    if not chunk or chunk.endswith("\n"):
                        break
                served += 1
                out_stream.write(_oversized_response(limit) + "\n")
                out_stream.flush()
                continue
            try:
                response, keep_serving = handle_line(
                    engine,
                    line,
                    request_timeout=settings.request_timeout,
                    reloader=settings.reloader,
                    context=context,
                )
            except SessionCrash:
                obs.count("serving.sessions.crashed")
                break
            if response:
                served += 1
                out_stream.write(response + "\n")
                out_stream.flush()
            if not keep_serving:
                break
    finally:
        if context.access_log is not None:
            context.access_log.close()
    return served


class _SessionHandler(socketserver.StreamRequestHandler):
    """One TCP connection = one protocol session (line in, line out)."""

    def handle(self) -> None:
        server: _TcpServer = self.server  # type: ignore[assignment]
        server.register_session(threading.current_thread(), self.connection)
        obs.set_collector(server.collector)
        obs.count("serving.sessions")
        limit = server.settings.max_line_bytes
        try:
            while True:
                raw = self.rfile.readline(limit)
                if not raw:
                    return
                if len(raw) >= limit and not raw.endswith(b"\n"):
                    while True:
                        chunk = self.rfile.readline(limit)
                        if not chunk or chunk.endswith(b"\n"):
                            break
                    response, keep_serving = _oversized_response(limit), True
                else:
                    line = raw.decode("utf-8", errors="replace")
                    try:
                        response, keep_serving = handle_line(
                            server.engine,
                            line,
                            request_timeout=server.settings.request_timeout,
                            reloader=server.settings.reloader,
                            admission=server.admission,
                            context=server.context,
                        )
                    except SessionCrash:
                        # Injected handler crash: the connection dies
                        # without a response; the daemon survives.
                        obs.count("serving.sessions.crashed")
                        return
                if response:
                    try:
                        self.wfile.write(response.encode("utf-8") + b"\n")
                        self.wfile.flush()
                    except (BrokenPipeError, ConnectionResetError):
                        return
                if not keep_serving or server.draining.is_set():
                    # A draining daemon finishes the in-flight request
                    # (the response above went out) and then hangs up
                    # instead of waiting for the client's next line.
                    return
        finally:
            server.unregister_session(threading.current_thread())


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: QueryEngine,
        settings: ServeSettings,
    ) -> None:
        super().__init__(address, _SessionHandler)
        self.engine = engine
        self.settings = settings
        self.admission = AdmissionController(
            workers=max(1, settings.workers),
            max_queue=settings.max_queue,
            shed_policy=settings.shed_policy,
        )
        # Handler threads inherit the collector active at server
        # creation: counters from concurrent sessions all land in the
        # run's collector (Collector.count is a dict update under the
        # GIL; merge-safe for our integer bumps).
        self.collector = obs.get_collector()
        #: Daemon-scoped serving state: uptime epoch + optional access
        #: log, shared by every session thread.
        self.context = _open_context(settings)
        #: Set while :meth:`TcpServerHandle.stop` drains sessions.
        self.draining = threading.Event()
        self._sessions_lock = threading.Lock()
        self._sessions: dict[threading.Thread, object] = {}

    def register_session(self, thread, connection) -> None:
        with self._sessions_lock:
            self._sessions[thread] = connection

    def unregister_session(self, thread) -> None:
        with self._sessions_lock:
            self._sessions.pop(thread, None)

    def live_sessions(self) -> list[tuple[threading.Thread, object]]:
        with self._sessions_lock:
            return list(self._sessions.items())


class TcpServerHandle:
    """A running TCP daemon: address for clients, shutdown for owners."""

    def __init__(self, server: _TcpServer, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port is concrete even if 0 was asked."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def port(self) -> int:
        """The bound port (ephemeral when 0 was requested)."""
        return self.address[1]

    @property
    def admission(self) -> AdmissionController:
        """The daemon's admission controller (for gauges/metrics)."""
        return self._server.admission

    @property
    def context(self) -> ServerContext:
        """The daemon's serving context (uptime epoch, access log)."""
        return self._server.context

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight sessions, join every thread.

        In-flight requests get ``drain_timeout`` seconds to finish
        (their responses go out; the connections then close). Sessions
        still alive past the budget — e.g. a client holding an idle
        connection open — have their sockets force-closed, which
        unblocks the handler's read and ends the thread. On return no
        session threads remain, so back-to-back load-test runs (and
        pytest sessions) never inherit orphan handlers.
        """
        self._server.draining.set()
        self._server.shutdown()  # acceptor loop exits; no new sessions
        deadline = time.monotonic() + max(0.0, drain_timeout)
        for thread, _ in self._server.live_sessions():
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for thread, connection in self._server.live_sessions():
            # Past the drain budget: yank the transport out from under
            # the blocked read. shutdown() (not just close()) is what
            # reliably wakes a thread parked in recv().
            try:
                connection.shutdown(socket.SHUT_RDWR)  # type: ignore[attr-defined]
            except OSError:
                pass
            thread.join(timeout=1.0)
        self._server.server_close()
        self._thread.join(timeout=5)
        if self._server.context.access_log is not None:
            self._server.context.access_log.close()

    def shutdown(self) -> None:
        """Alias for :meth:`stop` (kept for existing callers)."""
        self.stop()

    def __enter__(self) -> "TcpServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_tcp(
    engine: QueryEngine,
    settings: ServeSettings = ServeSettings(),
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    background: bool = False,
) -> TcpServerHandle | None:
    """Serve the protocol over TCP.

    ``background=True`` returns a :class:`TcpServerHandle` immediately
    (tests, embedding); otherwise this blocks until interrupted and
    returns None. ``port=0`` binds an ephemeral port (read it off the
    handle's :attr:`~TcpServerHandle.address`).
    """
    server = _TcpServer((host, port), engine, settings)
    if background:
        thread = threading.Thread(
            target=server.serve_forever,
            name="ripple-serve-acceptor",
            daemon=True,
        )
        thread.start()
        return TcpServerHandle(server, thread)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        if server.context.access_log is not None:
            server.context.access_log.close()
    return None
