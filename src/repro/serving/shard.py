"""Graph-partition sharding for the serving tier.

The shard key is the paper's own structural fact, exploited by the
top-down baseline of Wen et al.: every vertex of a k-VCC has at least
k neighbours *inside* the component, so a k-VCC is a subgraph of the
k-core; and a k-VCC is connected, so it lies inside **exactly one
connected component of the k-core**. Partitioning vertices by the
connected components of the ``shard_k``-core therefore never splits a
k-VCC for any ``k >= shard_k`` — a point query routes to exactly one
shard and still gets byte-identical answers.

Levels below ``shard_k`` (level 1 is plain connected components, which
*do* span core components) live in a small global **residual** index
capped at ``max_k = shard_k - 1``; with the default ``shard_k = 2``
the residual is just the connected components of the graph, built in
O(V+E) without touching the enumerator.

Why the per-shard answers are byte-identical to a single global index:

* a k-VCC of G with ``k >= shard_k`` lies inside one ``shard_k``-core
  component, whose vertices are wholly owned by one shard; the shard
  subgraph is induced, so the component is still k-connected there,
  and any strictly larger k-connected subgraph of the shard would be
  k-connected in G too (contradicting maximality) — the component
  *sets* per level are identical;
* :func:`repro.core.hierarchy.kvcc_hierarchy` orders each level by
  ``(-len(c), sorted(map(repr, c)))``, a global order; restricting a
  global order to a subset preserves relative order, so the tuple
  :meth:`KvccIndex.containing` returns is identical per vertex.

``docs/scaling.md`` carries the full argument plus a runnable fence.

The two moving parts here:

* :class:`ShardSet` — the build-time artifact: N per-shard
  :class:`~repro.serving.index.KvccIndex` files plus the residual,
  described by a checksummed ``repro.kvcc-shards/1`` manifest with
  per-shard fingerprints (``ripple index build --shards N``);
* :class:`ShardRouter` — the scatter-gather query layer, duck-typing
  :class:`~repro.serving.engine.QueryEngine` (``query`` /
  ``query_batch`` / ``stats`` / ``reload`` / ``version``) so the wire
  protocol and both daemons serve it unchanged. Point queries touch
  exactly one shard; batches fan out to the owning shards over a
  bounded pool and reassemble in request order; each shard runs
  ``replicas`` independent :class:`QueryEngine` replicas (private LRU
  caches) with round-robin selection, failover on replica faults
  (``serving.router.replica_failovers``), and warm-cache handoff on
  reload.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections.abc import Hashable, Iterable
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.core.query import kvcc_containing
from repro.errors import IndexCorruptionError, ParameterError, ParseError
from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core
from repro.graph.traversal import component_of, connected_components
from repro.obs.histogram import Histogram
from repro.resilience import Deadline
from repro.serving import chaos
from repro.serving.engine import (
    BatchDeadlineExpired,
    QueryEngine,
    QueryResult,
)
from repro.serving.index import KvccIndex, _label_key, graph_fingerprint

__all__ = [
    "SHARD_SCHEMA",
    "ShardRouter",
    "ShardSet",
    "core_partition",
    "pack_groups",
]

#: Schema identifier embedded in every shard manifest.
SHARD_SCHEMA = "repro.kvcc-shards/1"

#: Hot keys re-resolved per replica on a warm-cache reload handoff.
_WARM_HANDOFF_LIMIT = 256


def core_partition(graph: Graph, shard_k: int = 2) -> list[frozenset]:
    """The shard-key groups: connected components of the shard_k-core.

    Deterministically ordered largest-first (ties broken by sorted
    labels), matching the hierarchy's own level order so group ids are
    stable across rebuilds of the same graph.
    """
    if shard_k < 2:
        raise ParameterError(f"shard_k must be >= 2, got {shard_k}")
    core = k_core(graph, shard_k)
    groups = [frozenset(c) for c in connected_components(core)]
    return sorted(
        groups,
        key=lambda g: (-len(g), sorted(map(repr, g))),
    )


def pack_groups(groups: list[frozenset], shards: int) -> list[list[int]]:
    """Assign group indices to ``shards`` bins, greedily balancing
    vertex counts (largest group first, least-loaded bin, lowest bin id
    on ties) — deterministic, so the same graph always packs the same
    way."""
    if shards < 1:
        raise ParameterError(f"shards must be >= 1, got {shards}")
    assignment: list[list[int]] = [[] for _ in range(shards)]
    loads = [0] * shards
    order = sorted(
        range(len(groups)), key=lambda i: (-len(groups[i]), i)
    )
    for group_index in order:
        target = min(range(shards), key=lambda s: (loads[s], s))
        assignment[target].append(group_index)
        loads[target] += len(groups[group_index])
    for bucket in assignment:
        bucket.sort()
    return assignment


def _manifest_checksum(core: dict) -> str:
    serialised = json.dumps(core, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(serialised.encode("utf-8")).hexdigest()


def _shard_file_name(stem: str, shard: int) -> str:
    return f"{stem}.shard{shard:02d}.json"


def _residual_file_name(stem: str) -> str:
    return f"{stem}.residual.json"


def _document_checksum(document: str) -> str:
    """The embedded ``checksum`` field of a saved index document."""
    payload = json.loads(document)
    return str(payload.get("checksum", ""))


class ShardSet:
    """An index partitioned into shards plus the low-level residual.

    Shard ``i`` holds a full :class:`KvccIndex` over the induced
    subgraph of its assigned shard_k-core components — authoritative
    for every level ``k >= shard_k`` of its vertices. The residual is a
    global index capped at ``shard_k - 1``; it also carries the full
    vertex set, making it the membership oracle for unknown-vertex
    checks and for vertices the shard_k-core peeled away.
    """

    __slots__ = (
        "fingerprint",
        "max_k",
        "num_edges",
        "num_vertices",
        "residual",
        "shard_k",
        "shards",
    )

    def __init__(
        self,
        *,
        fingerprint: str,
        shard_k: int,
        max_k: int | None,
        num_vertices: int,
        num_edges: int,
        residual: KvccIndex,
        shards: tuple[KvccIndex, ...],
    ) -> None:
        self.fingerprint = fingerprint
        self.shard_k = shard_k
        self.max_k = max_k
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.residual = residual
        self.shards = shards

    @classmethod
    def build(
        cls,
        graph: Graph,
        shards: int,
        *,
        shard_k: int = 2,
        max_k: int | None = None,
    ) -> "ShardSet":
        """Partition ``graph`` and build every per-shard index.

        ``max_k`` caps the per-shard ceilings exactly like a single
        index's cap (queries above it fall back to live enumeration in
        the router); it must be ``>= shard_k`` since levels below
        ``shard_k`` live in the residual anyway.
        """
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if max_k is not None and max_k < shard_k:
            raise ParameterError(
                f"max_k ({max_k}) must be >= shard_k ({shard_k}); "
                f"levels below shard_k live in the residual index"
            )
        with obs.start_span(
            "serving.shard.build", shards=shards, shard_k=shard_k
        ):
            groups = core_partition(graph, shard_k)
            assignment = pack_groups(groups, shards)
            shard_indexes = []
            for bucket in assignment:
                members: set = set()
                for group_index in bucket:
                    members |= groups[group_index]
                shard_indexes.append(
                    KvccIndex.build(graph.subgraph(members), max_k=max_k)
                )
            residual = KvccIndex.build(graph, max_k=shard_k - 1)
        obs.count("serving.shard.builds")
        obs.count("serving.shard.groups", len(groups))
        return cls(
            fingerprint=graph_fingerprint(graph),
            shard_k=shard_k,
            max_k=max_k,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            residual=residual,
            shards=tuple(shard_indexes),
        )

    # -- derived facts --------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def ceiling(self) -> int:
        """The largest indexed k across every shard and the residual."""
        return max(
            [self.residual.ceiling]
            + [shard.ceiling for shard in self.shards]
        )

    @property
    def complete(self) -> bool:
        """Whether every k is answerable without a live fallback."""
        return all(shard.complete for shard in self.shards)

    def covers(self, k: int) -> bool:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if k < self.shard_k:
            return True
        return self.complete or k <= self.ceiling

    def owner_map(self) -> dict[Hashable, int]:
        """vertex → shard id for every sharded vertex (peeled vertices
        — outside the shard_k-core — are absent: they provably belong
        to no k-VCC at any ``k >= shard_k``)."""
        owners: dict[Hashable, int] = {}
        for shard_id, shard in enumerate(self.shards):
            for vertex in shard.vertices:
                owners[vertex] = shard_id
        return owners

    def is_stale(self, graph: Graph) -> bool:
        return graph_fingerprint(graph) != self.fingerprint

    # -- persistence ----------------------------------------------------

    def _manifest_core(self, stem: str) -> dict:
        return {
            "schema": SHARD_SCHEMA,
            "fingerprint": self.fingerprint,
            "shard_k": self.shard_k,
            "max_k": self.max_k,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "residual": {
                "file": os.path.basename(_residual_file_name(stem)),
                "checksum": _document_checksum(self.residual.to_json()),
                "fingerprint": self.residual.fingerprint,
            },
            "shards": [
                {
                    "file": os.path.basename(
                        _shard_file_name(stem, shard_id)
                    ),
                    "checksum": _document_checksum(shard.to_json()),
                    "fingerprint": shard.fingerprint,
                    "num_vertices": shard.num_vertices,
                    "num_edges": shard.num_edges,
                    "ceiling": shard.ceiling,
                }
                for shard_id, shard in enumerate(self.shards)
            ],
        }

    def save(self, path: str | os.PathLike) -> None:
        """Write the manifest at ``path`` plus sibling per-shard files.

        The manifest (``repro.kvcc-shards/1``) records each shard
        file's embedded document checksum and subgraph fingerprint, so
        a swapped or bit-rotted shard file is caught at load time. The
        shard and residual files are ordinary ``repro.kvcc-index/1``
        documents written with the same atomic, fsynced
        :meth:`KvccIndex.save`.
        """
        path = os.fspath(path)
        stem = path[:-5] if path.endswith(".json") else path
        for shard_id, shard in enumerate(self.shards):
            shard.save(_shard_file_name(stem, shard_id))
        self.residual.save(_residual_file_name(stem))
        core = self._manifest_core(stem)
        document = {
            "schema": core["schema"],
            "checksum": _manifest_checksum(core),
        }
        document.update(
            (key, value) for key, value in core.items() if key != "schema"
        )
        serialised = json.dumps(document, separators=(",", ":")) + "\n"
        temp_path = path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(serialised)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        obs.count("serving.shard.saves")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ShardSet":
        """Load a manifest and every shard file it references.

        A manifest that fails parsing or its checksum — or a shard
        file whose embedded checksum disagrees with the manifest — is
        quarantined to ``<path>.corrupt`` and reported via
        :class:`~repro.errors.IndexCorruptionError`, mirroring
        :meth:`KvccIndex.load`.
        """
        path = os.fspath(path)
        stem = path[:-5] if path.endswith(".json") else path
        directory = os.path.dirname(path) or "."
        with open(path, encoding="utf-8") as handle:
            document = handle.read()
        try:
            payload = json.loads(document)
            if payload.get("schema") != SHARD_SCHEMA:
                raise ValueError(
                    f"unknown schema {payload.get('schema')!r}, "
                    f"expected {SHARD_SCHEMA!r}"
                )
            core = {
                key: payload[key]
                for key in (
                    "schema",
                    "fingerprint",
                    "shard_k",
                    "max_k",
                    "num_vertices",
                    "num_edges",
                    "residual",
                    "shards",
                )
            }
            if payload.get("checksum") != _manifest_checksum(core):
                raise ValueError("manifest checksum mismatch")
        except (KeyError, TypeError, ValueError) as exc:
            quarantine: str | None = f"{path}.corrupt"
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantine = None
            obs.count("serving.index.quarantined")
            raise IndexCorruptionError(
                f"corrupt shard manifest at {path}: {exc}",
                quarantine=quarantine,
            ) from exc

        def _load_member(entry: dict, fallback_name: str) -> KvccIndex:
            member_path = os.path.join(
                directory, str(entry.get("file", fallback_name))
            )
            index = KvccIndex.load(member_path)
            actual = _document_checksum(index.to_json())
            if actual != entry.get("checksum"):
                raise IndexCorruptionError(
                    f"shard file {member_path} does not match its "
                    f"manifest checksum (file hashes to {actual!r})",
                    quarantine=None,
                )
            if index.fingerprint != entry.get("fingerprint"):
                raise IndexCorruptionError(
                    f"shard file {member_path} was built from a "
                    f"different subgraph than the manifest records",
                    quarantine=None,
                )
            return index

        try:
            residual = _load_member(
                core["residual"],
                os.path.basename(_residual_file_name(stem)),
            )
            shards = tuple(
                _load_member(
                    entry,
                    os.path.basename(_shard_file_name(stem, shard_id)),
                )
                for shard_id, entry in enumerate(core["shards"])
            )
        except ParseError as exc:  # pragma: no cover - re-wrapped below
            raise IndexCorruptionError(
                f"corrupt shard member of {path}: {exc}", quarantine=None
            ) from exc
        obs.count("serving.shard.loads")
        return cls(
            fingerprint=str(core["fingerprint"]),
            shard_k=int(core["shard_k"]),
            max_k=None if core["max_k"] is None else int(core["max_k"]),
            num_vertices=int(core["num_vertices"]),
            num_edges=int(core["num_edges"]),
            residual=residual,
            shards=shards,
        )


class _Replica:
    """One shard replica: a private engine plus a health flag."""

    __slots__ = ("engine", "healthy")

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine
        self.healthy = True


class ShardRouter:
    """Scatter-gather queries over a :class:`ShardSet` with replicas.

    Duck-types :class:`QueryEngine` (``query`` / ``query_batch`` /
    ``stats`` / ``reload`` / ``version``), so
    :func:`repro.serving.protocol.handle_line` and both daemon front
    ends serve it without changes.

    Routing: ``k < shard_k`` → the residual replicas; ``k >= shard_k``
    → the owning shard's replicas (or an empty ``"index"`` answer for
    vertices the shard_k-core peeled away — they provably belong to no
    such k-VCC); k above a capped ceiling → live fallback on the held
    graph, exactly like a single engine. Batches group their queries
    by target shard and fan out over a bounded pool (``fanout``
    threads), reassembling answers in request order; a deadline
    expiring mid-fan-out keeps the longest contiguous completed prefix
    so clients see the same completed-prefix semantics the engine
    gives.
    """

    def __init__(
        self,
        shard_set: ShardSet | None = None,
        *,
        graph: Graph | None = None,
        shards: int | None = None,
        replicas: int = 1,
        shard_k: int = 2,
        max_k: int | None = None,
        cache_size: int = 1024,
        fanout: int | None = None,
    ) -> None:
        if shard_set is None:
            if graph is None:
                raise ParameterError(
                    "ShardRouter needs a shard_set, a graph, or both"
                )
            shard_set = ShardSet.build(
                graph,
                shards if shards is not None else 1,
                shard_k=shard_k,
                max_k=max_k,
            )
        if replicas < 1:
            raise ParameterError(f"replicas must be >= 1, got {replicas}")
        self._graph = graph
        self._replica_count = replicas
        self._cache_size = cache_size
        self._fanout = (
            fanout
            if fanout is not None
            else max(1, min(8, shard_set.num_shards))
        )
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._version = 1
        self._rr = 0
        self._in_service = [0] * shard_set.num_shards
        self._queued = [0] * shard_set.num_shards
        self._adopt(shard_set)

    def _adopt(self, shard_set: ShardSet) -> None:
        """Install a shard set: fresh replicas, fresh owner map."""
        self._shard_set = shard_set
        self._owner = shard_set.owner_map()
        self._replicas = [
            [
                _Replica(
                    QueryEngine(index=shard, cache_size=self._cache_size)
                )
                for _ in range(self._replica_count)
            ]
            for shard in shard_set.shards
        ]
        self._residual_replicas = [
            _Replica(
                QueryEngine(
                    index=shard_set.residual, cache_size=self._cache_size
                )
            )
            for _ in range(self._replica_count)
        ]
        if len(self._in_service) != shard_set.num_shards:
            self._in_service = [0] * shard_set.num_shards
            self._queued = [0] * shard_set.num_shards

    # -- introspection ---------------------------------------------------

    @property
    def version(self) -> int:
        """The router generation (monotone; bumped on every reload)."""
        return self._version

    @property
    def shard_set(self) -> ShardSet:
        return self._shard_set

    @property
    def num_shards(self) -> int:
        return self._shard_set.num_shards

    @property
    def graph(self) -> Graph | None:
        return self._graph

    def covers(self, k: int) -> bool:
        return self._shard_set.covers(k)

    def set_replica_health(
        self, shard: int, replica: int, healthy: bool
    ) -> None:
        """Mark one replica up/down (operators, tests, orchestration).

        A downed replica is skipped by selection; requests fail over to
        its peers (degraded but correct answers — every replica serves
        the same shard index)."""
        with self._lock:
            self._replicas[shard][replica].healthy = healthy

    # -- replica selection & failover ------------------------------------

    def _replica_ring(self, shard: int) -> list[_Replica]:
        """Every replica of ``shard``, healthy ones first, starting at a
        round-robin offset so read load spreads across replicas."""
        with self._lock:
            replicas = list(self._replicas[shard])
            self._rr += 1
            offset = self._rr % len(replicas)
        rotated = replicas[offset:] + replicas[:offset]
        return [r for r in rotated if r.healthy] + [
            r for r in rotated if not r.healthy
        ]

    def _on_shard(self, shard: int, call):
        """Run ``call(engine)`` against shard replicas with failover.

        Expected query outcomes (:class:`ParameterError`,
        :class:`BatchDeadlineExpired`) propagate — they are answers,
        not replica failures. Anything else (an injected
        ``engine.resolve`` fault, a genuine bug in one replica) counts
        a ``serving.router.replica_failovers``, demotes the replica to
        unhealthy (``set_replica_health`` restores it), and the next
        replica takes the request; only when every replica fails does
        the last error surface."""
        started = time.perf_counter()
        with self._lock:
            self._in_service[shard] += 1
        try:
            ring = self._replica_ring(shard)
            last_error: Exception | None = None
            for replica in ring:
                try:
                    return call(replica.engine)
                except (ParameterError, BatchDeadlineExpired):
                    raise
                except Exception as exc:  # noqa: BLE001 - failover scope
                    last_error = exc
                    replica.healthy = False
                    obs.count("serving.router.replica_failovers")
            assert last_error is not None
            raise last_error
        finally:
            with self._lock:
                self._in_service[shard] -= 1
            obs.observe(
                f"serving.shard.handle_seconds.{shard}",
                time.perf_counter() - started,
            )

    def _on_residual(self, call):
        """Residual queries get the same replica ring + failover."""
        replicas = list(self._residual_replicas)
        with self._lock:
            self._rr += 1
            offset = self._rr % len(replicas)
        rotated = replicas[offset:] + replicas[:offset]
        last_error: Exception | None = None
        for replica in rotated:
            if not replica.healthy:
                continue
            try:
                return call(replica.engine)
            except (ParameterError, BatchDeadlineExpired):
                raise
            except Exception as exc:  # noqa: BLE001 - failover scope
                last_error = exc
                replica.healthy = False
                obs.count("serving.router.replica_failovers")
        if last_error is not None:
            raise last_error
        return call(replicas[0].engine)

    # -- queries ---------------------------------------------------------

    def query(
        self,
        vertex: Hashable,
        k: int,
        *,
        deadline: Deadline | None = None,
        request_id=None,
    ) -> QueryResult:
        """Answer one QkVCS query from exactly one shard."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if not self._shard_set.covers(k):
            return self._live_fallback(vertex, k, deadline)
        if k < self._shard_set.shard_k:
            obs.count("serving.router.residual_routed")
            return self._on_residual(
                lambda engine: engine.query(
                    vertex, k, deadline=deadline, request_id=request_id
                )
            )
        shard = self._owner.get(vertex)
        if shard is None:
            if vertex not in self._shard_set.residual:
                raise ParameterError(
                    f"vertex {vertex!r} not in the served graph"
                )
            # Known vertex outside the shard_k-core: by the shard-key
            # fact it belongs to no k-VCC at this level — answer empty
            # without touching any shard.
            obs.count("serving.queries")
            obs.count("serving.router.unowned")
            return QueryResult(vertex, k, (), "index")
        obs.count("serving.router.point_routed")
        return self._on_shard(
            shard,
            lambda engine: engine.query(
                vertex, k, deadline=deadline, request_id=request_id
            ),
        )

    def query_batch(
        self,
        queries: Iterable[tuple[Hashable, int]],
        *,
        deadline: Deadline | None = None,
        request_id=None,
    ) -> list[QueryResult]:
        """Answer ``(vertex, k)`` pairs in order via bounded fan-out.

        Queries are grouped by their target shard and the groups run
        concurrently (at most ``fanout`` at once); answers reassemble
        in request order. On deadline expiry mid-fan-out the longest
        contiguous completed *prefix* rides the
        :class:`BatchDeadlineExpired`, preserving the engine's
        completed-prefix contract under parallelism.
        """
        pairs = list(queries)
        span_attrs = {"size": len(pairs)}
        if request_id is not None:
            span_attrs["request_id"] = request_id
        with obs.start_span("serving.batch", **span_attrs):
            obs.count("serving.batches")
            groups: dict[object, list[int]] = {}
            for position, (vertex, k) in enumerate(pairs):
                groups.setdefault(
                    self._route_key(vertex, k), []
                ).append(position)
            if len(groups) <= 1 or self._fanout <= 1:
                return self._batch_sequential(pairs, deadline, request_id)
            return self._batch_fanout(pairs, groups, deadline, request_id)

    def _route_key(self, vertex: Hashable, k: int):
        """The fan-out bucket of one query (shard id, or a tag for the
        residual / unowned / live paths)."""
        try:
            if k < 1 or not self._shard_set.covers(k):
                return "live"
        except ParameterError:
            return "live"
        if k < self._shard_set.shard_k:
            return "residual"
        shard = self._owner.get(vertex)
        return shard if shard is not None else "unowned"

    def _batch_sequential(
        self, pairs, deadline, request_id
    ) -> list[QueryResult]:
        results: list[QueryResult] = []
        for vertex, k in pairs:
            if deadline is not None and deadline.expired():
                obs.count("serving.deadline_expirations")
                raise BatchDeadlineExpired(results, len(pairs))
            results.append(
                self.query(vertex, k, request_id=request_id)
            )
        return results

    def _batch_fanout(
        self, pairs, groups, deadline, request_id
    ) -> list[QueryResult]:
        collector = obs.get_collector()
        expired = threading.Event()

        def run_group(positions: list[int]):
            obs.set_collector(collector)
            answered: list[tuple[int, QueryResult]] = []
            for position in positions:
                if deadline is not None and deadline.expired():
                    expired.set()
                if expired.is_set():
                    break
                vertex, k = pairs[position]
                answered.append(
                    (
                        position,
                        self.query(
                            vertex, k, request_id=request_id
                        ),
                    )
                )
            return answered

        executor = self._ensure_executor()
        shard_ids = sorted(groups, key=repr)
        obs.count("serving.router.fanouts")
        obs.count("serving.router.fanout_width", len(shard_ids))
        for key in shard_ids:
            if isinstance(key, int):
                with self._lock:
                    self._queued[key] += len(groups[key])
        try:
            futures = {
                key: executor.submit(run_group, groups[key])
                for key in shard_ids
            }
            answered: dict[int, QueryResult] = {}
            error: Exception | None = None
            for key in shard_ids:
                try:
                    for position, result in futures[key].result():
                        answered[position] = result
                except BatchDeadlineExpired:
                    expired.set()
                except Exception as exc:  # noqa: BLE001 - re-raised
                    expired.set()
                    if error is None:
                        error = exc
        finally:
            for key in shard_ids:
                if isinstance(key, int):
                    with self._lock:
                        self._queued[key] -= len(groups[key])
        if error is not None:
            raise error
        if expired.is_set() or len(answered) < len(pairs):
            prefix: list[QueryResult] = []
            for position in range(len(pairs)):
                if position not in answered:
                    break
                prefix.append(answered[position])
            obs.count("serving.deadline_expirations")
            raise BatchDeadlineExpired(prefix, len(pairs))
        return [answered[position] for position in range(len(pairs))]

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._fanout,
                    thread_name_prefix="ripple-shard",
                )
            return self._executor

    def _live_fallback(
        self, vertex: Hashable, k: int, deadline: Deadline | None
    ) -> QueryResult:
        """Above a capped ceiling: live enumeration on the held graph,
        mirroring :meth:`QueryEngine.query`'s live tier exactly."""
        obs.count("serving.queries")
        obs.count("serving.cache.misses")
        resolve_started = time.perf_counter()
        if self._graph is None:
            raise ParameterError(
                f"k={k} is above the indexed ceiling and the router "
                f"has no graph for a live fallback"
            )
        if vertex not in self._shard_set.residual:
            raise ParameterError(
                f"vertex {vertex!r} not in the served graph"
            )
        if deadline is not None and deadline.expired():
            raise BatchDeadlineExpired([], 1)
        obs.count("serving.live.fallbacks")
        with obs.start_span("serving.live_fallback", k=k):
            if k == 1:
                component = component_of(self._graph, vertex)
                components: tuple[frozenset, ...] = (
                    (frozenset(component),) if len(component) > 1 else ()
                )
            else:
                component = kvcc_containing(self._graph, vertex, k)
                components = (
                    () if component is None else (component,)
                )
        obs.observe(
            "serving.resolve_seconds.live",
            time.perf_counter() - resolve_started,
        )
        return QueryResult(vertex, k, components, "live")

    # -- reload ----------------------------------------------------------

    def _hot_keys(self) -> list[tuple[Hashable, int]]:
        """The most-recently-used (vertex, k) keys across all replica
        caches — the working set a reload handoff should keep warm."""
        keys: list[tuple[Hashable, int]] = []
        seen: set = set()
        rings = [self._residual_replicas] + self._replicas
        for ring in rings:
            for replica in ring:
                for key in replica.engine.cache.snapshot_keys():
                    if key not in seen:
                        seen.add(key)
                        keys.append(key)
        return keys[:_WARM_HANDOFF_LIMIT]

    def _warm_handoff(self, hot_keys: list[tuple[Hashable, int]]) -> int:
        """Prime the fresh generation's caches with the old working set.

        Answers come straight from the new indexes (no counters, no
        engine traffic) so the handoff is invisible to query metrics
        beyond its own ``serving.shard.warmed_keys``."""
        warmed = 0
        shard_set = self._shard_set
        for vertex, k in hot_keys:
            try:
                if k < 1 or not shard_set.covers(k):
                    continue
                if k < shard_set.shard_k:
                    if vertex not in shard_set.residual:
                        continue
                    answer = shard_set.residual.containing(vertex, k)
                    for replica in self._residual_replicas:
                        replica.engine.cache.put((vertex, k), answer)
                else:
                    shard = self._owner.get(vertex)
                    if shard is None:
                        continue
                    answer = shard_set.shards[shard].containing(vertex, k)
                    for replica in self._replicas[shard]:
                        replica.engine.cache.put((vertex, k), answer)
                warmed += 1
            except ParameterError:
                continue
        if warmed:
            obs.count("serving.shard.warmed_keys", warmed)
        return warmed

    def reload(self, graph: Graph) -> None:
        """Adopt a fresh copy of the served graph (versioned swap).

        Mirrors :meth:`QueryEngine.reload`: the replacement shard set
        is built *outside* the lock while in-flight queries ride the
        old generation; the swap installs fresh replicas and bumps the
        version atomically. The old generation's hottest cache keys are
        re-resolved against the new indexes right after the swap
        (**warm-cache handoff**), so a reload does not hand the next
        caller a stone-cold cache.
        """
        current = self._shard_set
        replacement = current
        if current.is_stale(graph):
            obs.count("serving.index.stale_rebuilds")
            replacement = ShardSet.build(
                graph,
                current.num_shards,
                shard_k=current.shard_k,
                max_k=current.max_k,
            )
        chaos.fire("reload.swap")
        hot_keys = self._hot_keys()
        with self._lock:
            obs.count("serving.engine.reloads")
            obs.count("serving.router.reloads")
            self._graph = graph
            self._version += 1
        self._adopt(replacement)
        self._warm_handoff(hot_keys)

    # -- stats -----------------------------------------------------------

    def _shard_p95_ms(self, shard: int) -> float | None:
        snapshots = obs.get_collector().histogram_snapshots()
        snapshot = snapshots.get(f"serving.shard.handle_seconds.{shard}")
        if snapshot is None:
            return None
        histogram = Histogram()
        histogram.merge(snapshot)
        if histogram.is_empty():
            return None
        return round(histogram.quantile(0.95) * 1000.0, 3)

    def stats(self) -> dict:
        """Engine-shaped stats plus ``router`` and per-shard gauges."""
        shard_set = self._shard_set
        cache_entries = sum(
            len(replica.engine.cache)
            for ring in [self._residual_replicas] + self._replicas
            for replica in ring
        )
        with self._lock:
            in_service = list(self._in_service)
            queued = list(self._queued)
        shard_rows = []
        for shard_id, shard in enumerate(shard_set.shards):
            replicas_up = sum(
                1 for r in self._replicas[shard_id] if r.healthy
            )
            row = {
                "shard": shard_id,
                "num_vertices": shard.num_vertices,
                "num_edges": shard.num_edges,
                "ceiling": shard.ceiling,
                "queue_depth": queued[shard_id],
                "in_service": in_service[shard_id],
                "replicas": len(self._replicas[shard_id]),
                "replicas_up": replicas_up,
                "cache_entries": sum(
                    len(r.engine.cache)
                    for r in self._replicas[shard_id]
                ),
            }
            p95 = self._shard_p95_ms(shard_id)
            if p95 is not None:
                row["p95_ms"] = p95
            shard_rows.append(row)
        return {
            "version": self._version,
            "cache": {
                "capacity": self._cache_size,
                "entries": cache_entries,
            },
            "index": {
                "ceiling": shard_set.ceiling,
                "complete": shard_set.complete,
                "num_vertices": shard_set.num_vertices,
                "num_edges": shard_set.num_edges,
                "fingerprint": shard_set.fingerprint,
            },
            "has_graph": self._graph is not None,
            "router": {
                "shards": shard_set.num_shards,
                "replicas": self._replica_count,
                "shard_k": shard_set.shard_k,
                "fanout": self._fanout,
                "residual_ceiling": shard_set.residual.ceiling,
            },
            "shards": shard_rows,
        }

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
