"""Request-scoped structured access logs for the serve daemon.

One JSONL line per protocol request, written as the response goes out,
so any client-observed anomaly (a loadtest failure row, a latency
spike, an unexplained shed) can be joined — by ``request_id`` — to the
exact server-side decision that produced it. Enabled with
``ripple serve --access-log PATH``; the daemon writes, flushes per
line, and closes the file on shutdown, so a crashed run still leaves
every completed request on disk.

Record fields (absent keys simply did not apply to that request):

``ts``
    Unix timestamp (seconds, microsecond precision) of the response.
``request_id``
    The server-assigned (or client-echoed) id; see
    :mod:`repro.serving.protocol`.
``op`` / ``class``
    The operation and its admission cost class (``control`` for
    admission-bypassing ops and unparseable lines).
``outcome``
    ``"ok"``, an error code (``parse``, ``overloaded``, …), or a chaos
    verdict (``"crash"``, ``"garbage"``) for injected session faults
    that never produced a JSON response.
``queue_ms`` / ``service_ms`` / ``handle_ms``
    Admission queue wait, engine service time (admission slot hold),
    and end-to-end handle time for this request.
``tier``
    Where a query resolved (``cache`` / ``index`` / ``live``); for a
    batch, a tier → count summary.
``shed``
    The shed reason when admission refused the request.
``fault``
    The injected chaos mode when one fired at ``serve.handle``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO

__all__ = ["AccessLog"]


class AccessLog:
    """A thread-safe JSONL appender for per-request access records.

    Daemon session threads share one instance; the lock serialises
    whole lines so concurrent requests never interleave bytes. Writes
    flush immediately — an access log is for post-mortems, and the
    post-mortem case is exactly the one where buffered tails vanish.
    """

    __slots__ = ("_stream", "_lock", "_owns_stream", "_closed")

    def __init__(self, stream: IO[str], *, owns_stream: bool = False) -> None:
        self._stream = stream
        self._lock = threading.Lock()
        self._owns_stream = owns_stream
        self._closed = False

    @classmethod
    def open(cls, path) -> "AccessLog":
        """Open (append) an access log at ``path``."""
        return cls(open(path, "a", encoding="utf-8"), owns_stream=True)

    def write(self, record: dict) -> None:
        """Append one record as a compact JSON line (with timestamp)."""
        line = json.dumps(
            {"ts": round(time.time(), 6), **record},
            separators=(",", ":"),
            default=str,
            sort_keys=False,
        )
        with self._lock:
            if self._closed:
                return
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        """Flush and (when this log opened the file) close it."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._stream.flush()
            finally:
                if self._owns_stream:
                    self._stream.close()
