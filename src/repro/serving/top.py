"""``ripple top``: a polling console view of a live serve daemon.

Connects to a running ``ripple serve --tcp`` daemon, polls the
``stats`` protocol op at a fixed interval, and renders the *rate*
view an operator actually wants — requests/s, shed/s, error/s, live
queue depths, and the p50/p95/p99 handle-time tail of the *last
interval* (computed by subtracting successive histogram snapshots,
which the mergeable fixed-layout histograms make exact).

Pure functions (:func:`poll_stats`, :func:`delta_frame`,
:func:`render_frame`) do the work so tests can drive them without a
terminal; :func:`run_top` is the CLI loop.
"""

from __future__ import annotations

import json
import socket
import sys
import time

from repro.errors import ParseError
from repro.obs.histogram import Histogram, subtract_snapshots

__all__ = ["delta_frame", "poll_stats", "render_frame", "run_top"]

#: Histogram family whose delta-window tail the frame displays.
_HANDLE_FAMILY = "serving.handle_seconds"


def poll_stats(address: tuple[str, int], timeout: float = 5.0) -> dict:
    """One ``stats`` round trip to the daemon at ``address``."""
    with socket.create_connection(address, timeout=timeout) as conn:
        conn.sendall(b'{"op":"stats"}\n')
        reader = conn.makefile("r", encoding="utf-8")
        line = reader.readline()
    if not line:
        raise ParseError(f"no stats response from {address}")
    response = json.loads(line)
    if not response.get("ok"):
        raise ParseError(
            f"stats failed: {response.get('error', 'unknown error')}"
        )
    return response


def _merged_family(histograms: dict, family: str) -> Histogram:
    merged = Histogram()
    prefix = family + "."
    for name, snapshot in histograms.items():
        if name == family or name.startswith(prefix):
            merged.merge(snapshot)
    return merged


def _family_delta(
    current: dict, previous: dict, family: str
) -> Histogram:
    merged_now = _merged_family(current, family)
    merged_before = _merged_family(previous, family)
    return subtract_snapshots(
        merged_now.to_snapshot(), merged_before.to_snapshot()
    )


def delta_frame(
    previous: dict | None, current: dict, interval_s: float
) -> dict:
    """The displayable rates/tails between two ``stats`` responses.

    ``previous=None`` (the first poll) yields lifetime-so-far numbers
    over the daemon's uptime instead of an interval window.
    """
    counters_now = current.get("counters", {})
    counters_before = (
        previous.get("counters", {}) if previous is not None else {}
    )
    window_s = max(interval_s, 1e-9)
    if previous is None:
        window_s = max(current.get("uptime_s", interval_s), 1e-9)

    def rate(name: str) -> float:
        delta = counters_now.get(name, 0) - counters_before.get(name, 0)
        return max(0, delta) / window_s

    histograms_now = current.get("histograms", {})
    histograms_before = (
        previous.get("histograms", {}) if previous is not None else {}
    )
    handle = _family_delta(histograms_now, histograms_before, _HANDLE_FAMILY)
    frame = {
        "uptime_s": current.get("uptime_s"),
        "generation": current.get("generation"),
        "window_s": round(window_s, 3),
        "rps": round(rate("serving.requests"), 1),
        "shed_per_s": round(rate("serving.shed"), 1),
        "errors_per_s": round(rate("serving.errors"), 1),
        "queue_depth": dict(
            current.get("gauges", {}).get("queue_depth", {})
        ),
        "in_service": dict(
            current.get("gauges", {}).get("in_service", {})
        ),
        "handled": handle.count,
    }
    if not handle.is_empty():
        frame["handle_p50_ms"] = round(handle.quantile(0.50) * 1000.0, 3)
        frame["handle_p95_ms"] = round(handle.quantile(0.95) * 1000.0, 3)
        frame["handle_p99_ms"] = round(handle.quantile(0.99) * 1000.0, 3)
    shards = current.get("gauges", {}).get("shards")
    if shards:
        # A ShardRouter is serving: keep its per-shard gauge rows
        # (queue depth, in-service, replica health, p95) for display.
        frame["shards"] = [
            {
                "shard": row.get("shard"),
                "queue_depth": row.get("queue_depth", 0),
                "in_service": row.get("in_service", 0),
                "replicas_up": row.get("replicas_up"),
                "replicas": row.get("replicas"),
                "p95_ms": row.get("p95_ms"),
            }
            for row in shards
        ]
    return frame


def render_frame(frame: dict, address: tuple[str, int]) -> str:
    """One console frame (a few lines; no terminal control codes)."""
    host, port = address
    depth = sum(frame["queue_depth"].values())
    busy = sum(frame["in_service"].values())
    lines = [
        f"ripple top — {host}:{port}"
        f"  up {frame.get('uptime_s', '?')}s"
        f"  gen {frame.get('generation', '?')}"
        f"  window {frame['window_s']}s",
        f"  rps {frame['rps']:>8.1f}   shed/s {frame['shed_per_s']:>6.1f}"
        f"   err/s {frame['errors_per_s']:>6.1f}"
        f"   queued {depth}   busy {busy}",
    ]
    if "handle_p50_ms" in frame:
        lines.append(
            f"  handle ms  p50 {frame['handle_p50_ms']:>8.3f}"
            f"   p95 {frame['handle_p95_ms']:>8.3f}"
            f"   p99 {frame['handle_p99_ms']:>8.3f}"
            f"   ({frame['handled']} reqs)"
        )
    else:
        lines.append("  handle ms  (no requests in window)")
    per_class = ", ".join(
        f"{klass}={count}"
        for klass, count in sorted(frame["queue_depth"].items())
        if count
    )
    lines.append(f"  queue depth by class: {per_class or '(all idle)'}")
    for row in frame.get("shards", ()):
        p95 = row.get("p95_ms")
        p95_text = f"{p95:>8.3f}" if p95 is not None else "       -"
        replicas = (
            f"{row['replicas_up']}/{row['replicas']}"
            if row.get("replicas") is not None
            else "?"
        )
        lines.append(
            f"  shard {row['shard']:>3}  queued {row['queue_depth']:>4}"
            f"   busy {row['in_service']:>4}   replicas {replicas}"
            f"   p95 ms {p95_text}"
        )
    return "\n".join(lines)


def run_top(
    address: tuple[str, int],
    *,
    interval: float = 2.0,
    count: int | None = None,
    out=None,
) -> int:
    """Poll ``address`` every ``interval`` seconds and print frames.

    ``count`` bounds the number of frames (None = until interrupted);
    returns 0, or 1 when the daemon is unreachable on the first poll.
    """
    out = out if out is not None else sys.stdout
    previous = None
    frames = 0
    try:
        while count is None or frames < count:
            try:
                current = poll_stats(address)
            except (OSError, ValueError, ParseError) as exc:
                print(f"ripple top: {exc}", file=out)
                return 1 if previous is None else 0
            frame = delta_frame(previous, current, interval)
            print(render_frame(frame, address), file=out, flush=True)
            previous = current
            frames += 1
            if count is not None and frames >= count:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
