"""Deterministic fault injection for the serving tier.

:mod:`repro.resilience.faults` proves the *enumeration* recovery paths
by arming faults on supervised-pool dispatches; this module extends
the same :class:`~repro.resilience.faults.FaultPlan` grammar into the
serving path, so the daemon's survivability claims (shed under
overload, quarantine corrupt state, survive crashed handlers) are
exercised in tests and CI instead of trusted.

Serving **stages** (usable in ``REPRO_FAULT`` specs exactly like the
pool stages — ``stage:index:mode[:times]``, index = the 0-based
sequence number of operations hitting that stage):

``serve.handle``
    One protocol request line about to be handled. ``crash`` kills the
    *connection* (the handler aborts without a response — the client
    sees EOF; the daemon survives), ``raise`` answers an ``internal``
    error, ``hang`` stalls the response by ``hang_seconds``,
    ``garbage`` emits an undecodable response line.
``engine.resolve``
    A query about to resolve (cache → index → live; drawn before the
    cache so every query is injectable, which keeps hang-calibrated
    service times independent of cache hit rates).
    ``hang`` stalls it; ``crash``/``raise``/``garbage`` raise
    :class:`~repro.resilience.faults.FaultInjected` (surfacing as an
    ``internal`` protocol error).
``index.load``
    :meth:`KvccIndex.load` about to read a file. ``garbage`` simulates
    an integrity failure (the *file is left untouched* — no quarantine
    of good state), ``crash`` is a hard process death mid-load,
    ``hang`` stalls the read.
``index.save``
    :meth:`KvccIndex.save` about to persist. ``crash`` is a hard
    process death after a *partial* temp-file write — the
    kill-mid-save scenario the atomic rename must survive; ``garbage``
    corrupts the written payload (placed atomically, so the next load
    quarantines it); ``hang`` stalls before the rename.
``reload.swap``
    :meth:`QueryEngine.reload` about to swap the rebuilt index in.
    ``crash``/``raise``/``garbage`` abort the swap (the old index
    keeps serving); ``hang`` stalls it (queries keep riding the old
    index meanwhile).

The plan is process-global and drawn down under a lock, so concurrent
daemon threads consume firings deterministically in arrival order.
Tests arm plans programmatically with :func:`activate`; daemons pick
them up from the ``REPRO_FAULT`` environment (the load-test harness
spawns its daemon subprocesses with the caller's environment, so a CI
job arms daemon faults by exporting the variable).
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.resilience.faults import FaultInjected, FaultPlan

__all__ = [
    "STAGES",
    "SessionCrash",
    "ServingFaults",
    "activate",
    "deactivate",
    "draw",
    "fire",
    "hang_seconds",
]

#: The injectable serving stages (see module docstring).
STAGES = (
    "serve.handle",
    "engine.resolve",
    "index.load",
    "index.save",
    "reload.swap",
)


class SessionCrash(Exception):
    """A ``crash`` fault at ``serve.handle``: the connection handler
    dies without answering. Deliberately *not* a
    :class:`~repro.errors.ReproError` — nothing between the injection
    point and the session loop may convert it into a polite
    ``internal`` response; the daemon closes the connection instead.
    """


class ServingFaults:
    """A :class:`FaultPlan` with per-stage operation sequencing.

    The pool orchestrator numbers dispatches itself; the serving tier
    has no single dispatcher, so this wrapper keeps one monotone
    counter per stage (under a lock) and feeds it to
    :meth:`FaultPlan.draw` — operation *i* at a stage is the i-th one
    to reach it, whatever thread carries it.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._sequence: dict[str, int] = {}

    def draw(self, stage: str, *, request_id=None) -> str | None:
        """The armed mode for this stage hit (consumes one firing).

        ``request_id`` ties the draw to the request that triggered it:
        a firing emits a ``serving.fault`` trace event carrying the id,
        so an access-log line with a surprising outcome can be joined
        to the exact fault that caused it.
        """
        with self._lock:
            index = self._sequence.get(stage, 0)
            self._sequence[stage] = index + 1
            mode = self.plan.draw(stage, index)
        if mode is not None:
            obs.count("serving.faults_injected")
            obs.count(f"serving.faults.{stage}.{mode}")
            obs.trace_event(
                "serving.fault",
                stage=stage,
                mode=mode,
                sequence=index,
                request_id=request_id,
            )
        return mode

    @property
    def hang_seconds(self) -> float:
        return self.plan.hang_seconds


_lock = threading.Lock()
_active: ServingFaults | None = None
_loaded_env = False


def activate(plan: FaultPlan | None) -> None:
    """Arm a plan for this process (tests); ``None`` disarms."""
    global _active, _loaded_env
    with _lock:
        _active = ServingFaults(plan) if plan is not None else None
        _loaded_env = True  # an explicit plan overrides the environment


def deactivate() -> None:
    """Disarm any active plan and forget the environment cache, so the
    next :func:`current` call re-reads ``REPRO_FAULT``."""
    global _active, _loaded_env
    with _lock:
        _active = None
        _loaded_env = False


def current() -> ServingFaults | None:
    """The active plan, lazily loaded from ``REPRO_FAULT`` once."""
    global _active, _loaded_env
    with _lock:
        if not _loaded_env:
            plan = FaultPlan.from_env()
            _active = ServingFaults(plan) if plan is not None else None
            _loaded_env = True
        return _active


def draw(stage: str, *, request_id=None) -> str | None:
    """The fault mode armed for this stage hit, or ``None`` (fast path:
    one lock-free attribute read when no plan is active)."""
    faults = _active
    if faults is None and _loaded_env:
        return None
    faults = current()
    if faults is None:
        return None
    return faults.draw(stage, request_id=request_id)


def hang_seconds() -> float:
    faults = current()
    return faults.hang_seconds if faults is not None else 0.0


def fire(stage: str, *, request_id=None) -> str | None:
    """Draw and *apply* the common modes for ``stage``.

    ``hang`` sleeps here and returns ``None`` (the operation then
    proceeds normally); ``raise``/``crash``/``garbage`` raise
    :class:`FaultInjected`. Stages with bespoke semantics
    (``serve.handle``, ``index.save``) call :func:`draw` directly and
    interpret the mode themselves.
    """
    mode = draw(stage, request_id=request_id)
    if mode is None:
        return None
    if mode == "hang":
        time.sleep(hang_seconds())
        return "hang"
    raise FaultInjected(f"injected {mode} fault at {stage}")
