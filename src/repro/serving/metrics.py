"""The ``/metrics`` surface: Prometheus text exposition over HTTP.

:func:`render_prometheus` turns the daemon's collector (counters,
phases, latency histograms) plus live gauges (admission queue depths,
engine generation, uptime) into Prometheus text exposition format
v0.0.4 — the format every scraper, including plain ``curl``, already
speaks. :class:`MetricsServer` is the tiny stdlib ``http.server``
listener behind ``ripple serve --metrics-port``; it binds its own
port so a saturated protocol daemon can still be scraped.

Naming scheme (documented in the catalogue in
``docs/observability.md``):

* counters: dots become underscores and ``_total`` is appended —
  ``serving.requests`` → ``serving_requests_total``;
* phases: same, with ``_seconds_total`` — they are monotone
  wall-clock accumulations;
* latency histogram families (``serving.handle_seconds.<class>`` …)
  are grouped into one Prometheus histogram per family with a
  ``class`` label (``tier`` for ``serving.resolve_seconds``),
  down-sampled to power-of-two bucket edges (exact, because bucket
  counts are cumulative in the exposition);
* gauges keep their natural names: ``serving_queue_depth{class=…}``,
  ``serving_in_service{class=…}``, ``serving_uptime_seconds``,
  ``serving_index_generation``, ``serving_cache_entries`` …

:func:`validate_exposition` is the strict grammar/duplicate checker
used by tests and the CI metrics smoke — every sample line must parse,
belong to a ``# TYPE``-declared family, and no metric name may be
declared twice.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.errors import ParseError
from repro.obs.histogram import BOUNDS, Histogram

__all__ = [
    "CONTENT_TYPE",
    "HISTOGRAM_FAMILIES",
    "MetricsServer",
    "render_prometheus",
    "validate_exposition",
]

#: The exposition content type scrapers negotiate on.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Histogram families exported with a label per recorded class — the
#: suffix after the family prefix becomes the label value.
HISTOGRAM_FAMILIES = {
    "serving.handle_seconds": "class",
    "serving.queue_wait_seconds": "class",
    "serving.service_seconds": "class",
    "serving.resolve_seconds": "tier",
    "serving.shard.handle_seconds": "shard",
}

#: Exposition bucket edges: every 4th internal bound (the exact powers
#: of two), so each exposed cumulative count is exact, just coarser.
_EXPOSED_BOUND_STEP = 4

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITISE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str, suffix: str = "") -> str:
    name = _SANITISE_RE.sub("_", raw) + suffix
    if not _NAME_RE.match(name):
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _histogram_lines(
    name: str,
    label: str,
    series: dict[str, Histogram],
) -> list[str]:
    lines = [
        f"# HELP {name} Latency histogram (seconds), "
        f"log2 buckets, exact counts.",
        f"# TYPE {name} histogram",
    ]
    # Exposure points: bounds at indices 0, 4, 8, … are the exact
    # powers of two; cumulative counts stay exact at any subset of
    # edges, the exposition is just coarser than the internal layout.
    exposed_at = set(range(0, len(BOUNDS), _EXPOSED_BOUND_STEP))
    for label_value in sorted(series):
        histogram = series[label_value]
        counts = histogram.counts
        prefix = f'{label}="{_escape_label(label_value)}"'
        cumulative = 0
        for index in range(len(BOUNDS)):
            cumulative += counts[index]
            if index in exposed_at:
                lines.append(
                    f'{name}_bucket{{{prefix},le="{BOUNDS[index]!r}"}}'
                    f" {cumulative}"
                )
        lines.append(
            f'{name}_bucket{{{prefix},le="+Inf"}} {histogram.count}'
        )
        lines.append(f"{name}_sum{{{prefix}}} {_format_value(histogram.sum)}")
        lines.append(f"{name}_count{{{prefix}}} {histogram.count}")
    return lines


def render_prometheus(
    collector,
    *,
    admission=None,
    engine=None,
    started_at: float | None = None,
    extra_gauges: dict | None = None,
) -> str:
    """The collector's state as Prometheus text exposition v0.0.4.

    ``admission`` (an
    :class:`~repro.serving.admission.AdmissionController`) contributes
    the live ``serving_queue_depth`` / ``serving_in_service`` gauges;
    ``engine`` (a :class:`~repro.serving.engine.QueryEngine`)
    contributes generation and cache gauges; ``started_at`` (a
    ``time.monotonic`` instant) contributes ``serving_uptime_seconds``.
    """
    lines: list[str] = []
    emitted: set[str] = set()

    def emit_single(name, metric_type, value, help_text, labels=""):
        if name in emitted:
            return
        emitted.add(name)
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {metric_type}")
        lines.append(f"{name}{labels} {_format_value(value)}")

    # Counters: one exposition metric per collector counter.
    for raw, value in sorted(collector.counters.items()):
        name = _metric_name(raw, "_total")
        if name in emitted:
            continue
        emitted.add(name)
        lines.append(f"# HELP {name} Counter {raw} (cumulative).")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(int(value))}")

    # Phases: monotone wall-clock accumulations, exported as counters.
    for raw, seconds in sorted(collector.phases.items()):
        name = _metric_name(raw, "_phase_seconds_total")
        if name in emitted:
            continue
        emitted.add(name)
        lines.append(
            f"# HELP {name} Accumulated wall-clock seconds in phase "
            f"{raw}."
        )
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(float(seconds))}")

    # Latency histograms, grouped per family with a class/tier label.
    snapshots = collector.histogram_snapshots()
    for family in sorted(HISTOGRAM_FAMILIES):
        label = HISTOGRAM_FAMILIES[family]
        prefix = family + "."
        series: dict[str, Histogram] = {}
        for raw, snapshot in snapshots.items():
            if raw.startswith(prefix):
                series[raw[len(prefix):]] = Histogram.from_snapshot(
                    snapshot
                )
            elif raw == family:
                series["all"] = Histogram.from_snapshot(snapshot)
        if not series:
            continue
        name = _metric_name(family)
        if name in emitted:
            continue
        emitted.add(name)
        lines.extend(_histogram_lines(name, label, series))

    # Gauges: live state, not history.
    if admission is not None:
        stats = admission.stats()
        for gauge, help_text in (
            ("queue_depth", "Requests waiting in the admission queue."),
            ("in_service", "Requests currently executing."),
        ):
            name = f"serving_{gauge}"
            if name in emitted:
                continue
            emitted.add(name)
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            for klass in sorted(stats[gauge]):
                lines.append(
                    f'{name}{{class="{_escape_label(klass)}"}} '
                    f"{_format_value(int(stats[gauge][klass]))}"
                )
        emit_single(
            "serving_queue_slots_free",
            "gauge",
            int(stats["slots_free"]),
            "Free worker slots in the admission controller.",
        )
        emit_single(
            "serving_workers",
            "gauge",
            int(stats["workers"]),
            "Configured concurrent worker slots.",
        )
    if engine is not None:
        engine_stats = engine.stats()
        emit_single(
            "serving_index_generation",
            "gauge",
            int(engine_stats["version"]),
            "Monotone index generation (bumped on every swap).",
        )
        emit_single(
            "serving_cache_entries",
            "gauge",
            int(engine_stats["cache"]["entries"]),
            "Entries currently in the query LRU cache.",
        )
        emit_single(
            "serving_cache_capacity",
            "gauge",
            int(engine_stats["cache"]["capacity"]),
            "Configured query LRU cache capacity.",
        )
    if started_at is not None:
        emit_single(
            "serving_uptime_seconds",
            "gauge",
            time.monotonic() - started_at,
            "Seconds since the daemon started.",
        )
    for name, value in sorted((extra_gauges or {}).items()):
        emit_single(
            _metric_name(name), "gauge", value, f"Gauge {name}."
        )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)"
    r"( (?P<timestamp>-?\d+))?$"
)
_LABELS_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)'
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def validate_exposition(text: str) -> dict[str, str]:
    """Strictly check Prometheus text exposition v0.0.4 conformance.

    Returns ``{metric_name: type}`` for every declared family. Raises
    :class:`repro.errors.ParseError` on: an unparseable sample line, a
    malformed label set, a non-float value, a duplicate ``# TYPE``
    declaration (duplicate metric name), a sample whose family was
    never declared, or two samples with identical name + labels.
    """
    declared: dict[str, str] = {}
    seen_samples: set[str] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in _TYPES:
                raise ParseError(
                    f"line {line_number}: malformed TYPE line {line!r}"
                )
            name = parts[2]
            if name in declared:
                raise ParseError(
                    f"line {line_number}: duplicate metric name {name!r}"
                )
            declared[name] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ParseError(
                f"line {line_number}: unparseable sample {line!r}"
            )
        labels = match.group("labels")
        if labels is not None:
            body = labels[1:-1]
            consumed = 0
            for label_match in _LABELS_RE.finditer(body):
                consumed = label_match.end()
            if body and consumed != len(body):
                raise ParseError(
                    f"line {line_number}: malformed labels {labels!r}"
                )
        try:
            float(match.group("value"))
        except ValueError as exc:
            raise ParseError(
                f"line {line_number}: non-numeric value "
                f"{match.group('value')!r}"
            ) from exc
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                stripped = name[: -len(suffix)]
                if declared.get(stripped) in ("histogram", "summary"):
                    family = stripped
                    break
        if family not in declared:
            raise ParseError(
                f"line {line_number}: sample {name!r} has no "
                f"# TYPE declaration"
            )
        sample_key = f"{name}{labels or ''}"
        if sample_key in seen_samples:
            raise ParseError(
                f"line {line_number}: duplicate sample {sample_key!r}"
            )
        seen_samples.add(sample_key)
    return declared


class MetricsServer:
    """The stdlib HTTP listener behind ``ripple serve --metrics-port``.

    Serves ``GET /metrics`` (exposition of the given collector +
    optional admission/engine gauges) and ``GET /healthz`` (a JSON
    liveness probe). Runs its acceptor in a daemon thread;
    :meth:`start` returns once the port is bound, so ``port=0`` is
    usable in tests (read the concrete port off :attr:`port`).
    """

    def __init__(
        self,
        *,
        collector=None,
        admission=None,
        engine=None,
        started_at: float | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._collector = (
            collector if collector is not None else obs.get_collector()
        )
        self._admission = admission
        self._engine = engine
        self._started_at = (
            started_at if started_at is not None else time.monotonic()
        )
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def render(self) -> str:
        """The current exposition document (what ``/metrics`` serves)."""
        return render_prometheus(
            self._collector,
            admission=self._admission,
            engine=self._engine,
            started_at=self._started_at,
        )

    def start(self) -> "MetricsServer":
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                if self.path.split("?", 1)[0] == "/metrics":
                    body = outer.render().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                elif self.path.split("?", 1)[0] == "/healthz":
                    body = json.dumps({"ok": True}).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                else:
                    body = b"not found (try /metrics)\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes are periodic; stderr noise helps nobody

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="ripple-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (concrete even when 0 was requested)."""
        if self._httpd is None:
            raise RuntimeError("metrics server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self if self._httpd is not None else self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
