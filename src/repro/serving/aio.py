"""The ``asyncio`` serving backend: one event loop, many connections.

The threaded daemon (:mod:`repro.serving.daemon`) spends one OS thread
per *connection*; past a few hundred idle clients that is all stack
memory and scheduler pressure. This backend multiplexes every
connection onto a single event loop and spends threads only on
*requests*: the loop reads lines, decides admission inline (the
non-blocking :meth:`~repro.serving.admission.AdmissionController.admit_nowait`
half of the controller), and dispatches the CPU-bound protocol work to
bounded executors so the loop itself never blocks.

Everything above the transport is reused **verbatim** — the
line-delimited ``repro.serve/1`` framing, :func:`handle_line`,
admission counters, per-request deadlines, chaos stages, and the
access log all behave exactly as under the threaded backend; the two
are interchangeable behind ``ripple serve --backend {thread,aio}`` and
the load harness measures them against the same gate.

Dispatch is a three-pool split, mirroring the admission decision:

* **control pool** (2 threads) — ops that bypass admission (``ping`` /
  ``stats`` / ``shutdown``), parse errors, and already-shed requests:
  tiny bounded work, kept off the worker pool so an overloaded daemon
  stays inspectable;
* **worker pool** (``workers`` threads) — requests admitted
  immediately; the executor is sized to the admission slot count so an
  admitted request starts without queueing again;
* **wait pool** — requests holding a *reserved* queue slot
  (:class:`_WaitReservation`); each redeems its reservation with the
  blocking ``finish_wait`` there, then runs the request on the same
  thread. A separate pool is what makes this deadlock-free: a waiter
  never occupies a worker-pool thread that the slot it waits for
  needs.

Concurrency of admitted work is bounded by admission *slots* (exactly
``workers``), not by thread counts — the wait pool only ever runs
requests that hold a ticket.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.serving.admission import (
    AdmissionController,
    AdmissionTicket,
    _WaitReservation,
    cost_class,
)
from repro.serving.chaos import SessionCrash
from repro.serving.daemon import (
    ServeSettings,
    _open_context,
    _oversized_response,
)
from repro.serving.protocol import ServerContext, handle_line

__all__ = ["AioServerHandle", "serve_tcp_aio"]


class _TicketView:
    """Admission facade carrying a ticket acquired on the event loop.

    :func:`handle_request` calls ``admission.admit(klass)`` itself; by
    the time it does, the loop has already admitted this request, so
    ``admit`` hands over the pre-acquired ticket. If the protocol layer
    never consumes it (chaos crash, unsupported op), the dispatcher's
    ``finally`` releases it — a slot can never leak."""

    __slots__ = ("_inner", "_ticket", "consumed")

    def __init__(
        self, inner: AdmissionController, ticket: AdmissionTicket
    ) -> None:
        self._inner = inner
        self._ticket = ticket
        self.consumed = False

    def admit(self, klass: str) -> AdmissionTicket:
        self.consumed = True
        return self._ticket

    def release_unconsumed(self) -> None:
        if not self.consumed:
            self._ticket.release()

    def retry_after_ms(self, klass: str) -> int:
        return self._inner.retry_after_ms(klass)

    def stats(self) -> dict:
        return self._inner.stats()


class _ShedView:
    """Admission facade for a request the loop already shed.

    ``admit`` answers None *without counting* — ``admit_nowait``
    already recorded the shed — so :func:`handle_request` produces the
    exact ``overloaded`` response (with a live ``retry_after_ms`` hint)
    it would have under the threaded backend, once."""

    __slots__ = ("_inner",)

    def __init__(self, inner: AdmissionController) -> None:
        self._inner = inner

    def admit(self, klass: str) -> None:
        return None

    def retry_after_ms(self, klass: str) -> int:
        return self._inner.retry_after_ms(klass)

    def stats(self) -> dict:
        return self._inner.stats()


class _Session:
    """One connection's loop-side state (for drain bookkeeping)."""

    __slots__ = ("busy", "task", "writer")

    def __init__(self, task, writer) -> None:
        self.task = task
        self.writer = writer
        #: True while a request from this connection is in flight —
        #: drain lets busy sessions finish and closes idle ones.
        self.busy = False


class _AioServer:
    """The event loop, its executors, and the session registry."""

    def __init__(self, engine, settings: ServeSettings) -> None:
        self.engine = engine
        self.settings = settings
        self.admission = AdmissionController(
            workers=max(1, settings.workers),
            max_queue=settings.max_queue,
            shed_policy=settings.shed_policy,
        )
        # Executor tasks and loop callbacks all record into the
        # collector active at server creation, like threaded sessions.
        self.collector = obs.get_collector()
        self.context: ServerContext = _open_context(settings)
        self.draining = threading.Event()
        self.loop: asyncio.AbstractEventLoop | None = None
        self.server: asyncio.AbstractServer | None = None
        self.bound: tuple[str, int] | None = None
        self._sessions: dict[object, _Session] = {}
        workers = max(1, settings.workers)
        self._worker_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="ripple-aio-worker"
        )
        self._control_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="ripple-aio-control"
        )
        # Bounded queueing: at most max_queue reservations exist at
        # once, so the wait pool is sized to redeem all of them
        # concurrently. The legacy `block` policy queues without bound;
        # excess waiters queue FIFO inside the executor, preserving
        # its never-shed semantics.
        if settings.shed_policy == "block":
            wait_threads = max(4, workers)
        else:
            wait_threads = max(1, min(128, self.admission.max_queue))
        self._wait_pool = ThreadPoolExecutor(
            max_workers=wait_threads, thread_name_prefix="ripple-aio-wait"
        )

    # -- loop-side ------------------------------------------------------

    async def startup(self, host: str, port: int) -> tuple[str, int]:
        obs.set_collector(self.collector)
        self.server = await asyncio.start_server(
            self._session,
            host=host,
            port=port,
            limit=self.settings.max_line_bytes,
        )
        sockname = self.server.sockets[0].getsockname()
        self.bound = (sockname[0], sockname[1])
        return self.bound

    async def _session(self, reader, writer) -> None:
        task = asyncio.current_task()
        session = _Session(task, writer)
        self._sessions[task] = session
        obs.count("serving.sessions")
        limit = self.settings.max_line_bytes
        try:
            while True:
                at_eof = False
                try:
                    raw = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    if not exc.partial:
                        return
                    # Final unterminated line: answer it, then hang up.
                    raw = exc.partial
                    at_eof = True
                except asyncio.LimitOverrunError as exc:
                    await self._drain_oversized(reader, exc)
                    if not await self._write(
                        writer, _oversized_response(limit)
                    ):
                        return
                    continue
                except (ConnectionResetError, OSError):
                    return
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    if at_eof:
                        return
                    continue
                session.busy = True
                try:
                    response, keep_serving = await self._dispatch(line)
                except SessionCrash:
                    # Injected handler crash: the connection dies
                    # without a response; the daemon survives.
                    obs.count("serving.sessions.crashed")
                    return
                finally:
                    session.busy = False
                if response and not await self._write(writer, response):
                    return
                if at_eof or not keep_serving or self.draining.is_set():
                    # A draining daemon finishes the in-flight request
                    # (the response above went out) and then hangs up.
                    return
        except asyncio.CancelledError:
            return
        finally:
            self._sessions.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - peer already gone
                pass

    @staticmethod
    async def _drain_oversized(reader, exc) -> None:
        """Discard the rest of an over-limit line in bounded chunks."""
        await reader.readexactly(exc.consumed)
        while True:
            try:
                await reader.readuntil(b"\n")
                return
            except asyncio.LimitOverrunError as more:
                await reader.readexactly(more.consumed)
            except asyncio.IncompleteReadError:
                return

    @staticmethod
    async def _write(writer, response: str) -> bool:
        try:
            writer.write(response.encode("utf-8") + b"\n")
            await writer.drain()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    async def _dispatch(self, line: str) -> tuple[str, bool]:
        """Admission on the loop, protocol work in an executor."""
        try:
            request = json.loads(line)
        except ValueError:
            request = None
        klass = (
            cost_class(request) if isinstance(request, dict) else None
        )
        loop = asyncio.get_running_loop()
        if klass is None:
            # Control op or parse error: bypass admission (the real
            # controller rides along purely so `stats` can report it).
            return await loop.run_in_executor(
                self._control_pool, self._run_handle, line, self.admission
            )
        outcome = self.admission.admit_nowait(klass)
        if outcome is None:
            return await loop.run_in_executor(
                self._control_pool,
                self._run_handle,
                line,
                _ShedView(self.admission),
            )
        if isinstance(outcome, _WaitReservation):
            return await loop.run_in_executor(
                self._wait_pool, self._run_queued, line, outcome
            )
        return await loop.run_in_executor(
            self._worker_pool,
            self._run_ticketed,
            line,
            outcome,
        )

    # -- executor-side --------------------------------------------------

    def _run_handle(self, line: str, admission) -> tuple[str, bool]:
        obs.set_collector(self.collector)
        return handle_line(
            self.engine,
            line,
            request_timeout=self.settings.request_timeout,
            reloader=self.settings.reloader,
            admission=admission,
            context=self.context,
        )

    def _run_ticketed(
        self, line: str, ticket: AdmissionTicket
    ) -> tuple[str, bool]:
        obs.set_collector(self.collector)
        view = _TicketView(self.admission, ticket)
        try:
            return handle_line(
                self.engine,
                line,
                request_timeout=self.settings.request_timeout,
                reloader=self.settings.reloader,
                admission=view,
                context=self.context,
            )
        finally:
            view.release_unconsumed()

    def _run_queued(
        self, line: str, reservation: _WaitReservation
    ) -> tuple[str, bool]:
        obs.set_collector(self.collector)
        ticket = self.admission.finish_wait(reservation)
        return self._run_ticketed(line, ticket)

    # -- shutdown -------------------------------------------------------

    async def shutdown(self, drain_timeout: float) -> None:
        assert self.server is not None
        self.server.close()
        await self.server.wait_closed()
        # Idle sessions (parked in read, no request in flight) close
        # immediately; busy ones get the drain budget to answer.
        for session in list(self._sessions.values()):
            if not session.busy:
                session.writer.close()
        tasks = [s.task for s in list(self._sessions.values())]
        if tasks:
            _, pending = await asyncio.wait(
                tasks, timeout=max(0.0, drain_timeout)
            )
            for stuck in pending:
                stuck.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)

    def close_pools(self) -> None:
        for pool in (
            self._worker_pool,
            self._wait_pool,
            self._control_pool,
        ):
            pool.shutdown(wait=False, cancel_futures=True)


class AioServerHandle:
    """A running aio daemon: the same surface as ``TcpServerHandle``."""

    def __init__(
        self,
        server: _AioServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — concrete even if 0 was asked."""
        assert self._server.bound is not None
        return self._server.bound

    @property
    def port(self) -> int:
        """The bound port (ephemeral when 0 was requested)."""
        return self.address[1]

    @property
    def admission(self) -> AdmissionController:
        """The daemon's admission controller (for gauges/metrics)."""
        return self._server.admission

    @property
    def context(self) -> ServerContext:
        """The daemon's serving context (uptime epoch, access log)."""
        return self._server.context

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, stop the loop.

        Busy sessions get ``drain_timeout`` seconds for their in-flight
        request to answer; idle connections close immediately (their
        parked reads wake on the transport closing). On return the
        event loop thread has exited and the executors are shut down.
        """
        if self._stopped:
            return
        self._stopped = True
        self._server.draining.set()
        future = asyncio.run_coroutine_threadsafe(
            self._server.shutdown(drain_timeout), self._loop
        )
        try:
            future.result(timeout=drain_timeout + 5.0)
        except Exception:  # noqa: BLE001 - stop must not raise
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._thread.is_alive():
            self._loop.close()
        self._server.close_pools()
        if self._server.context.access_log is not None:
            self._server.context.access_log.close()

    def shutdown(self) -> None:
        """Alias for :meth:`stop` (kept for symmetry with the threaded
        handle)."""
        self.stop()

    def __enter__(self) -> "AioServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_tcp_aio(
    engine,
    settings: ServeSettings = ServeSettings(),
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    background: bool = False,
) -> AioServerHandle | None:
    """Serve ``repro.serve/1`` over TCP on an asyncio event loop.

    Drop-in peer of :func:`repro.serving.daemon.serve_tcp`:
    ``background=True`` returns an :class:`AioServerHandle` once the
    socket is bound; otherwise this blocks until interrupted and
    returns None. ``engine`` is anything with the
    :class:`~repro.serving.engine.QueryEngine` query surface — a
    :class:`~repro.serving.shard.ShardRouter` serves here unchanged.
    """
    server = _AioServer(engine, settings)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run_loop() -> None:
        asyncio.set_event_loop(loop)
        ready.set()
        loop.run_forever()
        # Drain loop-internal callbacks so transports close cleanly.
        loop.run_until_complete(asyncio.sleep(0))

    thread = threading.Thread(
        target=run_loop, name="ripple-aio-loop", daemon=True
    )
    thread.start()
    ready.wait()
    startup = asyncio.run_coroutine_threadsafe(
        server.startup(host, port), loop
    )
    try:
        startup.result(timeout=30.0)
    except Exception:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        server.close_pools()
        raise
    handle = AioServerHandle(server, loop, thread)
    if background:
        return handle
    try:
        threading.Event().wait()
    finally:
        handle.stop()
    return None
