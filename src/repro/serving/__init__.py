"""Query serving: the enumerator turned into a service.

Everything before this package computes; this package *answers*. The
three layers (see ``docs/serving.md`` and ``docs/architecture.md``):

* :mod:`repro.serving.index` — :class:`KvccIndex`: the all-k hierarchy
  materialised into a versioned, fingerprinted, O(1)-lookup file;
* :mod:`repro.serving.engine` — :class:`QueryEngine`: single/batched
  QkVCS answers from the index, LRU-cached, with live
  :func:`~repro.core.query.kvcc_containing` fallback above the indexed
  ceiling;
* :mod:`repro.serving.daemon` + :mod:`repro.serving.protocol` — the
  ``ripple serve`` daemon speaking line-delimited JSON over stdio or
  TCP, with per-request :class:`~repro.resilience.Deadline` budgets;
* :mod:`repro.serving.aio` — the ``asyncio`` backend of the same
  daemon: every connection multiplexed onto one event loop, admission
  decided inline, CPU work on bounded executors
  (``ripple serve --backend aio``);
* :mod:`repro.serving.shard` — scale-out: :class:`ShardSet` partitions
  the index by connected component of the shard-k-core (a k-VCC never
  spans two), :class:`ShardRouter` scatter-gathers queries over the
  shards with N read replicas each (see ``docs/scaling.md``);
* :mod:`repro.serving.admission` — :class:`AdmissionController`:
  bounded admission with per-cost-class queues and explicit load
  shedding (the ``overloaded`` protocol error);
* :mod:`repro.serving.chaos` — deterministic fault injection into the
  serving stages, extending :mod:`repro.resilience.faults`;
* :mod:`repro.serving.metrics` + :mod:`repro.serving.accesslog` +
  :mod:`repro.serving.top` — the telemetry surfaces: a Prometheus
  ``/metrics`` HTTP listener, request-scoped JSONL access logs, and
  the ``ripple top`` polling console (see ``docs/observability.md``).

Quickstart::

    from repro.serving import KvccIndex, QueryEngine

    index = KvccIndex.build(graph)
    index.save("graph.kvcc-index.json")

    engine = QueryEngine(graph, KvccIndex.load("graph.kvcc-index.json"))
    print(engine.query(vertex=7, k=3).components)
"""

from repro.serving.accesslog import AccessLog
from repro.serving.admission import AdmissionController
from repro.serving.aio import AioServerHandle, serve_tcp_aio
from repro.serving.daemon import (
    ServeSettings,
    TcpServerHandle,
    serve_stdio,
    serve_tcp,
)
from repro.serving.engine import (
    BatchDeadlineExpired,
    LRUCache,
    QueryEngine,
    QueryResult,
)
from repro.serving.index import INDEX_SCHEMA, KvccIndex, graph_fingerprint
from repro.serving.metrics import (
    MetricsServer,
    render_prometheus,
    validate_exposition,
)
from repro.serving.protocol import (
    PROTOCOL,
    ServerContext,
    error_line,
    handle_line,
    handle_request,
)
from repro.serving.shard import SHARD_SCHEMA, ShardRouter, ShardSet

__all__ = [
    "AccessLog",
    "AdmissionController",
    "AioServerHandle",
    "BatchDeadlineExpired",
    "INDEX_SCHEMA",
    "KvccIndex",
    "LRUCache",
    "MetricsServer",
    "PROTOCOL",
    "QueryEngine",
    "QueryResult",
    "SHARD_SCHEMA",
    "ServeSettings",
    "ServerContext",
    "ShardRouter",
    "ShardSet",
    "TcpServerHandle",
    "error_line",
    "graph_fingerprint",
    "handle_line",
    "handle_request",
    "render_prometheus",
    "serve_stdio",
    "serve_tcp",
    "serve_tcp_aio",
    "validate_exposition",
]
