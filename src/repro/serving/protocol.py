"""The wire protocol: line-delimited JSON requests and responses.

One request per line, one response line per request, in order — the
simplest protocol that works identically over stdio and TCP and is
scriptable with ``echo`` + ``nc``. Documented with examples in
``docs/serving.md``.

Operations (the ``"op"`` field):

* ``ping`` — liveness + protocol version;
* ``query`` — one QkVCS lookup: ``{"op": "query", "v": 7, "k": 3}``;
* ``batch`` — many lookups in one round trip:
  ``{"op": "batch", "queries": [{"v": 7, "k": 3}, …]}``;
* ``stats`` — engine/cache/index introspection plus the ``serving.*``
  counters of the daemon's collector (the load-test harness reads
  these before and after a measurement window and folds the deltas
  into its run table);
* ``reload`` — re-read the served graph from its source and hand the
  fresh copy to the engine (stale indexes rebuild on the next query);
  only available when the daemon was started with a graph path, else
  an ``unsupported-op`` error;
* ``shutdown`` — close this session (the daemon's loop ends).

Every response carries ``"ok"``; errors add ``"error"`` (a message)
and ``"code"`` (machine-readable: ``parse``, ``bad-request``,
``unknown-vertex``, ``unsupported-op``, ``deadline``, ``overloaded``,
``internal``). An ``"id"`` field, when present in a request, is echoed
verbatim so pipelined clients can match responses.

``overloaded`` is the load-shedding error: when the daemon's
:class:`~repro.serving.admission.AdmissionController` is saturated the
request is refused *immediately* instead of queueing without bound.
The response additionally carries ``"retriable": true`` and
``"retry_after_ms"`` (a backoff hint derived from the op's observed
service time and the current backlog); well-behaved clients retry
after roughly that long with jitter. Control ops (``ping``, ``stats``,
``shutdown``) bypass admission so an overloaded daemon can still be
inspected and stopped.

This module is pure request → response logic
(:func:`handle_request` / :func:`handle_line`); the socket and stdio
plumbing lives in :mod:`repro.serving.daemon`.
"""

from __future__ import annotations

import json
import time

from repro import obs
from repro.errors import ParameterError, ReproError
from repro.resilience import Deadline
from repro.serving import chaos
from repro.serving.admission import AdmissionController, cost_class
from repro.serving.engine import BatchDeadlineExpired, QueryEngine, QueryResult

__all__ = ["PROTOCOL", "error_line", "handle_line", "handle_request"]

#: Protocol identifier reported by ``ping`` and rejected-by clients on
#: incompatible changes.
PROTOCOL = "repro.serve/1"

_OPS = ("ping", "query", "batch", "stats", "reload", "shutdown")


def _sort_key(vertex) -> tuple[str, str]:
    if isinstance(vertex, int):
        return ("int", f"{vertex:024d}" if vertex >= 0 else f"-{-vertex:023d}")
    return ("str", str(vertex))


def _encode_result(result: QueryResult) -> dict:
    return {
        "v": result.vertex,
        "k": result.k,
        "components": [
            sorted(component, key=_sort_key)
            for component in result.components
        ],
        "count": len(result.components),
        "source": result.source,
    }


def _error(message: str, code: str) -> dict:
    obs.count("serving.errors")
    obs.count(f"serving.errors.{code}")
    return {"ok": False, "error": message, "code": code}


def _overloaded(klass: str, admission: AdmissionController) -> dict:
    response = _error(
        f"overloaded: no capacity for a {klass} request, retry later",
        "overloaded",
    )
    response["retriable"] = True
    response["retry_after_ms"] = admission.retry_after_ms(klass)
    return response


def _parse_query(doc: dict) -> tuple:
    if "v" not in doc:
        raise ParameterError("query needs a 'v' (vertex) field")
    k = doc.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ParameterError(f"query needs an integer 'k' >= 1, got {k!r}")
    vertex = doc["v"]
    if isinstance(vertex, bool) or not isinstance(vertex, (int, str)):
        raise ParameterError(
            f"vertex must be an int or str label, got {vertex!r}"
        )
    return vertex, k


def _serving_counters() -> dict:
    """The active collector's ``serving.*`` counters (empty under the
    no-op default collector)."""
    return {
        name: value
        for name, value in obs.get_collector().counters.items()
        if name.startswith("serving.")
    }


def handle_request(
    engine: QueryEngine,
    request: dict,
    *,
    deadline: Deadline | None = None,
    reloader=None,
    admission: AdmissionController | None = None,
) -> tuple[dict, bool]:
    """Answer one decoded request; returns ``(response, keep_serving)``.

    ``keep_serving`` is False only for ``shutdown``. The deadline
    bounds this request's live work (checked cooperatively at query
    boundaries); expiry yields a ``deadline`` error response carrying
    the completed prefix of a batch. ``reloader`` is a zero-argument
    callable returning a fresh :class:`~repro.graph.adjacency.Graph`
    for the ``reload`` op (None = the op is unsupported).

    ``admission`` is the daemon's shared
    :class:`~repro.serving.admission.AdmissionController` (None = no
    admission control, e.g. direct library use). Work-carrying ops
    (``query``/``batch``/``reload``) are classed by cost and admitted
    through it; a shed request gets the ``overloaded`` error with its
    ``retry_after_ms`` hint and the engine is never touched.
    """
    op = request.get("op")
    if op not in _OPS:
        response = _error(
            f"unsupported op {op!r} (expected one of {', '.join(_OPS)})",
            "unsupported-op",
        )
        return response, True
    obs.count("serving.requests")
    obs.count(f"serving.requests.{op}")
    ticket = None
    if admission is not None:
        klass = cost_class(request)
        if klass is not None:
            ticket = admission.admit(klass)
            if ticket is None:
                response = _overloaded(klass, admission)
                if "id" in request:
                    response["id"] = request["id"]
                return response, True
    keep_serving = True
    try:
        if op == "ping":
            response = {"ok": True, "op": "ping", "protocol": PROTOCOL}
        elif op == "stats":
            stats = engine.stats()
            if admission is not None:
                stats["admission"] = admission.stats()
            response = {
                "ok": True,
                "op": "stats",
                "stats": stats,
                "counters": _serving_counters(),
            }
        elif op == "reload":
            if reloader is None:
                response = _error(
                    "reload needs the daemon to know its graph source "
                    "(start `ripple serve` with --graph)",
                    "unsupported-op",
                )
            else:
                try:
                    graph = reloader()
                except OSError as exc:
                    response = _error(f"reload failed: {exc}", "internal")
                else:
                    engine.reload(graph)
                    response = {
                        "ok": True,
                        "op": "reload",
                        "num_vertices": graph.num_vertices,
                        "num_edges": graph.num_edges,
                    }
        elif op == "shutdown":
            response = {"ok": True, "op": "shutdown"}
            keep_serving = False
        elif op == "query":
            vertex, k = _parse_query(request)
            result = engine.query(vertex, k, deadline=deadline)
            response = {"ok": True, "op": "query", **_encode_result(result)}
        else:  # batch
            queries = request.get("queries")
            if not isinstance(queries, list):
                raise ParameterError("batch needs a 'queries' list")
            pairs = [_parse_query(q) for q in _as_dicts(queries)]
            results = engine.query_batch(pairs, deadline=deadline)
            response = {
                "ok": True,
                "op": "batch",
                "results": [_encode_result(r) for r in results],
                "count": len(results),
            }
    except BatchDeadlineExpired as exc:
        response = _error(str(exc), "deadline")
        response["results"] = [_encode_result(r) for r in exc.completed]
        response["completed"] = len(exc.completed)
        response["total"] = exc.total
    except ParameterError as exc:
        code = (
            "unknown-vertex"
            if "not in the served graph" in str(exc)
            else "bad-request"
        )
        response = _error(str(exc), code)
    except ReproError as exc:
        response = _error(str(exc), "internal")
    finally:
        if ticket is not None:
            ticket.release()
    if "id" in request:
        response["id"] = request["id"]
    return response, keep_serving


def error_line(message: str, code: str) -> str:
    """A serialised error response line, for transport-level rejections
    (e.g. the daemon refusing an oversized request line) that never
    reach :func:`handle_line`."""
    return json.dumps(_error(message, code), separators=(",", ":"))


def _as_dicts(queries: list) -> list[dict]:
    for query in queries:
        if not isinstance(query, dict):
            raise ParameterError(
                f"batch queries must be objects, got {query!r}"
            )
    return queries


def handle_line(
    engine: QueryEngine,
    line: str,
    *,
    request_timeout: float | None = None,
    reloader=None,
    admission: AdmissionController | None = None,
) -> tuple[str, bool]:
    """Decode one request line, answer it, encode one response line.

    A fresh per-request :class:`Deadline` is armed from
    ``request_timeout`` (``None`` = unbounded). Malformed JSON gets a
    ``parse`` error response instead of killing the session.

    This is also the ``serve.handle`` chaos stage: ``crash`` raises
    :class:`~repro.serving.chaos.SessionCrash` (the caller must close
    the connection without responding), ``raise`` answers an
    ``internal`` error, ``garbage`` answers an undecodable line, and
    ``hang`` stalls before handling.
    """
    line = line.strip()
    if not line:
        return "", True
    mode = chaos.draw("serve.handle")
    if mode == "crash":
        raise chaos.SessionCrash("injected crash fault at serve.handle")
    if mode == "hang":
        time.sleep(chaos.hang_seconds())
    elif mode == "raise":
        return (
            json.dumps(
                _error("injected raise fault at serve.handle", "internal"),
                separators=(",", ":"),
            ),
            True,
        )
    elif mode == "garbage":
        return '{"ok":tru', True
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
    except ValueError as exc:
        return (
            json.dumps(
                _error(f"bad request line: {exc}", "parse"),
                separators=(",", ":"),
            ),
            True,
        )
    deadline = (
        Deadline(request_timeout) if request_timeout is not None else None
    )
    response, keep_serving = handle_request(
        engine,
        request,
        deadline=deadline,
        reloader=reloader,
        admission=admission,
    )
    return json.dumps(response, separators=(",", ":")), keep_serving
