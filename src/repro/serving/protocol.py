"""The wire protocol: line-delimited JSON requests and responses.

One request per line, one response line per request, in order — the
simplest protocol that works identically over stdio and TCP and is
scriptable with ``echo`` + ``nc``. Documented with examples in
``docs/serving.md``.

Operations (the ``"op"`` field):

* ``ping`` — liveness + protocol version;
* ``query`` — one QkVCS lookup: ``{"op": "query", "v": 7, "k": 3}``;
* ``batch`` — many lookups in one round trip:
  ``{"op": "batch", "queries": [{"v": 7, "k": 3}, …]}``;
* ``stats`` — engine/cache/index introspection plus the ``serving.*``
  counters of the daemon's collector (the load-test harness reads
  these before and after a measurement window and folds the deltas
  into its run table);
* ``reload`` — re-read the served graph from its source and hand the
  fresh copy to the engine (stale indexes rebuild on the next query);
  only available when the daemon was started with a graph path, else
  an ``unsupported-op`` error;
* ``shutdown`` — close this session (the daemon's loop ends).

Every response carries ``"ok"``; errors add ``"error"`` (a message)
and ``"code"`` (machine-readable: ``parse``, ``bad-request``,
``unknown-vertex``, ``unsupported-op``, ``deadline``, ``overloaded``,
``internal``). An ``"id"`` field, when present in a request, is echoed
verbatim so pipelined clients can match responses. Separately, every
response carries ``"request_id"`` — the client's own ``"request_id"``
echoed unmodified when supplied, a server-assigned ``s-<pid>-<seq>``
otherwise — which also tags the request's engine span, chaos fault
draws, and access-log record (see :mod:`repro.serving.accesslog`).

``overloaded`` is the load-shedding error: when the daemon's
:class:`~repro.serving.admission.AdmissionController` is saturated the
request is refused *immediately* instead of queueing without bound.
The response additionally carries ``"retriable": true`` and
``"retry_after_ms"`` (a backoff hint derived from the op's observed
service time and the current backlog); well-behaved clients retry
after roughly that long with jitter. Control ops (``ping``, ``stats``,
``shutdown``) bypass admission so an overloaded daemon can still be
inspected and stopped.

This module is pure request → response logic
(:func:`handle_request` / :func:`handle_line`); the socket and stdio
plumbing lives in :mod:`repro.serving.daemon`.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ParameterError, ReproError
from repro.obs.histogram import Histogram
from repro.resilience import Deadline
from repro.serving import chaos
from repro.serving.accesslog import AccessLog
from repro.serving.admission import AdmissionController, cost_class
from repro.serving.engine import BatchDeadlineExpired, QueryEngine, QueryResult

__all__ = [
    "PROTOCOL",
    "ServerContext",
    "error_line",
    "handle_line",
    "handle_request",
    "latency_summaries",
]

#: Protocol identifier reported by ``ping`` and rejected-by clients on
#: incompatible changes.
PROTOCOL = "repro.serve/1"

_OPS = ("ping", "query", "batch", "stats", "reload", "shutdown")

#: Histogram families summarised by the ``stats`` op (each family's
#: per-class members — ``serving.handle_seconds.point`` etc. — are
#: merged into one family-wide distribution before deriving p50/95/99).
_LATENCY_FAMILIES = (
    "serving.handle_seconds",
    "serving.queue_wait_seconds",
    "serving.service_seconds",
    "serving.resolve_seconds",
)

#: Server-assigned request-id sequence: unique within a daemon process,
#: prefixed with the pid so ids from a restarted daemon never collide
#: in a shared access log.
_REQUEST_SEQUENCE = itertools.count(1)


def _new_request_id() -> str:
    return f"s-{os.getpid():x}-{next(_REQUEST_SEQUENCE):06d}"


@dataclass
class ServerContext:
    """Per-daemon serving state threaded into request handling.

    ``started_at`` (monotonic) backs the ``stats`` op's ``uptime_s``;
    ``access_log`` (optional) receives one record per request line.
    The daemon frontends (:func:`repro.serving.daemon.serve_stdio` /
    ``serve_tcp``) create one and own the access log's lifetime.
    """

    started_at: float = field(default_factory=time.monotonic)
    access_log: AccessLog | None = None

    def uptime_s(self) -> float:
        return time.monotonic() - self.started_at


def _sort_key(vertex) -> tuple[str, str]:
    if isinstance(vertex, int):
        return ("int", f"{vertex:024d}" if vertex >= 0 else f"-{-vertex:023d}")
    return ("str", str(vertex))


def _encode_result(result: QueryResult) -> dict:
    return {
        "v": result.vertex,
        "k": result.k,
        "components": [
            sorted(component, key=_sort_key)
            for component in result.components
        ],
        "count": len(result.components),
        "source": result.source,
    }


def _error(message: str, code: str) -> dict:
    obs.count("serving.errors")
    obs.count(f"serving.errors.{code}")
    return {"ok": False, "error": message, "code": code}


def _overloaded(klass: str, admission: AdmissionController) -> dict:
    response = _error(
        f"overloaded: no capacity for a {klass} request, retry later",
        "overloaded",
    )
    response["retriable"] = True
    response["retry_after_ms"] = admission.retry_after_ms(klass)
    return response


def _parse_query(doc: dict) -> tuple:
    if "v" not in doc:
        raise ParameterError("query needs a 'v' (vertex) field")
    k = doc.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ParameterError(f"query needs an integer 'k' >= 1, got {k!r}")
    vertex = doc["v"]
    if isinstance(vertex, bool) or not isinstance(vertex, (int, str)):
        raise ParameterError(
            f"vertex must be an int or str label, got {vertex!r}"
        )
    return vertex, k


def _serving_counters() -> dict:
    """The active collector's ``serving.*`` counters (empty under the
    no-op default collector)."""
    return {
        name: value
        for name, value in obs.get_collector().counters.items()
        if name.startswith("serving.")
    }


def latency_summaries(collector) -> dict:
    """Family-wide p50/p95/p99 summaries from a collector's histograms.

    Merges each ``serving.*_seconds`` family's per-class histograms
    into one distribution and derives quantiles server-side, so a
    ``stats`` caller (or ``ripple top``) gets tails without shipping
    raw buckets.
    """
    snapshots = collector.histogram_snapshots()
    summaries = {}
    for family in _LATENCY_FAMILIES:
        merged = Histogram()
        prefix = family + "."
        for name, snapshot in snapshots.items():
            if name == family or name.startswith(prefix):
                merged.merge(snapshot)
        if not merged.is_empty():
            summaries[family] = merged.summary()
    return summaries


def _respond(response: dict, request: dict, request_id, log: dict) -> dict:
    """Stamp the id fields and derive the access-log outcome/tier."""
    if "id" in request:
        response["id"] = request["id"]
    if request_id is not None:
        response["request_id"] = request_id
    log["outcome"] = (
        "ok" if response.get("ok") else response.get("code", "error")
    )
    if response.get("op") == "query" and "source" in response:
        log["tier"] = response["source"]
    elif response.get("op") == "batch" or "results" in response:
        tiers: dict[str, int] = {}
        for result in response.get("results") or ():
            source = result.get("source")
            if source:
                tiers[source] = tiers.get(source, 0) + 1
        if tiers:
            log["tier"] = tiers
    return response


def handle_request(
    engine: QueryEngine,
    request: dict,
    *,
    deadline: Deadline | None = None,
    reloader=None,
    admission: AdmissionController | None = None,
    request_id=None,
    log: dict | None = None,
    context: ServerContext | None = None,
) -> tuple[dict, bool]:
    """Answer one decoded request; returns ``(response, keep_serving)``.

    ``keep_serving`` is False only for ``shutdown``. The deadline
    bounds this request's live work (checked cooperatively at query
    boundaries); expiry yields a ``deadline`` error response carrying
    the completed prefix of a batch. ``reloader`` is a zero-argument
    callable returning a fresh :class:`~repro.graph.adjacency.Graph`
    for the ``reload`` op (None = the op is unsupported).

    ``admission`` is the daemon's shared
    :class:`~repro.serving.admission.AdmissionController` (None = no
    admission control, e.g. direct library use). Work-carrying ops
    (``query``/``batch``/``reload``) are classed by cost and admitted
    through it; a shed request gets the ``overloaded`` error with its
    ``retry_after_ms`` hint and the engine is never touched.

    ``request_id`` is echoed in every response (including errors and
    sheds) under ``"request_id"``; when None, a client-supplied
    ``"request_id"`` field round-trips unmodified. ``log`` (optional)
    is filled in place with the access-log fields of this request —
    op, class, queue_ms, service_ms, outcome, tier, shed — for
    :func:`handle_line` to emit. ``context`` carries daemon-scoped
    state (uptime for ``stats``, the access log).
    """
    if log is None:
        log = {}
    if request_id is None:
        request_id = request.get("request_id")
    op = request.get("op")
    klass = cost_class(request)
    log["op"] = op if isinstance(op, str) else None
    log["class"] = klass or "control"
    if op not in _OPS:
        response = _error(
            f"unsupported op {op!r} (expected one of {', '.join(_OPS)})",
            "unsupported-op",
        )
        return _respond(response, request, request_id, log), True
    obs.count("serving.requests")
    obs.count(f"serving.requests.{op}")
    ticket = None
    if admission is not None and klass is not None:
        ticket = admission.admit(klass)
        if ticket is None:
            response = _overloaded(klass, admission)
            log["shed"] = f"queue-full:{klass}"
            return _respond(response, request, request_id, log), True
        log["queue_ms"] = round(ticket.queued_s * 1000.0, 3)
    keep_serving = True
    service_started = time.perf_counter()
    try:
        if op == "ping":
            response = {"ok": True, "op": "ping", "protocol": PROTOCOL}
        elif op == "stats":
            response = _stats_response(engine, request, admission, context)
        elif op == "reload":
            if reloader is None:
                response = _error(
                    "reload needs the daemon to know its graph source "
                    "(start `ripple serve` with --graph)",
                    "unsupported-op",
                )
            else:
                try:
                    graph = reloader()
                except OSError as exc:
                    response = _error(f"reload failed: {exc}", "internal")
                else:
                    engine.reload(graph)
                    response = {
                        "ok": True,
                        "op": "reload",
                        "num_vertices": graph.num_vertices,
                        "num_edges": graph.num_edges,
                    }
        elif op == "shutdown":
            response = {"ok": True, "op": "shutdown"}
            keep_serving = False
        elif op == "query":
            vertex, k = _parse_query(request)
            result = engine.query(
                vertex, k, deadline=deadline, request_id=request_id
            )
            response = {"ok": True, "op": "query", **_encode_result(result)}
        else:  # batch
            queries = request.get("queries")
            if not isinstance(queries, list):
                raise ParameterError("batch needs a 'queries' list")
            pairs = [_parse_query(q) for q in _as_dicts(queries)]
            results = engine.query_batch(
                pairs, deadline=deadline, request_id=request_id
            )
            response = {
                "ok": True,
                "op": "batch",
                "results": [_encode_result(r) for r in results],
                "count": len(results),
            }
    except BatchDeadlineExpired as exc:
        response = _error(str(exc), "deadline")
        response["results"] = [_encode_result(r) for r in exc.completed]
        response["completed"] = len(exc.completed)
        response["total"] = exc.total
    except ParameterError as exc:
        code = (
            "unknown-vertex"
            if "not in the served graph" in str(exc)
            else "bad-request"
        )
        response = _error(str(exc), code)
    except ReproError as exc:
        response = _error(str(exc), "internal")
    finally:
        log["service_ms"] = round(
            (time.perf_counter() - service_started) * 1000.0, 3
        )
        if ticket is not None:
            ticket.release()
    return _respond(response, request, request_id, log), keep_serving


def _stats_response(
    engine: QueryEngine,
    request: dict,
    admission: AdmissionController | None,
    context: ServerContext | None,
) -> dict:
    """The enriched ``stats`` payload (histograms, tails, gauges).

    ``{"op": "stats", "reset": true}`` additionally zeroes the
    window-scoped histograms *after* snapshotting them, so the
    response reports the closing window while lifetime counters keep
    accumulating — the read-and-reset shape a polling dashboard wants.
    """
    stats = engine.stats()
    if admission is not None:
        stats["admission"] = admission.stats()
    collector = obs.get_collector()
    histograms = {
        name: snapshot
        for name, snapshot in collector.histogram_snapshots().items()
        if name.startswith("serving.")
    }
    gauges: dict = {}
    if admission is not None:
        admission_stats = stats["admission"]
        gauges = {
            "queue_depth": admission_stats["queue_depth"],
            "in_service": admission_stats["in_service"],
            "slots_free": admission_stats["slots_free"],
        }
    if stats.get("shards"):
        # A ShardRouter is serving: surface its per-shard gauge rows
        # (queue depth, in-service, p95) for `ripple top` and dashboards.
        gauges["shards"] = stats["shards"]
    response = {
        "ok": True,
        "op": "stats",
        "protocol": PROTOCOL,
        "generation": engine.version,
        "stats": stats,
        "counters": _serving_counters(),
        "histograms": histograms,
        "latency": latency_summaries(collector),
        "gauges": gauges,
    }
    if context is not None:
        response["uptime_s"] = round(context.uptime_s(), 3)
    if request.get("reset"):
        collector.reset_histograms()
        response["reset"] = True
    return response


def error_line(message: str, code: str, *, request_id=None) -> str:
    """A serialised error response line, for transport-level rejections
    (e.g. the daemon refusing an oversized request line) that never
    reach :func:`handle_line`. A fresh server id is assigned when none
    is given, so even transport rejections are joinable to the access
    log."""
    response = _error(message, code)
    response["request_id"] = (
        request_id if request_id is not None else _new_request_id()
    )
    return json.dumps(response, separators=(",", ":"))


def _as_dicts(queries: list) -> list[dict]:
    for query in queries:
        if not isinstance(query, dict):
            raise ParameterError(
                f"batch queries must be objects, got {query!r}"
            )
    return queries


def _log_access(
    context: ServerContext | None,
    log: dict,
    *,
    started: float,
    **extra,
) -> None:
    """Emit one access-log record (no-op without a configured log)."""
    if context is None or context.access_log is None:
        return
    record = dict(log)
    record.update(extra)
    record["handle_ms"] = round(
        (time.perf_counter() - started) * 1000.0, 3
    )
    context.access_log.write(record)


def handle_line(
    engine: QueryEngine,
    line: str,
    *,
    request_timeout: float | None = None,
    reloader=None,
    admission: AdmissionController | None = None,
    context: ServerContext | None = None,
) -> tuple[str, bool]:
    """Decode one request line, answer it, encode one response line.

    A fresh per-request :class:`Deadline` is armed from
    ``request_timeout`` (``None`` = unbounded). Malformed JSON gets a
    ``parse`` error response instead of killing the session.

    Every line is assigned a ``request_id`` here — the client's own
    ``"request_id"`` field when it sent one (echoed verbatim,
    whatever its type), a fresh ``s-<pid>-<seq>`` otherwise — and the
    id rides the response, the engine's resolution span, any chaos
    fault draw, and the access-log record. End-to-end handle time
    lands in the ``serving.handle_seconds.<class>`` histogram
    (``control`` for admission-bypassing ops and unparseable lines).

    This is also the ``serve.handle`` chaos stage: ``crash`` raises
    :class:`~repro.serving.chaos.SessionCrash` (the caller must close
    the connection without responding), ``raise`` answers an
    ``internal`` error, ``garbage`` answers an undecodable line, and
    ``hang`` stalls before handling. Crash and garbage faults still
    leave an access-log record — the whole point of the log is joining
    client-visible weirdness to its server-side cause.
    """
    line = line.strip()
    if not line:
        return "", True
    started = time.perf_counter()
    parse_failure = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
    except ValueError as exc:
        request = None
        parse_failure = exc
    request_id = (
        request.get("request_id") if request is not None else None
    )
    if request_id is None:
        request_id = _new_request_id()
    log: dict = {"request_id": request_id}
    mode = chaos.draw("serve.handle", request_id=request_id)
    if mode == "crash":
        _log_access(
            context, log, started=started, outcome="crash", fault="crash"
        )
        raise chaos.SessionCrash("injected crash fault at serve.handle")
    if mode == "hang":
        time.sleep(chaos.hang_seconds())
    elif mode == "raise":
        response = _error("injected raise fault at serve.handle", "internal")
        response["request_id"] = request_id
        _log_access(
            context, log, started=started, outcome="internal", fault="raise"
        )
        return json.dumps(response, separators=(",", ":")), True
    elif mode == "garbage":
        _log_access(
            context, log, started=started, outcome="garbage", fault="garbage"
        )
        return '{"ok":tru', True
    if request is None:
        response = _error(f"bad request line: {parse_failure}", "parse")
        response["request_id"] = request_id
        obs.observe(
            "serving.handle_seconds.control",
            time.perf_counter() - started,
        )
        _log_access(
            context, log, started=started, op=None,
            **{"class": "control", "outcome": "parse"},
        )
        return json.dumps(response, separators=(",", ":")), True
    deadline = (
        Deadline(request_timeout) if request_timeout is not None else None
    )
    response, keep_serving = handle_request(
        engine,
        request,
        deadline=deadline,
        reloader=reloader,
        admission=admission,
        request_id=request_id,
        log=log,
        context=context,
    )
    obs.observe(
        f"serving.handle_seconds.{log.get('class') or 'control'}",
        time.perf_counter() - started,
    )
    _log_access(context, log, started=started)
    return json.dumps(response, separators=(",", ":")), keep_serving
