"""The persistent k-VCC index: the hierarchy, materialised and versioned.

k-VCCs nest (every (k+1)-VCC lies inside a k-VCC), so the full
:func:`repro.core.hierarchy.kvcc_hierarchy` decomposition is the
natural precomputable answer store for per-vertex connectivity queries
— the same observation behind Wen et al.'s top-down enumeration and
Chang's hierarchical decompositions. A :class:`KvccIndex` freezes one
decomposition into an O(1)-lookup structure:

* ``vertex → {k: component ids}`` membership, covering overlap
  vertices that belong to several k-VCCs of the same level;
* a **fingerprint** of the graph it was built from, so a stale index
  is detected instead of silently serving wrong answers;
* a **ceiling**: the largest indexed k. An index built without a
  ``max_k`` cap is *complete* — above the ceiling there are provably
  no components, so any k is answerable. A capped index answers
  ``k <= max_k`` and reports everything above as uncovered, which the
  query engine resolves with a live :func:`repro.core.query.kvcc_containing`
  call.

Serialisation is a canonical, versioned JSON document
(``repro.kvcc-index/1``): key order, member order, and separators are
fixed, so ``save → load → save`` is byte-identical and index files
diff cleanly. The format is documented in ``docs/serving.md``.

Durability: the document embeds a sha256 ``checksum`` over its core
payload, :meth:`KvccIndex.save` is atomic (temp file + fsync +
``os.replace``, so a crash mid-save leaves the previous file intact),
and :meth:`KvccIndex.load` *quarantines* torn or corrupt files by
renaming them to ``<path>.corrupt`` and raising
:class:`~repro.errors.IndexCorruptionError` — a daemon restarting onto
bad state degrades to a live rebuild instead of crash-looping on the
same unreadable file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from collections.abc import Hashable

from repro import obs
from repro.core.hierarchy import kvcc_hierarchy
from repro.errors import IndexCorruptionError, ParameterError, ParseError
from repro.graph.adjacency import Graph
from repro.resilience.faults import FaultInjected
from repro.serving import chaos

__all__ = ["INDEX_SCHEMA", "KvccIndex", "graph_fingerprint"]

#: Schema identifier embedded in every index file; bumped on layout
#: changes so old files are rejected instead of misread.
INDEX_SCHEMA = "repro.kvcc-index/1"


def _check_label(vertex: Hashable) -> Hashable:
    """Index files are JSON; only int and str labels survive a round trip."""
    if isinstance(vertex, bool) or not isinstance(vertex, (int, str)):
        raise ParameterError(
            f"indexable graphs need int or str vertex labels, "
            f"got {vertex!r} ({type(vertex).__name__})"
        )
    return vertex


def _label_key(vertex: Hashable) -> tuple[str, str]:
    """A total order over mixed int/str labels (ints before strs,
    ints numerically, strs lexicographically)."""
    if isinstance(vertex, int):
        return ("int", f"{vertex:024d}" if vertex >= 0 else f"-{-vertex:023d}")
    return ("str", str(vertex))


def graph_fingerprint(graph: Graph) -> str:
    """A deterministic hex digest of the graph's exact structure.

    Hashes the canonical sorted edge list plus the sorted vertex list
    (so isolated vertices count too). Two graphs share a fingerprint
    iff they have identical vertex and edge sets — the staleness test
    behind :meth:`KvccIndex.is_stale`.
    """
    digest = hashlib.sha256()
    for vertex in sorted(graph.vertices(), key=_label_key):
        digest.update(json.dumps(_check_label(vertex)).encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    edges = sorted(
        tuple(sorted((u, v), key=_label_key)) for u, v in graph.edges()
    )
    for u, v in edges:
        digest.update(json.dumps([u, v]).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _payload_checksum(core: dict) -> str:
    """sha256 hex digest of a core payload's canonical JSON bytes."""
    serialised = json.dumps(core, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(serialised.encode("utf-8")).hexdigest()


class KvccIndex:
    """An immutable, serialisable k-VCC hierarchy with O(1) membership.

    Build one with :meth:`build`, persist it with :meth:`save`, and
    reload it with :meth:`load`; answer queries with :meth:`containing`
    (all k-VCCs of a vertex at level k) after checking :meth:`covers`.
    """

    __slots__ = (
        "_fingerprint",
        "_levels",
        "_max_k",
        "_membership",
        "_num_edges",
        "_num_vertices",
        "_vertices",
    )

    def __init__(
        self,
        fingerprint: str,
        levels: dict[int, list[frozenset]],
        vertices: frozenset,
        *,
        max_k: int | None,
        num_vertices: int,
        num_edges: int,
    ) -> None:
        self._fingerprint = fingerprint
        self._levels = {
            k: tuple(levels[k]) for k in sorted(levels)
        }
        self._vertices = vertices
        self._max_k = max_k
        self._num_vertices = num_vertices
        self._num_edges = num_edges
        # vertex -> {k: (component positions, ascending)}: the O(1)
        # lookup table; overlap vertices get several positions per k.
        membership: dict[Hashable, dict[int, tuple[int, ...]]] = {}
        for k, components in self._levels.items():
            for position, component in enumerate(components):
                for vertex in component:
                    slots = membership.setdefault(vertex, {})
                    slots[k] = slots.get(k, ()) + (position,)
        self._membership = membership

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, graph: Graph, max_k: int | None = None) -> "KvccIndex":
        """Materialise the hierarchy of ``graph`` into an index.

        ``max_k`` caps the indexed ceiling (queries above it fall back
        to live enumeration in the query engine); ``None`` indexes to
        natural exhaustion, making the index *complete*.
        """
        if max_k is not None and max_k < 1:
            raise ParameterError(f"max_k must be >= 1, got {max_k}")
        for vertex in graph.vertices():
            _check_label(vertex)
        with obs.start_span("serving.index.build", max_k=max_k):
            levels = kvcc_hierarchy(graph, max_k=max_k)
            index = cls(
                graph_fingerprint(graph),
                levels,
                frozenset(graph.vertices()),
                max_k=max_k,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
            )
        obs.count("serving.index.builds")
        obs.count(
            "serving.index.components",
            sum(len(components) for components in levels.values()),
        )
        return index

    # -- basic facts ---------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """The source graph's :func:`graph_fingerprint`."""
        return self._fingerprint

    @property
    def max_k(self) -> int | None:
        """The build-time cap (``None`` = built to exhaustion)."""
        return self._max_k

    @property
    def ceiling(self) -> int:
        """The largest k with indexed components (0 for empty graphs)."""
        return max(self._levels, default=0)

    @property
    def complete(self) -> bool:
        """Whether every k is answerable from the index alone.

        True when the hierarchy was built to natural exhaustion: above
        the ceiling there are provably no k-VCCs, so the exact answer
        for any higher k is "none".
        """
        return self._max_k is None or self.ceiling < self._max_k

    @property
    def levels(self) -> dict[int, tuple[frozenset, ...]]:
        """Level → components, exactly as :func:`kvcc_hierarchy` orders them."""
        return dict(self._levels)

    @property
    def vertices(self) -> frozenset:
        """The indexed graph's full vertex set (isolated vertices included)."""
        return self._vertices

    @property
    def num_vertices(self) -> int:
        """``|V|`` of the indexed graph."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """``|E|`` of the indexed graph."""
        return self._num_edges

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KvccIndex(n={self._num_vertices}, m={self._num_edges}, "
            f"ceiling={self.ceiling}, complete={self.complete})"
        )

    # -- queries -------------------------------------------------------

    def covers(self, k: int) -> bool:
        """Whether level ``k`` is answerable from the index alone."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        return k <= self.ceiling or self.complete

    def components_at(self, k: int) -> tuple[frozenset, ...]:
        """Every k-VCC at level ``k`` (empty above the ceiling)."""
        if not self.covers(k):
            raise ParameterError(
                f"k={k} is above the indexed ceiling "
                f"({self.ceiling}, capped at max_k={self._max_k})"
            )
        return self._levels.get(k, ())

    def containing(self, vertex: Hashable, k: int) -> tuple[frozenset, ...]:
        """All k-VCCs at level ``k`` containing ``vertex`` (maybe several:
        distinct k-VCCs overlap in up to k-1 vertices).

        Raises :class:`ParameterError` for vertices outside the indexed
        graph and for k above an incomplete index's ceiling.
        """
        if not self.covers(k):
            raise ParameterError(
                f"k={k} is above the indexed ceiling "
                f"({self.ceiling}, capped at max_k={self._max_k})"
            )
        if vertex not in self._vertices:
            raise ParameterError(f"vertex {vertex!r} not in indexed graph")
        positions = self._membership.get(vertex, {}).get(k, ())
        components = self._levels.get(k, ())
        return tuple(components[i] for i in positions)

    def membership_levels(self) -> dict[Hashable, int]:
        """Per-vertex deepest level, like
        :func:`repro.core.hierarchy.membership_levels` but from the index."""
        depth = {u: 0 for u in self._vertices}
        for k in sorted(self._levels):
            for component in self._levels[k]:
                for u in component:
                    depth[u] = k
        return depth

    def is_stale(self, graph: Graph) -> bool:
        """Whether ``graph`` no longer matches the indexed fingerprint."""
        return graph_fingerprint(graph) != self._fingerprint

    # -- serialisation -------------------------------------------------

    def _core_payload(self) -> dict:
        """The checksummed part of the document, in canonical key order."""
        return {
            "schema": INDEX_SCHEMA,
            "fingerprint": self._fingerprint,
            "max_k": self._max_k,
            "ceiling": self.ceiling,
            "complete": self.complete,
            "num_vertices": self._num_vertices,
            "num_edges": self._num_edges,
            "vertices": sorted(self._vertices, key=_label_key),
            "levels": {
                str(k): [
                    sorted(component, key=_label_key)
                    for component in components
                ]
                for k, components in self._levels.items()
            },
        }

    def to_json(self) -> str:
        """Canonical ``repro.kvcc-index/1`` document (stable bytes).

        ``checksum`` is the sha256 hex digest of the canonical JSON of
        everything *except* the checksum itself — a torn or bit-flipped
        file is detected at load time instead of served as answers.
        """
        core = self._core_payload()
        checksum = _payload_checksum(core)
        document = {"schema": core["schema"], "checksum": checksum}
        document.update(
            (key, value) for key, value in core.items() if key != "schema"
        )
        return json.dumps(document, separators=(",", ":"), sort_keys=False)

    @classmethod
    def from_json(cls, document: str) -> "KvccIndex":
        """Rebuild an index from :meth:`to_json` output.

        Raises :class:`repro.errors.ParseError` on malformed documents,
        unknown schemas, and membership/count inconsistencies.
        """
        try:
            payload = json.loads(document)
            if payload.get("schema") != INDEX_SCHEMA:
                raise ValueError(
                    f"unknown schema {payload.get('schema')!r}, "
                    f"expected {INDEX_SCHEMA!r}"
                )
            if "checksum" in payload:
                core = {
                    key: payload[key]
                    for key in (
                        "schema",
                        "fingerprint",
                        "max_k",
                        "ceiling",
                        "complete",
                        "num_vertices",
                        "num_edges",
                        "vertices",
                        "levels",
                    )
                }
                expected = _payload_checksum(core)
                if payload["checksum"] != expected:
                    raise ValueError(
                        f"checksum mismatch: document says "
                        f"{payload['checksum']!r}, payload hashes to "
                        f"{expected!r}"
                    )
            vertices = frozenset(
                _check_label(v) for v in payload["vertices"]
            )
            levels = {
                int(k): [frozenset(members) for members in components]
                for k, components in payload["levels"].items()
            }
            index = cls(
                str(payload["fingerprint"]),
                levels,
                vertices,
                max_k=(
                    None if payload["max_k"] is None
                    else int(payload["max_k"])
                ),
                num_vertices=int(payload["num_vertices"]),
                num_edges=int(payload["num_edges"]),
            )
            if index.ceiling != int(payload["ceiling"]):
                raise ValueError(
                    f"ceiling {payload['ceiling']} does not match "
                    f"levels (computed {index.ceiling})"
                )
            if len(vertices) != index.num_vertices:
                raise ValueError(
                    f"num_vertices {index.num_vertices} does not match "
                    f"vertex list ({len(vertices)})"
                )
            for k, components in index.levels.items():
                for component in components:
                    if not component <= vertices:
                        raise ValueError(
                            f"level {k} component mentions vertices "
                            f"outside the vertex list"
                        )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ParseError(
                f"not a valid {INDEX_SCHEMA} document: {exc}"
            ) from exc
        return index

    def save(self, path: str | os.PathLike) -> None:
        """Atomically write the canonical document to ``path``.

        The document lands in a same-directory temp file, is fsynced,
        and is moved into place with ``os.replace`` — so a crash (even
        SIGKILL) at any instant leaves either the complete old file or
        the complete new one, never a torn mixture. Stray ``.tmp``
        files from killed saves are inert and may be deleted.
        """
        document = self.to_json() + "\n"
        payload = document.encode("utf-8")
        path = os.fspath(path)
        mode = chaos.draw("index.save")
        if mode == "raise":
            raise FaultInjected("injected raise fault at index.save")
        if mode == "garbage":
            # Corrupt the payload but still place it atomically: the
            # file is whole at the filesystem level yet fails its
            # checksum, exercising the quarantine path on next load.
            payload = payload[: len(payload) // 2] + b'"bitrot"}\n'
        directory = os.path.dirname(path) or "."
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory,
            prefix=os.path.basename(path) + ".",
            suffix=".tmp",
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                if mode == "crash":
                    # A hard kill mid-write: half the bytes reach the
                    # temp file, the target is never touched.
                    handle.write(payload[: len(payload) // 2])
                    handle.flush()
                    os.fsync(handle.fileno())
                    os._exit(1)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            if mode == "hang":
                time.sleep(chaos.hang_seconds())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        # Persist the rename itself; best-effort — not every platform
        # or filesystem lets us fsync a directory.
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)
        obs.count("serving.index.saves")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "KvccIndex":
        """Read an index saved by :meth:`save`.

        A file that fails parsing or its checksum is *quarantined*:
        renamed to ``<path>.corrupt`` (so the next startup does not
        trip over it again) and reported via
        :class:`~repro.errors.IndexCorruptionError`. A missing file
        raises plain :class:`FileNotFoundError` — absence is not
        corruption.
        """
        path = os.fspath(path)
        mode = chaos.draw("index.load")
        if mode == "hang":
            time.sleep(chaos.hang_seconds())
        elif mode == "crash":
            os._exit(1)
        elif mode == "raise":
            raise FaultInjected("injected raise fault at index.load")
        elif mode == "garbage":
            # Simulated integrity failure: report corruption without
            # quarantining the (actually intact) file on disk.
            raise IndexCorruptionError(
                f"injected integrity failure loading {path}",
                quarantine=None,
            )
        with open(path, encoding="utf-8") as handle:
            document = handle.read()
        try:
            index = cls.from_json(document)
        except ParseError as exc:
            quarantine: str | None = f"{path}.corrupt"
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantine = None
            obs.count("serving.index.quarantined")
            raise IndexCorruptionError(
                f"corrupt index at {path}: {exc}", quarantine=quarantine
            ) from exc
        obs.count("serving.index.loads")
        return index
