"""Admission control and load shedding for the serve daemon.

The daemon used to cap concurrency with a bare worker semaphore:
requests past the cap queued *unboundedly* at the semaphore, so past
saturation every client's latency climbed while the daemon silently
fell further behind (the PR-6 load harness measured exactly this — 45
achieved at 50 offered, nothing shed, everything slow). An
:class:`AdmissionController` replaces the semaphore with an explicit
policy:

* up to ``workers`` requests execute concurrently;
* up to ``max_queue`` more may *wait*, partitioned by **cost class**
  so one expensive class cannot starve the others — a reload storm
  queues at most one reload while point queries keep flowing;
* everything beyond the bound is **shed**: the caller gets an
  ``overloaded`` protocol error with ``retriable: true`` and a
  ``retry_after_ms`` hint derived from the queue depth and the
  class's observed (EWMA) service time, instead of an unbounded wait.

Cost classes (derived from the decoded request, see
:func:`cost_class`):

``point``
    ``query`` — one lookup; the cheapest admitted class.
``batch``
    ``batch`` — ``len(queries)`` lookups in one request.
``scan``
    the batch shape every query of which targets one vertex (the
    load-test ``scan`` kind: a whole-hierarchy sweep).
``reload``
    ``reload`` — re-read + possible full index rebuild; the expensive
    storm-shaped class.

``ping``/``stats``/``shutdown`` are control-plane ops and bypass
admission entirely (an operator must be able to ask an overloaded
daemon for its stats).

Shed policies (``--shed-policy``):

``bounded``
    The default described above.
``strict``
    No waiting at all: shed whenever every worker is busy
    (``max_queue`` is treated as 0).
``block``
    The legacy semaphore behaviour: never shed, queue without bound.
    Kept for A/B comparison against the PR-6 baseline.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.errors import ParameterError

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "COST_CLASSES",
    "SHED_POLICIES",
    "cost_class",
]

COST_CLASSES = ("point", "batch", "scan", "reload")
SHED_POLICIES = ("bounded", "strict", "block")

#: Fallback per-request service-time guess (seconds) before the first
#: completion of a class has seeded its EWMA.
_DEFAULT_SERVICE_S = {
    "point": 0.002,
    "batch": 0.010,
    "scan": 0.010,
    "reload": 0.100,
}

#: EWMA smoothing for observed service times.
_ALPHA = 0.2

#: ``retry_after_ms`` clamp: long enough to matter, short enough that
#: honest clients retry within the run that shed them.
_RETRY_AFTER_MIN_MS = 10.0
_RETRY_AFTER_MAX_MS = 5000.0


def cost_class(request: dict) -> str | None:
    """The admission class of a decoded request (None = control op)."""
    op = request.get("op")
    if op == "query":
        return "point"
    if op == "reload":
        return "reload"
    if op == "batch":
        queries = request.get("queries")
        if isinstance(queries, list) and len(queries) > 1:
            first = queries[0].get("v") if isinstance(queries[0], dict) else None
            if first is not None and all(
                isinstance(q, dict) and q.get("v") == first for q in queries
            ):
                return "scan"
        return "batch"
    return None


class AdmissionTicket:
    """One admitted request's slot: release it via ``with`` so the
    controller can free the worker and fold the observed service time
    into the class's EWMA."""

    __slots__ = (
        "_controller",
        "_cost_class",
        "_queued_s",
        "_released",
        "_started",
    )

    def __init__(
        self,
        controller: "AdmissionController",
        klass: str,
        *,
        queued_s: float = 0.0,
    ) -> None:
        self._controller = controller
        self._cost_class = klass
        self._queued_s = queued_s
        self._started = time.monotonic()
        self._released = False

    @property
    def cost_class(self) -> str:
        return self._cost_class

    @property
    def queued_s(self) -> float:
        """Seconds this request waited in the admission queue (0.0 for
        an immediate admit); surfaced in the access log as queue_ms."""
        return self._queued_s

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(
                self._cost_class, time.monotonic() - self._started
            )

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class _WaitReservation:
    """A reserved (but not yet redeemed) queue slot.

    Returned by :meth:`AdmissionController.admit_nowait` when the
    request must wait: the waiter count was already incremented under
    the admission lock, so the shed bound holds even before anyone
    blocks. Redeem with :meth:`AdmissionController.finish_wait` on
    whichever thread may block."""

    __slots__ = ("klass", "queued_at")

    def __init__(self, klass: str, queued_at: float) -> None:
        self.klass = klass
        self.queued_at = queued_at


class AdmissionController:
    """Bounded admission with per-class queue partitions (module doc)."""

    def __init__(
        self,
        *,
        workers: int = 4,
        max_queue: int = 32,
        shed_policy: str = "bounded",
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if max_queue < 0:
            raise ParameterError(f"max_queue must be >= 0, got {max_queue}")
        if shed_policy not in SHED_POLICIES:
            raise ParameterError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        self.workers = workers
        self.max_queue = 0 if shed_policy == "strict" else max_queue
        self.shed_policy = shed_policy
        self._lock = threading.Lock()
        self._slots_free = workers
        self._waiters: dict[str, int] = dict.fromkeys(COST_CLASSES, 0)
        self._in_service: dict[str, int] = dict.fromkeys(COST_CLASSES, 0)
        self._service_ewma_s = dict(_DEFAULT_SERVICE_S)
        self._condition = threading.Condition(self._lock)
        # Per-class waiting caps: the whole bound for points, half for
        # the multi-query shapes, exactly one for reloads — a reload
        # storm can occupy one worker and one queue slot, never more.
        self._class_caps = {
            "point": self.max_queue,
            "batch": max(1, self.max_queue // 2) if self.max_queue else 0,
            "scan": max(1, self.max_queue // 2) if self.max_queue else 0,
            "reload": min(1, self.max_queue),
        }

    # -- admission ------------------------------------------------------

    def admit(self, klass: str) -> AdmissionTicket | None:
        """Admit a request of ``klass`` or shed it (``None``).

        Admission may block while the request holds a (bounded) queue
        slot; by construction at most ``max_queue`` requests are ever
        blocked here. ``block`` policy never sheds.
        """
        outcome = self.admit_nowait(klass)
        if isinstance(outcome, _WaitReservation):
            return self.finish_wait(outcome)
        return outcome

    def admit_nowait(
        self, klass: str
    ) -> "AdmissionTicket | _WaitReservation | None":
        """The non-blocking admission decision, in one lock hold.

        Three outcomes: an :class:`AdmissionTicket` (a worker slot was
        free — admitted immediately), ``None`` (shed: the queue bound
        or the class cap is full), or a :class:`_WaitReservation` — a
        *reserved queue slot* the caller must redeem with
        :meth:`finish_wait` (which blocks) or nothing holds it open.
        The split lets an event loop decide admission inline and park
        only the genuinely-queued requests on waiter threads; blocking
        callers use :meth:`admit`, which composes the two with
        identical counter behaviour.
        """
        if klass not in COST_CLASSES:
            raise ParameterError(
                f"unknown cost class {klass!r} (expected one of "
                f"{COST_CLASSES})"
            )
        with self._condition:
            if self._slots_free > 0:
                self._slots_free -= 1
                self._in_service[klass] += 1
                obs.count("serving.admitted")
                obs.observe(f"serving.queue_wait_seconds.{klass}", 0.0)
                return AdmissionTicket(self, klass)
            if self.shed_policy != "block":
                total_waiting = sum(self._waiters.values())
                if (
                    total_waiting >= self.max_queue
                    or self._waiters[klass] >= self._class_caps[klass]
                ):
                    obs.count("serving.shed")
                    obs.count(f"serving.shed.{klass}")
                    return None
            # Reserve the waiter slot *now*, under this same lock hold,
            # so concurrent admit_nowait calls see the queue fill up —
            # the shed bound stays exact even when redeeming happens on
            # another thread later.
            self._waiters[klass] += 1
            return _WaitReservation(klass, time.monotonic())

    def finish_wait(
        self, reservation: "_WaitReservation"
    ) -> AdmissionTicket:
        """Redeem a :class:`_WaitReservation`: block until a worker slot
        frees, then return the ticket. Must be called exactly once per
        reservation (it releases the reserved waiter slot)."""
        klass = reservation.klass
        with self._condition:
            try:
                while self._slots_free <= 0:
                    self._condition.wait()
                self._slots_free -= 1
            finally:
                self._waiters[klass] -= 1
            self._in_service[klass] += 1
            obs.count("serving.admitted")
            obs.count("serving.admitted.queued")
            waited_s = time.monotonic() - reservation.queued_at
            obs.observe(f"serving.queue_wait_seconds.{klass}", waited_s)
            return AdmissionTicket(self, klass, queued_s=waited_s)

    def _release(self, klass: str, elapsed_s: float) -> None:
        obs.observe(f"serving.service_seconds.{klass}", elapsed_s)
        with self._condition:
            self._slots_free += 1
            self._in_service[klass] = max(0, self._in_service[klass] - 1)
            previous = self._service_ewma_s[klass]
            self._service_ewma_s[klass] = (
                previous + _ALPHA * (elapsed_s - previous)
            )
            self._condition.notify()

    # -- hints and introspection ---------------------------------------

    def retry_after_ms(self, klass: str) -> int:
        """A backoff hint for a just-shed request of ``klass``.

        Estimates how long the current backlog takes to drain: every
        in-service and waiting request costs one EWMA service time
        spread over the worker pool, plus one more for the retry
        itself. Clamped to keep pathological estimates honest.
        """
        with self._lock:
            backlog = sum(self._in_service.values()) + sum(
                self._waiters.values()
            )
            service_s = self._service_ewma_s.get(
                klass, _DEFAULT_SERVICE_S["point"]
            )
        estimate_ms = (backlog + 1) * service_s * 1000.0 / self.workers
        return int(
            min(_RETRY_AFTER_MAX_MS, max(_RETRY_AFTER_MIN_MS, estimate_ms))
        )

    def stats(self) -> dict:
        """A JSON-able snapshot (surfaced by the ``stats`` op)."""
        with self._lock:
            return {
                "workers": self.workers,
                "max_queue": self.max_queue,
                "shed_policy": self.shed_policy,
                "slots_free": self._slots_free,
                "in_service": dict(self._in_service),
                "waiting": dict(self._waiters),
                # Alias of "waiting" under the gauge vocabulary: the
                # per-class queue depth *right now*, as opposed to the
                # cumulative serving.shed/admitted counters.
                "queue_depth": dict(self._waiters),
                "service_ewma_ms": {
                    klass: round(seconds * 1000.0, 3)
                    for klass, seconds in self._service_ewma_s.items()
                },
            }
