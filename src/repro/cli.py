"""Command-line interface: ``ripple`` (or ``python -m repro``).

Subcommands:

* ``enumerate`` — run any of the algorithms on an edge-list file and
  print (or save as JSON) the k-VCCs;
* ``verify`` — exactly audit a saved result against its graph
  (connectivity and maximality of every component);
* ``datasets`` — list the registered benchmark datasets;
* ``bench`` — regenerate one of the paper's tables/figures as text;
* ``stats diff`` — compare two saved ``repro.obs/1`` documents;
* ``index build`` / ``index inspect`` — materialise the k-VCC
  hierarchy into a persistent query index / describe a saved one;
* ``serve`` — answer QkVCS queries over line-delimited JSON (stdio or
  TCP) from an index, with live fallback (see ``docs/serving.md``);
* ``loadtest`` — spawn a serve daemon and measure it under open-loop
  concurrent traffic, writing ``run_table.csv`` + raw-sample JSONL
  capacity artifacts (see ``docs/loadtest.md``).

The top-level ``--stats`` flag (also accepted after ``enumerate``)
runs the command under a live :mod:`repro.obs` collector and appends
the counter/phase tables plus the hierarchical span tree;
``--stats-json FILE`` saves the same data as a ``repro.obs/1`` JSON
document; ``--trace-out FILE`` exports the span tree as Chrome
trace-event JSON (loadable in Perfetto / ``chrome://tracing``);
``--profile-memory`` additionally records per-span peak traced memory
via :mod:`tracemalloc` (see ``docs/observability.md``).

Exit codes (see ``docs/robustness.md``): 0 success, 1 verification
failures, 2 usage/input errors, 3 a ``--deadline`` expired (partial
results were printed), 4 the supervised pool degraded to sequential
execution, 130 interrupted (partial results were printed).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import tracemalloc
from collections.abc import Sequence

from repro import obs
from repro.bench import experiments, reporting
from repro.core.ripple import ripple, ripple_me
from repro.core.vcce_bu import vcce_bu
from repro.core.vcce_td import vcce_td
from repro.datasets.registry import DATASETS, load_snap_graph
from repro.errors import IndexCorruptionError, ReproError
from repro.flow import fastpath
from repro.graph.io import read_edge_list
from repro.obs.spans import render_span_tree, span_totals, to_chrome_trace
from repro.parallel.executor import ParallelConfig, parallel_ripple
from repro.resilience import Deadline, SupervisionConfig

__all__ = ["build_parser", "main"]

_ALGORITHMS = {
    "ripple": ripple,
    "ripple-me": ripple_me,
    "vcce-td": vcce_td,
    "vcce-bu": vcce_bu,
}

#: Sequential algorithms that accept a ``deadline=`` keyword.
_DEADLINE_AWARE = {"ripple", "ripple-me", "vcce-bu"}

EXIT_ERROR = 2
EXIT_DEADLINE = 3
EXIT_DEGRADED = 4
EXIT_INTERRUPT = 130

_STATUS_EXIT_CODES = {
    "completed": 0,
    "deadline": EXIT_DEADLINE,
    "degraded": EXIT_DEGRADED,
    "interrupted": EXIT_INTERRUPT,
}

_BENCHES = {
    "table2": lambda: reporting.render_table(
        "Table II: dataset statistics",
        ["dataset", "mirrors", "|V|", "|E|", "avg deg", "k_max"],
        experiments.table2_rows(),
    ),
    "table3": lambda: reporting.render_table(
        "Table III: accuracy (RIPPLE vs VCCE-BU)",
        ["dataset", "k", "F_same RP", "F_same BU", "J_Index RP", "J_Index BU"],
        experiments.table3_rows(),
    ),
    "table4": lambda: reporting.render_table(
        "Table IV: RIPPLE vs RIPPLE-ME",
        ["dataset", "k", "RP time", "RP F", "RP J", "ME time", "ME F", "ME J"],
        experiments.table4_rows(),
    ),
    "table5": lambda: reporting.render_table(
        "Table V: ablation study",
        ["dataset", "k", "variant", "time", "F_same", "J_Index"],
        experiments.table5_rows(),
    ),
    "table6": lambda: reporting.render_table(
        "Table VI: QkVCS seeding efficiency",
        ["dataset", "k", "kBFS %", "BK-MCQ %", "total %", "speedup"],
        experiments.table6_rows(),
    ),
    "fig7": lambda: reporting.render_series(
        "Figure 7: runtime vs k on ca-mathscinet (seconds)",
        "k",
        *experiments.fig7_series("ca-mathscinet"),
    ),
    "fig8": lambda: reporting.render_table(
        "Figure 8: peak traced memory (KiB)",
        ["dataset", "k", "VCCE-TD", "VCCE-BU", "RIPPLE"],
        experiments.fig8_rows(),
    ),
    "fig9": lambda: reporting.render_table(
        "Figure 9: RIPPLE phase time shares (%)",
        ["dataset", "k", "seeding", "merging", "expansion", "other"],
        experiments.fig9_rows(),
    ),
    "fig10": lambda: reporting.render_table(
        "Figure 10: parallel RIPPLE (process pool, ca-dblp)",
        ["dataset", "k", "backend", "workers", "time s", "speedup"],
        experiments.fig10_rows("ca-dblp", worker_counts=(1, 2, 4)),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="ripple",
        description="k-vertex connected component enumeration (RIPPLE)",
    )
    _add_stats_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    enum = sub.add_parser(
        "enumerate", help="enumerate k-VCCs of an edge-list file"
    )
    _add_stats_flags(enum)
    enum.add_argument("path", help="edge-list file (u v per line)")
    enum.add_argument("-k", type=int, required=True, help="connectivity")
    enum.add_argument(
        "--format",
        choices=("edgelist", "snap"),
        default="edgelist",
        dest="input_format",
        help="input format: 'edgelist' (permissive reader) or 'snap' "
        "(streaming loader: '#'/'%%' headers, self-loops and duplicate "
        "edges dropped with counters, '.gz' accepted, builds the "
        "flat-array CSR snapshot directly; default: edgelist)",
    )
    enum.add_argument(
        "--algorithm",
        choices=sorted([*_ALGORITHMS, "parallel-ripple"]),
        default="ripple",
        help="which enumerator to run (default: ripple)",
    )
    enum.add_argument(
        "--workers",
        type=int,
        default=2,
        help="parallel-ripple: worker pool size (default 2)",
    )
    enum.add_argument(
        "--backend",
        choices=("process", "thread"),
        default="process",
        help="parallel-ripple: pool backend (default process)",
    )
    enum.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; when it expires the run stops at the "
        "next stage boundary, prints partial results, and exits 3",
    )
    enum.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="parallel-ripple: seconds before a worker task is "
        "declared hung and re-dispatched",
    )
    enum.add_argument(
        "--no-certificate",
        action="store_true",
        help="disable certificate sparsification of dense flow tests "
        "(see docs/performance.md); results are identical either way",
    )
    enum.add_argument(
        "--quiet",
        action="store_true",
        help="print only the summary line, not the components",
    )
    enum.add_argument(
        "--json",
        metavar="FILE",
        help="also save the result as a JSON document",
    )

    verify = sub.add_parser(
        "verify",
        help="audit a saved enumeration result (connectivity + maximality)",
    )
    verify.add_argument("graph", help="the edge-list file the result is for")
    verify.add_argument("result", help="a JSON result from enumerate --json")

    sub.add_parser("datasets", help="list the benchmark datasets")

    bench = sub.add_parser(
        "bench", help="regenerate one of the paper's tables"
    )
    bench.add_argument("experiment", choices=sorted(_BENCHES))

    stats = sub.add_parser(
        "stats", help="work with saved repro.obs/1 stats documents"
    )
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)
    diff = stats_sub.add_parser(
        "diff",
        help="compare two stats documents (phases, counters, spans)",
    )
    diff.add_argument("baseline", help="repro.obs/1 JSON (--stats-json)")
    diff.add_argument("candidate", help="repro.obs/1 JSON to compare")

    gen = sub.add_parser(
        "generate",
        help="write a benchmark dataset or planted graph as an edge list",
    )
    gen.add_argument(
        "source",
        help="a dataset name (see `ripple datasets`) or 'planted'",
    )
    gen.add_argument("-o", "--output", required=True, help="output file")
    gen.add_argument(
        "--communities", type=int, default=3,
        help="planted: number of communities (default 3)",
    )
    gen.add_argument(
        "--size", type=int, default=30,
        help="planted: vertices per community (default 30)",
    )
    gen.add_argument(
        "-k", type=int, default=4,
        help="planted: connectivity of each community (default 4)",
    )
    gen.add_argument(
        "--seed", type=int, default=0, help="planted: RNG seed (default 0)"
    )

    index = sub.add_parser(
        "index",
        help="build or inspect a persistent k-VCC query index",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    build = index_sub.add_parser(
        "build",
        help="materialise the k-VCC hierarchy of a graph into an index file",
    )
    build.add_argument("path", help="edge-list file (u v per line)")
    build.add_argument(
        "-o", "--output", required=True, help="index file to write"
    )
    build.add_argument(
        "--max-k",
        type=int,
        default=None,
        help="cap the indexed ceiling (default: index to exhaustion; "
        "queries above a capped ceiling fall back to live enumeration)",
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the index into N shards by connected component "
        "of the shard-k-core and write a repro.kvcc-shards/1 manifest "
        "plus per-shard index files (see docs/scaling.md); default: one "
        "monolithic repro.kvcc-index/1 file",
    )
    build.add_argument(
        "--shard-k",
        type=int,
        default=2,
        help="sharding core level: a k-VCC with k >= shard-k never "
        "spans two connected components of the shard-k-core, so those "
        "components are the shard key; levels below it live in a small "
        "global residual index (default 2)",
    )
    inspect = index_sub.add_parser(
        "inspect", help="describe a saved index or shard-manifest file"
    )
    inspect.add_argument("path", help="an index file from `ripple index build`")

    serve = sub.add_parser(
        "serve",
        help="answer k-VCC queries over line-delimited JSON "
        "(see docs/serving.md)",
    )
    serve.add_argument(
        "--graph",
        help="edge-list file to serve (enables live fallback and "
        "build-on-first-use when the index is missing or stale)",
    )
    serve.add_argument(
        "--index",
        help="index file from `ripple index build`; a missing file "
        "degrades to build-on-first-use when --graph is given",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on TCP instead of stdio (PORT 0 picks a free port)",
    )
    serve.add_argument(
        "--backend",
        choices=("thread", "aio"),
        default="thread",
        help="TCP server backend: 'thread' (one thread per connection) "
        "or 'aio' (asyncio event loop multiplexing every connection, "
        "CPU work on a bounded executor; see docs/scaling.md)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="serve through a scatter-gather ShardRouter over N k-core "
        "shards instead of one monolithic engine (built at startup "
        "unless --index names a repro.kvcc-shards/1 manifest)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="read replicas per shard — independent engines with "
        "private caches, round-robin selection, and failover "
        "(default 1; implies the ShardRouter when > 1)",
    )
    serve.add_argument(
        "--shard-k",
        type=int,
        default=2,
        help="core level of the shard key when sharding at startup "
        "(see `ripple index build --shard-k`; default 2)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="TCP: maximum concurrently answered requests (default 4)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        metavar="SECONDS",
        help="per-request deadline; batches cut short return their "
        "completed prefix with a 'deadline' error code",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="TCP: bound on requests waiting for a worker before the "
        "daemon sheds with an 'overloaded' error (default 32)",
    )
    serve.add_argument(
        "--shed-policy",
        choices=("bounded", "strict", "block"),
        default="bounded",
        help="TCP admission policy: bounded queueing (default), "
        "strict (shed whenever all workers are busy), or block "
        "(legacy unbounded queueing, never sheds)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="LRU result-cache capacity, 0 disables (default 1024)",
    )
    serve.add_argument(
        "--max-k",
        type=int,
        default=None,
        help="cap for an index built on first use (default: exhaustive)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="serve Prometheus text exposition on "
        "http://127.0.0.1:PORT/metrics (0 picks a free port; see "
        "docs/observability.md for the metric catalogue)",
    )
    serve.add_argument(
        "--access-log",
        metavar="PATH",
        help="append one JSONL record per request (id, op, class, "
        "outcome, queue/service/handle ms, cache tier, shed reason)",
    )

    top = sub.add_parser(
        "top",
        help="live console view of a running serve daemon "
        "(rps, shed, queue depths, handle-time tails)",
    )
    top.add_argument(
        "address",
        metavar="HOST:PORT",
        help="a running `ripple serve --tcp` daemon",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between stats polls (default 2)",
    )
    top.add_argument(
        "--count",
        type=int,
        default=None,
        help="stop after N frames (default: run until Ctrl-C)",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="open-loop load-test a spawned serve daemon and write "
        "run_table.csv capacity artifacts (see docs/loadtest.md)",
    )
    loadtest.add_argument(
        "path", help="edge-list file the spawned daemon serves"
    )
    loadtest.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="built-in scenario to run; repeatable (default: smoke)",
    )
    loadtest.add_argument(
        "--output-dir",
        default="loadtest-results",
        help="directory for run_table.csv + samples.jsonl "
        "(default loadtest-results)",
    )
    loadtest.add_argument(
        "--topology",
        help="topology label recorded in the run table "
        "(default: the graph file's stem)",
    )
    loadtest.add_argument(
        "--index",
        help="prebuilt index file handed to the daemon "
        "(default: build-on-first-use)",
    )
    loadtest.add_argument(
        "--rate", type=float, metavar="RPS",
        help="override the scenario's offered arrival rate",
    )
    loadtest.add_argument(
        "--duration", type=float, metavar="SECONDS",
        help="override the scenario's total run length",
    )
    loadtest.add_argument(
        "--warmup", type=float, metavar="SECONDS",
        help="override the scenario's warmup window",
    )
    loadtest.add_argument(
        "--workers", type=int,
        help="override the scenario's client connection count",
    )
    loadtest.add_argument(
        "--repetitions", type=int,
        help="override the scenario's repetition count",
    )
    loadtest.add_argument(
        "--seed", type=int, help="override the scenario's schedule seed"
    )
    loadtest.add_argument(
        "--arrival", choices=("poisson", "uniform"),
        help="override the scenario's arrival process",
    )
    loadtest.add_argument(
        "--max-k", type=int,
        help="override the scenario's query-k ceiling",
    )
    loadtest.add_argument(
        "--retry-budget", type=int,
        help="override the scenario's client retry budget (retries on "
        "overloaded/garbage/dropped responses with jittered backoff)",
    )
    loadtest.add_argument(
        "--backend", choices=("thread", "aio"), default="thread",
        help="daemon backend to spawn (see `serve --backend`; "
        "default thread)",
    )
    loadtest.add_argument(
        "--daemon-shards", type=int, metavar="N",
        help="spawn the daemon with `--shards N` (scatter-gather "
        "router over k-core shards)",
    )
    loadtest.add_argument(
        "--daemon-replicas", type=int,
        help="spawn the daemon with `--replicas N` (read replicas "
        "per shard)",
    )
    loadtest.add_argument(
        "--daemon-workers", type=int, default=4,
        help="daemon-side concurrent request cap (default 4)",
    )
    loadtest.add_argument(
        "--daemon-max-queue", type=int,
        help="daemon-side admission queue bound (see `serve --max-queue`)",
    )
    loadtest.add_argument(
        "--daemon-shed-policy", choices=("bounded", "strict", "block"),
        help="daemon-side shed policy (see `serve --shed-policy`)",
    )
    loadtest.add_argument(
        "--request-timeout", type=float, metavar="SECONDS",
        help="per-request deadline inside the daemon",
    )
    loadtest.add_argument(
        "--daemon-access-log", metavar="PATH",
        help="daemon-side JSONL access log (one record per request; "
        "joins client-observed failures to server-side decisions by "
        "request_id)",
    )
    loadtest.add_argument(
        "--daemon-metrics-port", type=int, metavar="PORT",
        help="expose the daemon's /metrics endpoint during the run "
        "(0 picks a free port, printed to stderr)",
    )
    loadtest.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="harness wall-clock budget: when it expires the run stops "
        "at the next repetition boundary, completed rows are still "
        "written, and the exit code is 3",
    )
    return parser


def _add_stats_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the observability flags (top level and ``enumerate``)."""
    parser.add_argument(
        "--stats",
        action="store_true",
        default=argparse.SUPPRESS,
        help="collect repro.obs counters and print them after the run",
    )
    parser.add_argument(
        "--stats-json",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help="also save the collected counters as repro.obs/1 JSON",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help="export the span tree as Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--profile-memory",
        action="store_true",
        default=argparse.SUPPRESS,
        help="record per-span peak traced memory (tracemalloc); "
        "requires --stats, --stats-json, or --trace-out",
    )


def _cmd_enumerate(args: argparse.Namespace, runinfo: dict) -> int:
    if args.input_format == "snap":
        graph = load_snap_graph(args.path)
    else:
        graph = read_edge_list(args.path, allow_self_loops=True)
    deadline = (
        Deadline(args.deadline) if args.deadline is not None else None
    )
    if args.no_certificate:
        if args.algorithm == "parallel-ripple":
            # The fast-path config is thread-local; it does not reach
            # pool workers, so pretending would be worse than refusing.
            print(
                "note: --no-certificate does not propagate to "
                "parallel-ripple workers; ignoring",
                file=sys.stderr,
            )
        else:
            with fastpath.configured(certificate=False):
                return _dispatch_enumerate(args, runinfo, graph, deadline)
    return _dispatch_enumerate(args, runinfo, graph, deadline)


def _dispatch_enumerate(
    args: argparse.Namespace,
    runinfo: dict,
    graph,
    deadline: Deadline | None,
) -> int:
    if args.algorithm == "parallel-ripple":
        config = ParallelConfig(workers=args.workers, backend=args.backend)
        supervision = SupervisionConfig(task_timeout=args.task_timeout)
        result = parallel_ripple(
            graph,
            args.k,
            config,
            supervision=supervision,
            deadline=deadline,
        )
    else:
        if args.task_timeout is not None:
            print(
                "note: --task-timeout only applies to parallel-ripple; "
                "ignoring",
                file=sys.stderr,
            )
        algorithm = _ALGORITHMS[args.algorithm]
        if args.algorithm in _DEADLINE_AWARE:
            result = algorithm(graph, args.k, deadline=deadline)
        else:
            if deadline is not None:
                print(
                    f"note: --deadline is not supported by "
                    f"{args.algorithm}; ignoring",
                    file=sys.stderr,
                )
            result = algorithm(graph, args.k)
    runinfo["status"] = result.status
    print(result.summary())
    if result.is_partial:
        checkpointed = len(result.checkpoint or [])
        print(
            f"partial results ({result.status}): enumeration stopped at a "
            f"stage boundary; {checkpointed} component(s) checkpointed "
            f"for resumption (saved with --json)"
        )
    elif result.status == "degraded":
        print(
            "warning: worker pool degraded to sequential execution; "
            "results are complete"
        )
    if not args.quiet:
        for index, component in enumerate(result.components, start=1):
            members = " ".join(sorted(map(str, component)))
            print(f"component {index} ({len(component)} vertices): {members}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"result saved to {args.json}")
    return _STATUS_EXIT_CODES.get(result.status, 0)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.result import VCCResult
    from repro.core.verify import verify_result

    graph = read_edge_list(args.graph, allow_self_loops=True)
    with open(args.result, encoding="utf-8") as handle:
        result = VCCResult.from_json(handle.read())
    reports = verify_result(graph, result)
    failures = 0
    for report in reports:
        print(report.describe())
        if not report.is_valid_kvcc:
            failures += 1
    verdict = "all components verified" if not failures else (
        f"{failures} of {len(reports)} components failed verification"
    )
    print(verdict)
    return 0 if not failures else 1


def _cmd_datasets() -> int:
    rows = [
        [d.name, d.mirrors, ",".join(map(str, d.ks)), d.why]
        for d in DATASETS.values()
    ]
    print(
        reporting.render_table(
            "Benchmark datasets",
            ["name", "mirrors", "k values", "property preserved"],
            rows,
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    print(_BENCHES[args.experiment]())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets.registry import get_dataset
    from repro.graph.generators import planted_kvcc_graph
    from repro.graph.io import write_edge_list

    if args.source == "planted":
        graph = planted_kvcc_graph(
            args.communities, args.size, args.k, seed=args.seed
        )
    else:
        graph = get_dataset(args.source).graph()
    write_edge_list(graph, args.output)
    print(
        f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges "
        f"to {args.output}"
    )
    return 0


def _sniff_shard_manifest(path: str) -> bool:
    """True when ``path`` holds a ``repro.kvcc-shards/1`` manifest
    (cheap schema peek; corrupt files sniff False and fail later with
    the proper quarantine path)."""
    import json as _json
    import os as _os

    if not _os.path.exists(path):
        return False
    try:
        with open(path, encoding="utf-8") as handle:
            payload = _json.loads(handle.read(1 << 20))
        return payload.get("schema") == "repro.kvcc-shards/1"
    except (OSError, ValueError, AttributeError):
        return False


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.serving import KvccIndex

    if args.index_command == "build":
        graph = read_edge_list(args.path, allow_self_loops=True)
        if args.shards:
            from repro.serving.shard import ShardSet

            shard_set = ShardSet.build(
                graph, args.shards, shard_k=args.shard_k, max_k=args.max_k
            )
            shard_set.save(args.output)
            sizes = ", ".join(
                str(shard.num_vertices) for shard in shard_set.shards
            )
            print(
                f"shard manifest saved to {args.output}: "
                f"{shard_set.num_shards} shard(s) of [{sizes}] vertices "
                f"at shard-k {shard_set.shard_k}, residual ceiling "
                f"k={shard_set.residual.ceiling}, global ceiling "
                f"k={shard_set.ceiling}"
            )
            return 0
        index = KvccIndex.build(graph, max_k=args.max_k)
        index.save(args.output)
        print(
            f"index saved to {args.output}: {index.num_vertices} vertices, "
            f"{index.num_edges} edges, ceiling k={index.ceiling} "
            f"({'complete' if index.complete else f'capped at {index.max_k}'})"
        )
        return 0
    if _sniff_shard_manifest(args.path):
        from repro.serving.shard import ShardSet

        shard_set = ShardSet.load(args.path)
        print(
            f"{args.path}: repro.kvcc-shards/1, fingerprint "
            f"{shard_set.fingerprint[:16]}…"
        )
        print(
            f"graph: {shard_set.num_vertices} vertices, "
            f"{shard_set.num_edges} edges; shard-k {shard_set.shard_k}, "
            f"global ceiling k={shard_set.ceiling}, residual ceiling "
            f"k={shard_set.residual.ceiling}"
        )
        rows = [
            [
                shard_id,
                shard.num_vertices,
                shard.num_edges,
                shard.ceiling,
                shard.fingerprint[:16] + "…",
            ]
            for shard_id, shard in enumerate(shard_set.shards)
        ]
        print(
            reporting.render_table(
                "Shards",
                ["shard", "vertices", "edges", "ceiling", "fingerprint"],
                rows,
            )
        )
        return 0
    index = KvccIndex.load(args.path)
    print(
        f"{args.path}: repro.kvcc-index/1, fingerprint "
        f"{index.fingerprint[:16]}…"
    )
    print(
        f"graph: {index.num_vertices} vertices, {index.num_edges} edges; "
        f"ceiling k={index.ceiling} "
        f"({'complete' if index.complete else f'capped at {index.max_k}'})"
    )
    depth = index.membership_levels()
    rows = [
        [
            k,
            len(components),
            ", ".join(str(len(c)) for c in components),
            sum(1 for level in depth.values() if level == k),
        ]
        for k, components in index.levels.items()
    ]
    print(
        reporting.render_table(
            "Indexed levels",
            ["k", "components", "sizes", "vertices deepest here"],
            rows,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.serving import (
        KvccIndex,
        MetricsServer,
        QueryEngine,
        ServeSettings,
        serve_stdio,
        serve_tcp,
        serve_tcp_aio,
    )
    from repro.serving.shard import ShardRouter, ShardSet

    graph = (
        read_edge_list(args.graph, allow_self_loops=True)
        if args.graph
        else None
    )
    index = None
    shard_set = None
    if args.index:
        if os.path.exists(args.index):
            try:
                if _sniff_shard_manifest(args.index):
                    shard_set = ShardSet.load(args.index)
                else:
                    index = KvccIndex.load(args.index)
            except IndexCorruptionError as exc:
                if graph is None:
                    print(f"error: {exc}", file=sys.stderr)
                    return EXIT_ERROR
                print(
                    f"warning: {exc}; degrading to build-on-first-use "
                    f"from {args.graph}",
                    file=sys.stderr,
                )
        elif graph is None:
            print(
                f"error: index file {args.index} does not exist and no "
                f"--graph was given to build one from",
                file=sys.stderr,
            )
            return EXIT_ERROR
        else:
            print(
                f"note: index file {args.index} missing; degrading to "
                f"build-on-first-use from {args.graph}",
                file=sys.stderr,
            )
    if graph is None and index is None and shard_set is None:
        print("error: serve needs --graph, --index, or both", file=sys.stderr)
        return EXIT_ERROR
    use_router = (
        shard_set is not None
        or (args.shards or 0) > 0
        or args.replicas > 1
    )
    if use_router:
        if shard_set is None and graph is None:
            print(
                "error: --shards/--replicas need a shard manifest "
                "(`ripple index build --shards N`) via --index, or "
                "--graph to shard at startup",
                file=sys.stderr,
            )
            return EXIT_ERROR
        engine = ShardRouter(
            shard_set,
            graph=graph,
            shards=args.shards or 1,
            replicas=args.replicas,
            shard_k=args.shard_k,
            max_k=args.max_k,
            cache_size=args.cache_size,
        )
        stats = engine.stats()["router"]
        print(
            f"ripple serve: scatter-gather router — "
            f"{stats['shards']} shard(s) × {stats['replicas']} "
            f"replica(s), shard-k {stats['shard_k']}",
            file=sys.stderr,
            flush=True,
        )
    else:
        engine = QueryEngine(
            graph, index, cache_size=args.cache_size, max_k=args.max_k
        )
    settings = ServeSettings(
        request_timeout=args.request_timeout,
        workers=args.workers,
        max_queue=args.max_queue,
        shed_policy=args.shed_policy,
        access_log=args.access_log,
        # The reload op re-reads the served file, so a load-test (or
        # operator) can mutate the graph on disk and storm the stale
        # detector without restarting the daemon.
        reloader=(
            (lambda: read_edge_list(args.graph, allow_self_loops=True))
            if args.graph
            else None
        ),
    )
    # The stats op reports serving.* counters; give the daemon a real
    # collector even when the operator didn't pass --stats (which would
    # have installed one around the whole command already).
    scope = (
        obs.collecting()
        if isinstance(obs.get_collector(), obs.NullCollector)
        else contextlib.nullcontext()
    )
    with scope:
        if args.tcp:
            import threading

            host, _, port_text = args.tcp.rpartition(":")
            try:
                port = int(port_text)
            except ValueError:
                print(
                    f"error: --tcp expects HOST:PORT, got {args.tcp!r}",
                    file=sys.stderr,
                )
                return EXIT_ERROR
            serve_backend = (
                serve_tcp_aio if args.backend == "aio" else serve_tcp
            )
            handle = serve_backend(
                engine,
                settings,
                host=host or "127.0.0.1",
                port=port,
                background=True,
            )
            bound_host, bound_port = handle.address
            metrics = None
            if args.metrics_port is not None:
                metrics = MetricsServer(
                    collector=obs.get_collector(),
                    admission=handle.admission,
                    engine=engine,
                    started_at=handle.context.started_at,
                    port=args.metrics_port,
                ).start()
            print(
                f"ripple serve: listening on {bound_host}:{bound_port} "
                f"(Ctrl-C to stop)",
                file=sys.stderr,
                flush=True,
            )
            if metrics is not None:
                print(
                    f"ripple serve: metrics on {metrics.url}",
                    file=sys.stderr,
                    flush=True,
                )
            try:
                threading.Event().wait()
            finally:
                if metrics is not None:
                    metrics.stop()
                handle.stop()
            return 0
        if args.backend != "thread":
            print(
                "note: --backend applies to --tcp only; stdio always "
                "serves one in-order session",
                file=sys.stderr,
            )
        metrics = None
        if args.metrics_port is not None:
            metrics = MetricsServer(
                collector=obs.get_collector(),
                engine=engine,
                port=args.metrics_port,
            ).start()
            print(
                f"ripple serve: metrics on {metrics.url}",
                file=sys.stderr,
                flush=True,
            )
        try:
            served = serve_stdio(
                engine, settings, in_stream=sys.stdin, out_stream=sys.stdout
            )
        finally:
            if metrics is not None:
                metrics.stop()
    print(f"ripple serve: session over, {served} request(s)", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serving.top import run_top

    host, _, port_text = args.address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"error: expected HOST:PORT, got {args.address!r}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    return run_top(
        (host or "127.0.0.1", port),
        interval=args.interval,
        count=args.count,
    )


def _cmd_loadtest(args: argparse.Namespace, runinfo: dict) -> int:
    import os

    from repro.bench.perfgate import calibrate
    from repro.loadtest import (
        get_scenario,
        run_scenario,
        write_run_table,
        write_samples_jsonl,
    )

    overrides = {
        key: value
        for key, value in (
            ("offered_rps", args.rate),
            ("duration_s", args.duration),
            ("warmup_s", args.warmup),
            ("workers", args.workers),
            ("repetitions", args.repetitions),
            ("seed", args.seed),
            ("arrival", args.arrival),
            ("max_k", args.max_k),
            ("retry_budget", args.retry_budget),
        )
        if value is not None
    }
    scenarios = [
        get_scenario(name).with_overrides(**overrides)
        for name in (args.scenarios or ["smoke"])
    ]
    os.makedirs(args.output_dir, exist_ok=True)
    table_path = os.path.join(args.output_dir, "run_table.csv")
    samples_path = os.path.join(args.output_dir, "samples.jsonl")
    # Truncate a previous run's samples: the run table is rewritten
    # whole, so the JSONL must match it.
    open(samples_path, "w", encoding="utf-8").close()
    deadline = Deadline(args.deadline) if args.deadline is not None else None
    calibration_s = calibrate()
    status = "completed"
    rows = []
    for scenario in scenarios:
        print(
            f"loadtest: scenario {scenario.name!r} — "
            f"{scenario.offered_rps:g} rps offered ({scenario.arrival}), "
            f"{scenario.duration_s:g}s × {scenario.repetitions} "
            f"repetition(s), {scenario.workers} client worker(s)",
            file=sys.stderr,
        )
        outcome = run_scenario(
            scenario,
            args.path,
            topology=args.topology,
            index_path=args.index,
            daemon_workers=args.daemon_workers,
            request_timeout=args.request_timeout,
            calibration_s=calibration_s,
            deadline=deadline,
            daemon_max_queue=args.daemon_max_queue,
            daemon_shed_policy=args.daemon_shed_policy,
            daemon_access_log=args.daemon_access_log,
            daemon_metrics_port=args.daemon_metrics_port,
            daemon_backend=args.backend,
            daemon_shards=args.daemon_shards,
            daemon_replicas=args.daemon_replicas,
        )
        rows.extend(outcome.rows)
        for repetition, samples in sorted(outcome.samples.items()):
            write_samples_jsonl(
                samples_path, scenario.name, repetition, samples
            )
        if outcome.status != "completed":
            status = outcome.status
            print(
                f"loadtest: harness deadline expired during "
                f"{scenario.name!r}; stopping with "
                f"{len(rows)} completed row(s)",
                file=sys.stderr,
            )
            break
    write_run_table(table_path, rows)
    print(
        reporting.render_table(
            "Load test: one row per (scenario, repetition)",
            ["run", "offered", "achieved", "p50 ms", "p95 ms", "p99 ms",
             "fail", "shed", "cpu %"],
            [
                [
                    f"{row.scenario}#{row.repetition}",
                    f"{row.offered_rps:g}",
                    f"{row.achieved_rps:.1f}",
                    f"{row.p50_latency_ms:.2f}",
                    f"{row.p95_latency_ms:.2f}",
                    f"{row.p99_latency_ms:.2f}",
                    f"{row.failure_rate:.4f}",
                    f"{row.shed_rate:.4f}",
                    "-"
                    if row.cpu_usage_avg != row.cpu_usage_avg
                    else f"{row.cpu_usage_avg:.1f}",
                ]
                for row in rows
            ],
        )
    )
    print(f"run table saved to {table_path} ({len(rows)} rows)")
    print(f"raw samples saved to {samples_path}")
    runinfo["status"] = status
    return _STATUS_EXIT_CODES.get(status, 0)


def _load_stats_doc(path: str) -> obs.Collector:
    with open(path, encoding="utf-8") as handle:
        return obs.Collector.from_json(handle.read())


def _fmt_rel(base: float, cand: float) -> str:
    """``cand`` relative to ``base`` as a signed percentage."""
    if base == 0:
        return "n/a" if cand == 0 else "new"
    return f"{(cand - base) / base:+.1%}"


def _cmd_stats_diff(args: argparse.Namespace) -> int:
    base = _load_stats_doc(args.baseline)
    cand = _load_stats_doc(args.candidate)

    phase_rows = [
        [
            name,
            f"{base.phases.get(name, 0.0):.6f}",
            f"{cand.phases.get(name, 0.0):.6f}",
            _fmt_rel(base.phases.get(name, 0.0), cand.phases.get(name, 0.0)),
        ]
        for name in sorted(set(base.phases) | set(cand.phases))
    ]
    if phase_rows:
        print(
            reporting.render_table(
                f"Phase seconds: {args.baseline} vs {args.candidate}",
                ["phase", "baseline", "candidate", "delta"],
                phase_rows,
            )
        )
    counter_rows = [
        [
            name,
            base.counter(name),
            cand.counter(name),
            f"{cand.counter(name) - base.counter(name):+d}",
        ]
        for name in sorted(set(base.counters) | set(cand.counters))
        if base.counter(name) != cand.counter(name)
    ]
    if counter_rows:
        print()
        print(
            reporting.render_table(
                "Counters (only rows that changed)",
                ["counter", "baseline", "candidate", "delta"],
                counter_rows,
            )
        )
    elif base.counters or cand.counters:
        print()
        print("counters: identical")

    base_spans = span_totals(base.spans.roots) if base.spans else {}
    cand_spans = span_totals(cand.spans.roots) if cand.spans else {}
    span_rows = [
        [
            name,
            f"{base_spans.get(name, {}).get('wall', 0.0):.6f}",
            f"{cand_spans.get(name, {}).get('wall', 0.0):.6f}",
            _fmt_rel(
                base_spans.get(name, {}).get("wall", 0.0),
                cand_spans.get(name, {}).get("wall", 0.0),
            ),
            _fmt_rel(
                base_spans.get(name, {}).get("mem_peak", 0),
                cand_spans.get(name, {}).get("mem_peak", 0),
            ),
        ]
        for name in sorted(set(base_spans) | set(cand_spans))
    ]
    if span_rows:
        print()
        print(
            reporting.render_table(
                "Span wall seconds / peak memory",
                ["span", "baseline s", "candidate s", "wall", "mem"],
                span_rows,
            )
        )
    return 0


def _dispatch(args: argparse.Namespace, runinfo: dict) -> int:
    if args.command == "enumerate":
        return _cmd_enumerate(args, runinfo)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "stats":
        return _cmd_stats_diff(args)
    if args.command == "index":
        return _cmd_index(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args, runinfo)
    return _cmd_bench(args)


def _emit_stats(
    collector: obs.Collector,
    show_tables: bool,
    stats_json: str | None,
    trace_out: str | None = None,
    status: str | None = None,
) -> None:
    """Print the counter/phase/span tables and/or dump JSON exports."""
    if show_tables:
        counter_rows = [
            [name, value]
            for name, value in sorted(collector.counters.items())
        ]
        print()
        print(
            reporting.render_table(
                "Run statistics: counters (repro.obs)",
                ["counter", "value"],
                counter_rows,
            )
        )
        phase_rows = [
            [name, f"{seconds:.6f}"]
            for name, seconds in sorted(collector.phases.items())
        ]
        if phase_rows:
            print()
            print(
                reporting.render_table(
                    "Run statistics: phase seconds (repro.obs)",
                    ["phase", "seconds"],
                    phase_rows,
                )
            )
        recorder = collector.spans
        if recorder is not None and not recorder.is_empty():
            print()
            print("Run statistics: span tree (repro.obs)")
            print(render_span_tree(recorder.roots, recorder.dropped))
    if stats_json:
        # The run's end status rides along in the repro.obs/1 document
        # (unknown keys are ignored by Collector.from_json), so a
        # deadline-stopped or degraded run is identifiable from its
        # stats dump alone.
        payload = json.loads(collector.to_json())
        if status is not None:
            payload["status"] = status
        with open(stats_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"stats saved to {stats_json}")
    if trace_out:
        recorder = collector.spans
        roots = recorder.roots if recorder is not None else []
        dropped = recorder.dropped if recorder is not None else 0
        with open(trace_out, "w", encoding="utf-8") as handle:
            json.dump(to_chrome_trace(roots, dropped), handle)
        print(f"trace saved to {trace_out}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    obs.trace.configure_from_env()
    want_stats = getattr(args, "stats", False)
    stats_json = getattr(args, "stats_json", None)
    trace_out = getattr(args, "trace_out", None)
    profile_memory = getattr(args, "profile_memory", False)
    runinfo: dict = {}
    try:
        if want_stats or stats_json or trace_out:
            collector = obs.Collector()
            collector.enable_spans()
            started_tracemalloc = False
            if profile_memory and not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracemalloc = True
            try:
                with obs.collecting(collector):
                    return _dispatch(args, runinfo)
            finally:
                # Emitted even when the command is unwinding (deadline,
                # interrupt, error): partial statistics beat none.
                if started_tracemalloc:
                    tracemalloc.stop()
                _emit_stats(
                    collector,
                    want_stats,
                    stats_json,
                    trace_out,
                    status=runinfo.get("status"),
                )
        elif profile_memory:
            print(
                "note: --profile-memory needs --stats, --stats-json, or "
                "--trace-out; ignoring",
                file=sys.stderr,
            )
        return _dispatch(args, runinfo)
    except KeyboardInterrupt:
        # The pipelines convert in-flight interrupts into partial
        # results (status "interrupted", exit 130); this catches an
        # interrupt landing outside them — exit quietly, no traceback.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
