"""VCCE-TD: the exact top-down k-VCC enumerator (Wen et al., ICDE'19).

Recursively partitions the graph: prune to the k-core, split into
connected components, and for each component either certify it k-vertex
connected (then it is a k-VCC) or find a vertex cut of size < k and
recurse on the *overlapped* parts — each side of the cut keeps a copy of
the cut vertices, because distinct k-VCCs may share up to k-1 vertices.

This is the ground-truth oracle the accuracy experiments (Table III /
IV / V) measure the heuristics against. It is exact but deliberately
unoptimised beyond k-core pruning and flow cutoffs; its cost profile is
part of what Figure 7 reproduces.
"""

from __future__ import annotations

from repro import obs
from repro.core.result import PhaseTimer, VCCResult
from repro.errors import ParameterError
from repro.flow.connectivity import find_vertex_cut
from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core
from repro.graph.traversal import connected_components

__all__ = ["vcce_td"]


def vcce_td(graph: Graph, k: int) -> VCCResult:
    """Enumerate all k-VCCs of ``graph`` exactly.

    Returns a :class:`VCCResult` whose components are precisely the
    maximal k-vertex connected subgraphs with more than k vertices.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    timer = PhaseTimer()
    found: set[frozenset] = set()
    with obs.start_span("vcce_td.run", k=k):
        with timer.phase("partition", k=k):
            pending: list[set] = [graph.vertex_set()]
            while pending:
                members = pending.pop()
                if len(members) <= k:
                    continue
                sub = k_core(graph.subgraph(members), k)
                timer.count("partitions")
                for component in connected_components(sub):
                    if len(component) <= k:
                        continue
                    piece = sub.subgraph(component)
                    # One flat aggregate instead of a node per search:
                    # deep recursions would otherwise bloat the tree.
                    with obs.agg_span("vcce_td.cut_search"):
                        cut = find_vertex_cut(piece, k)
                    timer.count("cut_searches")
                    if cut is None:
                        found.add(frozenset(component))
                        continue
                    remainder = piece.subgraph(component - cut)
                    for part in connected_components(remainder):
                        pending.append(part | cut)
        with timer.phase("finalize"):
            components = _drop_nested(found)
    return VCCResult(components, k=k, algorithm="VCCE-TD", timer=timer)


def _drop_nested(found: set[frozenset]) -> list[frozenset]:
    """Remove components contained in a larger one.

    The overlapped partition can rediscover a k-VCC inside several
    branches, and a branch may certify a subgraph of a k-VCC certified
    elsewhere; only the maximal sets are k-VCCs.
    """
    ordered = sorted(found, key=len, reverse=True)
    kept: list[frozenset] = []
    for comp in ordered:
        if not any(comp < other for other in kept):
            kept.append(comp)
    return kept
