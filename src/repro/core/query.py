"""Local k-VCC search: the community containing a given vertex.

The local variant of the enumeration problem (the seed-expansion
literature the paper's related work surveys): given one vertex, find a
k-VCC containing it *without* enumerating the whole graph. The
bottom-up machinery makes this a three-liner:

1. find a k-VCS seed around the vertex (LkVCS);
2. expand it with unrestricted Multiple Expansion — by Theorem 2 the
   result is the unique maximal k-connected superset of the seed,
   i.e. a genuine k-VCC;
3. if no local seed exists, optionally fall back to the exact
   enumerator restricted to the vertex's k-core component.

Because distinct k-VCCs may overlap in up to k-1 vertices, "the" k-VCC
of a vertex is not always unique; this returns the one grown from the
locally found seed (or the first exact component containing the vertex
under the fallback).
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.core.expansion import multiple_expansion
from repro.core.seeding import DEFAULT_ALPHA, lkvcs
from repro.core.vcce_td import vcce_td
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core
from repro.graph.traversal import component_of

__all__ = ["kvcc_containing"]


def kvcc_containing(
    graph: Graph,
    vertex: Hashable,
    k: int,
    alpha: int = DEFAULT_ALPHA,
    exact_fallback: bool = True,
) -> frozenset | None:
    """A k-VCC containing ``vertex``, or None if it belongs to none.

    Cost is local when a seed exists near the vertex (one LkVCS call
    plus the expansion flows). ``exact_fallback`` controls what happens
    when the 2-hop ball holds no seed: with it, the exact enumerator
    runs on the vertex's k-core component (still much smaller than the
    graph in the common case); without it, None is returned — which
    then means "no *locally visible* k-VCC", not a proof of absence.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    if not graph.has_vertex(vertex):
        raise ParameterError(f"vertex {vertex!r} not in graph")

    core = k_core(graph, k)
    if not core.has_vertex(vertex):
        return None  # pruned by the k-core: in no k-VCC, provably
    scope = core.subgraph(component_of(core, vertex))

    seed = lkvcs(scope, k, vertex, alpha=alpha)
    if seed is not None:
        grown = multiple_expansion(scope, k, seed, hops=None)
        return frozenset(grown)
    if not exact_fallback:
        return None
    for component in vcce_td(scope, k).components:
        if vertex in component:
            return component
    return None
