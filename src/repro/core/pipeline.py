"""The configurable bottom-up enumeration pipeline (seed → merge → expand).

Algorithm 5 of the paper, parameterised over its three ingredients so
that every published configuration — and every ablation of Table V —
is one call:

=================  ==========  ===========  =========
configuration      seeding     expansion    merging
=================  ==========  ===========  =========
RIPPLE             QkVCS       RME          FBM
RIPPLE-ME          QkVCS       ME (h-hop)   FBM
VCCE-BU            LkVCS       UE           NBM
RIPPLE-noQkVCS     LkVCS       RME          FBM
RIPPLE-noFBM       QkVCS       RME          NBM
RIPPLE-noRME       QkVCS       UE           FBM
=================  ==========  ===========  =========

:mod:`repro.core.ripple` and :mod:`repro.core.vcce_bu` export the named
entry points built on this driver.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core import expansion as expansion_mod
from repro.core import merging as merging_mod
from repro.core import seeding as seeding_mod
from repro.core.result import PhaseTimer, VCCResult
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core

__all__ = [
    "bottom_up_pipeline",
    "SEEDERS",
    "EXPANDERS",
    "MERGERS",
]

Seeder = Callable[..., list[set]]
Expander = Callable[..., set]
Merger = Callable[..., bool]


def _seed_qkvcs(graph: Graph, k: int, alpha: int, timer: PhaseTimer):
    return seeding_mod.qkvcs(graph, k, alpha=alpha, timer=timer)


def _seed_lkvcs(graph: Graph, k: int, alpha: int, timer: PhaseTimer):
    return seeding_mod.lkvcs_seeds(graph, k, alpha=alpha, timer=timer)


def _expand_ue(graph: Graph, k: int, seed: set, hops, timer: PhaseTimer):
    return expansion_mod.unitary_expansion(graph, k, seed, timer=timer)


def _expand_rme(graph: Graph, k: int, seed: set, hops, timer: PhaseTimer):
    return expansion_mod.ring_expansion(graph, k, seed, timer=timer)


def _expand_me(graph: Graph, k: int, seed: set, hops, timer: PhaseTimer):
    return expansion_mod.multiple_expansion(
        graph, k, seed, hops=hops, timer=timer
    )


SEEDERS: dict[str, Seeder] = {
    "qkvcs": _seed_qkvcs,
    "lkvcs": _seed_lkvcs,
}

EXPANDERS: dict[str, Expander] = {
    "ue": _expand_ue,
    "rme": _expand_rme,
    "me": _expand_me,
}

MERGERS: dict[str, Merger] = {
    "fbm": merging_mod.flow_based_merge_condition,
    "nbm": merging_mod.neighbor_based_merge_condition,
}


def bottom_up_pipeline(
    graph: Graph,
    k: int,
    seeding: str = "qkvcs",
    expansion: str = "rme",
    merging: str = "fbm",
    alpha: int = seeding_mod.DEFAULT_ALPHA,
    me_hops: int | None = 1,
    algorithm_name: str | None = None,
    order: str = "merge_first",
) -> VCCResult:
    """Run the seed → (merge ↔ expand)* pipeline and return its result.

    Parameters mirror Algorithm 5: the graph is pruned to its k-core,
    seeded, and then merging and expansion alternate to a fixed point.
    ``order`` selects which runs first inside each round —
    ``"merge_first"`` (the paper's choice: merging seeds early avoids
    redundant expansion work) or ``"expand_first"`` (the ablation of
    DESIGN.md §5). ``me_hops`` only applies when ``expansion="me"``.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    if order not in ("merge_first", "expand_first"):
        raise ParameterError(
            f"order must be 'merge_first' or 'expand_first', got {order!r}"
        )
    for value, table, what in (
        (seeding, SEEDERS, "seeding"),
        (expansion, EXPANDERS, "expansion"),
        (merging, MERGERS, "merging"),
    ):
        if value not in table:
            raise ParameterError(
                f"unknown {what} strategy {value!r}; "
                f"choose from {sorted(table)}"
            )
    name = algorithm_name or (
        f"pipeline({seeding}+{merging}+{expansion})"
    )
    timer = PhaseTimer()

    with timer.phase("kcore"):
        core = k_core(graph, k)
    if core.num_vertices <= k:
        return VCCResult([], k=k, algorithm=name, timer=timer)

    with timer.phase("seeding"):
        seeds = SEEDERS[seeding](core, k, alpha, timer)
    if not seeds:
        return VCCResult([], k=k, algorithm=name, timer=timer)

    expand = EXPANDERS[expansion]
    merge_condition = MERGERS[merging]
    components = [set(seed) for seed in seeds]

    def merge_step(pool: list[set]) -> list[set]:
        with timer.phase("merging"):
            return merging_mod.merge_components(
                core, k, pool, merge_condition, timer=timer
            )

    def expand_step(pool: list[set]) -> list[set]:
        with timer.phase("expansion"):
            return [expand(core, k, comp, me_hops, timer) for comp in pool]

    first, second = (
        (merge_step, expand_step)
        if order == "merge_first"
        else (expand_step, merge_step)
    )
    while True:
        before = {frozenset(c) for c in components}
        components = second(first(components))
        after = {frozenset(c) for c in components}
        timer.count("rounds")
        if after == before:
            break

    with timer.phase("finalize"):
        final = _finalize(components, k)
    return VCCResult(final, k=k, algorithm=name, timer=timer)


def _finalize(components: list[set], k: int) -> list[frozenset]:
    """Deduplicate, drop nested results and undersized leftovers."""
    ordered = sorted(
        {frozenset(c) for c in components}, key=len, reverse=True
    )
    kept: list[frozenset] = []
    for comp in ordered:
        if len(comp) <= k:
            continue
        if any(comp < other for other in kept):
            continue
        kept.append(comp)
    return kept
