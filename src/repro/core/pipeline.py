"""The configurable bottom-up enumeration pipeline (seed → merge → expand).

Algorithm 5 of the paper, parameterised over its three ingredients so
that every published configuration — and every ablation of Table V —
is one call:

=================  ==========  ===========  =========
configuration      seeding     expansion    merging
=================  ==========  ===========  =========
RIPPLE             QkVCS       RME          FBM
RIPPLE-ME          QkVCS       ME (h-hop)   FBM
VCCE-BU            LkVCS       UE           NBM
RIPPLE-noQkVCS     LkVCS       RME          FBM
RIPPLE-noFBM       QkVCS       RME          NBM
RIPPLE-noRME       QkVCS       UE           FBM
=================  ==========  ===========  =========

:mod:`repro.core.ripple` and :mod:`repro.core.vcce_bu` export the named
entry points built on this driver.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro import obs
from repro.core import expansion as expansion_mod
from repro.core import merging as merging_mod
from repro.core import seeding as seeding_mod
from repro.core.result import PhaseTimer, VCCResult
from repro.errors import ParameterError
from repro.flow import fastpath
from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core
from repro.resilience.deadline import Deadline, as_deadline

__all__ = [
    "bottom_up_pipeline",
    "SEEDERS",
    "EXPANDERS",
    "MERGERS",
]

Seeder = Callable[..., list[set]]
Expander = Callable[..., set]
Merger = Callable[..., bool]


def _seed_qkvcs(graph: Graph, k: int, alpha: int, timer: PhaseTimer):
    return seeding_mod.qkvcs(graph, k, alpha=alpha, timer=timer)


def _seed_lkvcs(graph: Graph, k: int, alpha: int, timer: PhaseTimer):
    return seeding_mod.lkvcs_seeds(graph, k, alpha=alpha, timer=timer)


def _expand_ue(graph: Graph, k: int, seed: set, hops, timer: PhaseTimer):
    return expansion_mod.unitary_expansion(graph, k, seed, timer=timer)


def _expand_rme(graph: Graph, k: int, seed: set, hops, timer: PhaseTimer):
    return expansion_mod.ring_expansion(graph, k, seed, timer=timer)


def _expand_me(graph: Graph, k: int, seed: set, hops, timer: PhaseTimer):
    return expansion_mod.multiple_expansion(
        graph, k, seed, hops=hops, timer=timer
    )


SEEDERS: dict[str, Seeder] = {
    "qkvcs": _seed_qkvcs,
    "lkvcs": _seed_lkvcs,
}

EXPANDERS: dict[str, Expander] = {
    "ue": _expand_ue,
    "rme": _expand_rme,
    "me": _expand_me,
}

MERGERS: dict[str, Merger] = {
    "fbm": merging_mod.flow_based_merge_condition,
    "nbm": merging_mod.neighbor_based_merge_condition,
}


def bottom_up_pipeline(
    graph: Graph,
    k: int,
    seeding: str = "qkvcs",
    expansion: str = "rme",
    merging: str = "fbm",
    alpha: int = seeding_mod.DEFAULT_ALPHA,
    me_hops: int | None = 1,
    algorithm_name: str | None = None,
    order: str = "merge_first",
    deadline: Deadline | float | None = None,
    resume_from: Iterable[frozenset] | None = None,
    certificate: bool | None = None,
) -> VCCResult:
    """Run the seed → (merge ↔ expand)* pipeline and return its result.

    Parameters mirror Algorithm 5: the graph is pruned to its k-core,
    seeded, and then merging and expansion alternate to a fixed point.
    ``order`` selects which runs first inside each round —
    ``"merge_first"`` (the paper's choice: merging seeds early avoids
    redundant expansion work) or ``"expand_first"`` (the ablation of
    DESIGN.md §5). ``me_hops`` only applies when ``expansion="me"``.

    ``deadline`` (a :class:`repro.resilience.Deadline` or seconds) is
    checked at every stage boundary; when it expires the run stops
    cleanly and returns the components found so far with
    ``status="deadline"`` and a ``checkpoint`` of the working pool. A
    ``KeyboardInterrupt`` is handled the same way with
    ``status="interrupted"``. ``resume_from`` (a previous result's
    ``checkpoint``) skips seeding and continues merging/expanding that
    pool.

    ``certificate`` overrides the flow fast path's certificate
    sparsification for this run (see :mod:`repro.flow.fastpath`):
    ``False`` forces every ME/FBM flow test onto the raw induced
    subgraph, ``True`` forces the default dense-scope certificate
    behaviour, ``None`` inherits the ambient configuration.
    """
    if certificate is not None:
        with fastpath.configured(certificate=certificate):
            return bottom_up_pipeline(
                graph,
                k,
                seeding=seeding,
                expansion=expansion,
                merging=merging,
                alpha=alpha,
                me_hops=me_hops,
                algorithm_name=algorithm_name,
                order=order,
                deadline=deadline,
                resume_from=resume_from,
            )
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    if order not in ("merge_first", "expand_first"):
        raise ParameterError(
            f"order must be 'merge_first' or 'expand_first', got {order!r}"
        )
    for value, table, what in (
        (seeding, SEEDERS, "seeding"),
        (expansion, EXPANDERS, "expansion"),
        (merging, MERGERS, "merging"),
    ):
        if value not in table:
            raise ParameterError(
                f"unknown {what} strategy {value!r}; "
                f"choose from {sorted(table)}"
            )
    name = algorithm_name or (
        f"pipeline({seeding}+{merging}+{expansion})"
    )
    budget = as_deadline(deadline)
    timer = PhaseTimer()
    # An empty checkpoint means the interrupted run never finished
    # seeding, so resuming from it must seed from scratch.
    resume = list(resume_from) if resume_from is not None else None
    if not resume:
        resume = None
    components: list[set] = (
        [] if resume is None else [set(c) for c in resume]
    )

    def stopped(status: str) -> VCCResult:
        obs.count(
            "resilience.deadline_stops"
            if status == "deadline"
            else "resilience.interrupts"
        )
        with timer.phase("finalize"):
            final = _finalize(components, k)
        return VCCResult(
            final,
            k=k,
            algorithm=name,
            timer=timer,
            status=status,
            checkpoint=[frozenset(c) for c in components],
        )

    if budget.expired():
        return stopped("deadline")
    try:
        with obs.start_span(
            "pipeline.run",
            algorithm=name,
            k=k,
            seeding=seeding,
            expansion=expansion,
            merging=merging,
        ):
            with timer.phase("kcore", k=k):
                core = k_core(graph, k)
            if core.num_vertices <= k:
                return VCCResult([], k=k, algorithm=name, timer=timer)
            if fastpath.active().csr:
                # Prime the flat-array snapshot once: the core never
                # mutates below this point, so every flow network and
                # merge round shares it (see repro.graph.csr).
                core.csr()

            if resume is None:
                if budget.expired():
                    return stopped("deadline")
                with timer.phase("seeding", strategy=seeding):
                    seeds = SEEDERS[seeding](core, k, alpha, timer)
                if not seeds:
                    return VCCResult(
                        [], k=k, algorithm=name, timer=timer
                    )
                components = [set(seed) for seed in seeds]
            if budget.expired():
                return stopped("deadline")

            expand = EXPANDERS[expansion]
            merge_condition = MERGERS[merging]
            round_no = 0

            def merge_step(pool: list[set]) -> list[set]:
                with timer.phase(
                    "merging", round=round_no, pool=len(pool)
                ):
                    return merging_mod.merge_components(
                        core, k, pool, merge_condition, timer=timer
                    )

            def expand_step(pool: list[set]) -> list[set]:
                with timer.phase(
                    "expansion", round=round_no, pool=len(pool)
                ):
                    grown: list[set] = []
                    for seed_id, comp in enumerate(pool):
                        with obs.start_span(
                            "expand.seed",
                            seed=seed_id,
                            size=len(comp),
                        ):
                            grown.append(
                                expand(core, k, comp, me_hops, timer)
                            )
                    return grown

            first, second = (
                (merge_step, expand_step)
                if order == "merge_first"
                else (expand_step, merge_step)
            )
            before = {frozenset(c) for c in components}
            while True:
                round_no += 1
                components = first(components)
                if budget.expired():
                    return stopped("deadline")
                components = second(components)
                after = {frozenset(c) for c in components}
                timer.count("rounds")
                if after == before:
                    break
                before = after
                if budget.expired():
                    return stopped("deadline")
    except KeyboardInterrupt:
        # Partial results are still valid k-VCS supersets: hand them
        # back instead of unwinding with a traceback (the CLI turns
        # this status into exit code 130).
        return stopped("interrupted")

    with timer.phase("finalize"):
        final = _finalize(components, k)
    return VCCResult(final, k=k, algorithm=name, timer=timer)


def _finalize(components: list[set], k: int) -> list[frozenset]:
    """Deduplicate, drop nested results and undersized leftovers."""
    ordered = sorted(
        {frozenset(c) for c in components}, key=len, reverse=True
    )
    kept: list[frozenset] = []
    for comp in ordered:
        if len(comp) <= k:
            continue
        if any(comp < other for other in kept):
            continue
        kept.append(comp)
    return kept
