"""Seeding algorithms: LkVCS (baseline) and QkVCS (the paper's).

The bottom-up pipeline needs k-vertex connected subgraphs (k-VCSs) to
grow from. Two generations of seeders are implemented:

* :func:`lkvcs` — the VCCE-BU baseline (Li et al.). For a start vertex,
  enumerate k-subsets of its neighbourhood (capped at α combinations),
  greedily grow each inside the 2-hop ball, and return the first
  verified k-VCS found. Slow: the combination count explodes on dense
  neighbourhoods, which is exactly the inefficiency the paper fixes.
* :func:`qkvcs` — Algorithm 4. Three stages:

  1. ``kBFS``: k rounds of edge-disjoint BFS forests; the multi-vertex
     components of the k-th forest are strong seed candidates (Lemma 4).
     Each candidate is *verified* (the certificate property guarantees
     connectivity through the whole graph, not in the induced subgraph);
     failing candidates are split along their vertex cuts so the useful
     cores survive. The verification cost is visible in the paper's own
     Figure 9 ("verifying QkVCS").
  2. ``BK-MCQ``: every maximal clique with ≥ k+1 vertices is a k-VCS by
     construction — no verification needed.
  3. LkVCS fallback for vertices still uncovered, visited in
     non-decreasing degree order.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable

from repro import obs
from repro.core.result import PhaseTimer
from repro.errors import ParameterError
from repro.flow.connectivity import find_vertex_cut, is_k_vertex_connected
from repro.graph.adjacency import Graph
from repro.graph.cliques import collect_cliques_at_least
from repro.graph.forests import k_bfs_seed_components
from repro.graph.kcore import k_core
from repro.graph.traversal import connected_components

__all__ = ["lkvcs", "kbfs_seeds", "clique_seeds", "qkvcs", "lkvcs_seeds"]

#: Default cap on neighbourhood-subset enumerations per start vertex,
#: the paper's α = 10³.
DEFAULT_ALPHA = 1000


def lkvcs(
    graph: Graph,
    k: int,
    start: Hashable,
    alpha: int = DEFAULT_ALPHA,
    timer: PhaseTimer | None = None,
    max_failed_growths: int = 25,
) -> set | None:
    """Find one k-VCS containing ``start`` within its 2-hop ball, or None.

    Faithful to the baseline's shape: enumerate k-subsets of N(start)
    (up to ``alpha`` of them), greedily densify each candidate inside
    ``N²(start)``, verify with the exact connectivity predicate.

    ``max_failed_growths`` implements the paper's "sufficient to
    reject" early exit: different starting subsets greedily grow into
    near-identical candidates, so once a few have exhausted the ball
    without verifying, the remaining combinations are hopeless too.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    if alpha < 1:
        raise ParameterError(f"alpha must be >= 1, got {alpha}")
    timer = timer or PhaseTimer()
    if graph.degree(start) < k:
        return None
    scope = graph.neighborhood([start], 2)
    ball = graph.subgraph(scope)
    neighbors = sorted(ball.neighbors(start), key=ball.degree, reverse=True)
    failures = 0
    for combo in itertools.islice(
        itertools.combinations(neighbors, k), alpha
    ):
        timer.count("lkvcs_enumerations")
        members = {start, *combo}
        grown = _grow_candidate(ball, k, members, timer)
        if grown is not None:
            return grown
        failures += 1
        if failures >= max_failed_growths:
            return None
    return None


def _grow_candidate(
    ball: Graph, k: int, members: set, timer: PhaseTimer
) -> set | None:
    """Greedily absorb ball vertices until a verified k-VCS or rejection.

    A candidate is worth verifying only once every member has internal
    degree ≥ k (a necessary condition); otherwise the best-connected
    outside vertex is absorbed. Rejects when the ball is exhausted.
    """
    members = set(members)
    # The ball is small by construction, but unbounded growth plus a
    # verification per step would still hurt; k-VCSs worth seeding from
    # are found long before this cap.
    max_growth = 4 * k + 8
    for _ in range(max_growth):
        internal_ok = len(members) > k and all(
            len(ball.neighbors(u) & members) >= k for u in members
        )
        if internal_ok:
            timer.count("lkvcs_verifications")
            if is_k_vertex_connected(ball.subgraph(members), k):
                return members
        frontier = ball.external_boundary(members)
        if not frontier:
            return None
        best = max(frontier, key=lambda u: len(ball.neighbors(u) & members))
        members.add(best)
    return None


def kbfs_seeds(
    graph: Graph,
    k: int,
    timer: PhaseTimer | None = None,
    skip_inside: set | None = None,
) -> list[set]:
    """Verified seeds from the k-round BFS forest construction.

    Components of the k-th forest are verified; a failing component is
    split along the vertex cut that disproved it and the parts are
    retried, so dense cores inside a loose component still seed.

    ``skip_inside`` short-circuits candidates that lie entirely inside
    an already-covered region (e.g. the union of clique seeds): their
    vertices are seeded anyway and merging reassembles any larger
    structure, so the flow-based verification would be pure overhead.
    """
    timer = timer or PhaseTimer()
    covered = skip_inside or set()
    pending = k_bfs_seed_components(graph, k)
    seeds: list[set] = []
    while pending:
        candidate = pending.pop()
        if len(candidate) <= k:
            continue
        if candidate <= covered:
            timer.count("kbfs_skipped_covered")
            continue
        sub = graph.subgraph(candidate)
        sub = k_core(sub, k)
        if sub.num_vertices <= k:
            continue
        for component in connected_components(sub):
            if len(component) <= k:
                continue
            piece = sub.subgraph(component)
            timer.count("kbfs_verifications")
            cut = find_vertex_cut(piece, k)
            if cut is None:
                seeds.append(set(component))
                continue
            # Split along the cut and retry both (overlapped) halves.
            remainder = piece.subgraph(component - cut)
            for part in connected_components(remainder):
                pending.append(part | cut)
    return seeds


def clique_seeds(
    graph: Graph, k: int, timer: PhaseTimer | None = None
) -> list[set]:
    """Seeds from maximal cliques of size ≥ k+1 (BK-MCQ stage)."""
    timer = timer or PhaseTimer()
    seeds = [set(c) for c in collect_cliques_at_least(graph, k + 1)]
    if seeds:
        timer.count("cliques_found", len(seeds))
    return seeds


def lkvcs_seeds(
    graph: Graph,
    k: int,
    alpha: int = DEFAULT_ALPHA,
    covered: set | None = None,
    timer: PhaseTimer | None = None,
) -> list[set]:
    """LkVCS sweep over all still-uncovered vertices (baseline seeding).

    Vertices are visited in non-decreasing degree order; every returned
    seed marks its members covered so later vertices skip.
    """
    timer = timer or PhaseTimer()
    covered = set() if covered is None else set(covered)
    seeds: list[set] = []
    order = sorted(
        (u for u in graph.vertices() if u not in covered), key=graph.degree
    )
    for vertex in order:
        if vertex in covered:
            continue
        seed = lkvcs(graph, k, vertex, alpha=alpha, timer=timer)
        if seed is not None:
            seeds.append(seed)
            covered |= seed
    obs.count("seeding.lkvcs_sweep_seeds", len(seeds))
    return seeds


def qkvcs(
    graph: Graph,
    k: int,
    alpha: int = DEFAULT_ALPHA,
    timer: PhaseTimer | None = None,
) -> list[set]:
    """The paper's quick seeding (Algorithm 4): kBFS + BK-MCQ + fallback.

    Returns a deduplicated list of verified k-VCS seed sets. The
    ``kbfs_covered`` / ``clique_covered`` counters feed Table VI.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    timer = timer or PhaseTimer()

    # Cliques first: they are k-VCSs by construction (no verification),
    # and kBFS candidates wholly inside clique coverage can then skip
    # their expensive flow-based verification.
    with obs.start_span("seeding.cliques"):
        from_cliques = clique_seeds(graph, k, timer=timer)
        obs.set_span_attrs(seeds=len(from_cliques))
    clique_covered: set = (
        set().union(*from_cliques) if from_cliques else set()
    )
    with obs.start_span("seeding.kbfs"):
        from_kbfs = kbfs_seeds(
            graph, k, timer=timer, skip_inside=clique_covered
        )
        obs.set_span_attrs(seeds=len(from_kbfs))
    kbfs_covered: set = set().union(*from_kbfs) if from_kbfs else set()
    timer.count("kbfs_covered", len(kbfs_covered))
    timer.count("clique_covered", len(clique_covered))
    obs.count("seeding.clique_seeds", len(from_cliques))
    obs.count("seeding.kbfs_seeds", len(from_kbfs))

    if from_kbfs:
        seeds = _dedupe(from_kbfs + from_cliques)
    else:
        # Distinct maximal cliques never duplicate or contain each
        # other, so deduping them alone reduces to _dedupe's output
        # order (size-descending, stable) over fresh copies.
        seeds = [
            set(c) for c in sorted(from_cliques, key=len, reverse=True)
        ]
    covered = kbfs_covered | clique_covered
    with obs.start_span("seeding.fallback"):
        fallback = lkvcs_seeds(
            graph, k, alpha=alpha, covered=covered, timer=timer
        )
        obs.set_span_attrs(seeds=len(fallback))
    timer.count(
        "fallback_covered",
        len(set().union(*fallback)) if fallback else 0,
    )
    obs.count("seeding.fallback_seeds", len(fallback))
    # ``seeds`` is already deduplicated and emerges from _dedupe in
    # size-sorted order, so re-deduping it alone is the identity map —
    # only an actual fallback contribution needs the second pass.
    final = _dedupe(seeds + fallback) if fallback else seeds
    obs.count("seeding.seeds", len(final))
    obs.trace_event(
        "seeding.qkvcs",
        cliques=len(from_cliques),
        kbfs=len(from_kbfs),
        fallback=len(fallback),
        seeds=len(final),
    )
    return final


def _dedupe(seeds: list[set]) -> list[set]:
    """Drop duplicate seeds and seeds fully contained in a larger one.

    Containment is checked through an inverted vertex → kept-seed
    index: a seed can only be contained in a kept seed that owns its
    rarest member, so each candidate compares against that member's
    owner list instead of every kept seed (the naive all-pairs scan is
    quadratic in the seed count and was a measured hot spot). The kept
    list is identical to the naive scan's.
    """
    unique: list[set] = []
    owners: dict = {}  # vertex -> indices of kept seeds containing it
    owners_get = owners.get
    for seed in sorted(seeds, key=len, reverse=True):
        rarest: list | None = None
        uncovered = not seed and bool(unique)
        for v in seed:
            holding = owners_get(v)
            if not holding:
                rarest = None
                break
            if rarest is None or len(holding) < len(rarest):
                rarest = holding
        else:
            # Every member is owned somewhere (or the seed is empty —
            # contained in any kept seed, matching ``seed <= kept``).
            if uncovered or (
                rarest is not None
                and any(seed <= unique[at] for at in rarest)
            ):
                continue
        at = len(unique)
        kept = set(seed)
        unique.append(kept)
        for v in kept:
            owners.setdefault(v, []).append(at)
    return unique
