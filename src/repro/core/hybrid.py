"""Hybrid enumeration: bottom-up speed with top-down exactness.

The paper's related work (Li et al., DASFAA'17 / WWW J.'20) combines
the two frameworks: the bottom-up pass is fast but heuristic, the
top-down pass is exact but spends most of its time *certifying* final
components (a Θ(n)-flow scan per component that finds no cut).

:func:`vcce_hybrid` keeps the top-down partitioning — which is what
makes the result exact — but skips the certification scan whenever the
current component is exactly a component the bottom-up pass already
produced: every bottom-up component is a verified k-VCS by
construction (RIPPLE's expansion and merging steps only ever build
k-connected sets), so re-deriving "no cut below k" from flows would be
wasted work. Components the heuristic missed or fragmented still go
through the full exact machinery, so the output equals
:func:`repro.core.vcce_td.vcce_td`'s exactly — property-tested in
``tests/core/test_hybrid.py``.
"""

from __future__ import annotations

from repro.core.result import PhaseTimer, VCCResult
from repro.core.ripple import ripple
from repro.core.vcce_td import _drop_nested
from repro.errors import ParameterError
from repro.flow.connectivity import find_vertex_cut
from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core
from repro.graph.traversal import connected_components

__all__ = ["vcce_hybrid"]


def vcce_hybrid(graph: Graph, k: int, alpha: int = 1000) -> VCCResult:
    """Exact k-VCC enumeration seeded by a bottom-up pass.

    Phase 1 runs RIPPLE; phase 2 runs the top-down partition loop, but
    certifies any component that matches a phase-1 component for free.
    Output is exact (identical to ``vcce_td``); the win over plain
    top-down grows with how much of the graph the heuristic already
    resolved.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    timer = PhaseTimer()
    with timer.phase("bottom_up"):
        heuristic = ripple(graph, k, alpha=alpha)
    known_kvcs = {frozenset(c) for c in heuristic.components}

    found: set[frozenset] = set()
    with timer.phase("partition"):
        pending: list[set] = [graph.vertex_set()]
        while pending:
            members = pending.pop()
            if len(members) <= k:
                continue
            sub = k_core(graph.subgraph(members), k)
            timer.count("partitions")
            for component in connected_components(sub):
                if len(component) <= k:
                    continue
                frozen = frozenset(component)
                if frozen in known_kvcs:
                    # Already verified k-connected by the bottom-up
                    # pass: certification (the expensive no-cut scan)
                    # is free.
                    timer.count("certifications_skipped")
                    found.add(frozen)
                    continue
                piece = sub.subgraph(component)
                cut = find_vertex_cut(piece, k)
                timer.count("cut_searches")
                if cut is None:
                    found.add(frozen)
                    continue
                remainder = piece.subgraph(component - cut)
                for part in connected_components(remainder):
                    pending.append(part | cut)
    with timer.phase("finalize"):
        components = _drop_nested(found)
    return VCCResult(
        components, k=k, algorithm="VCCE-Hybrid", timer=timer
    )
