"""Core k-VCC enumeration algorithms: the paper's contribution + baselines."""

from repro.core.expansion import (
    multiple_expansion,
    ring_expansion,
    unitary_expansion,
)
from repro.core.hierarchy import (
    kvcc_hierarchy,
    max_kvcc_level,
    membership_levels,
)
from repro.core.hybrid import vcce_hybrid
from repro.core.merging import (
    flow_based_merge_condition,
    merge_components,
    neighbor_based_merge_condition,
)
from repro.core.pipeline import bottom_up_pipeline
from repro.core.query import kvcc_containing
from repro.core.result import PhaseTimer, VCCResult
from repro.core.ripple import (
    ripple,
    ripple_me,
    ripple_no_fbm,
    ripple_no_qkvcs,
    ripple_no_rme,
)
from repro.core.seeding import (
    DEFAULT_ALPHA,
    clique_seeds,
    kbfs_seeds,
    lkvcs,
    lkvcs_seeds,
    qkvcs,
)
from repro.core.vcce_bu import vcce_bu
from repro.core.vcce_td import vcce_td
from repro.core.verify import ComponentReport, verify_component, verify_result

__all__ = [
    "ComponentReport",
    "DEFAULT_ALPHA",
    "PhaseTimer",
    "VCCResult",
    "bottom_up_pipeline",
    "clique_seeds",
    "flow_based_merge_condition",
    "kbfs_seeds",
    "kvcc_containing",
    "kvcc_hierarchy",
    "lkvcs",
    "lkvcs_seeds",
    "max_kvcc_level",
    "membership_levels",
    "merge_components",
    "multiple_expansion",
    "neighbor_based_merge_condition",
    "qkvcs",
    "ring_expansion",
    "ripple",
    "ripple_me",
    "ripple_no_fbm",
    "ripple_no_qkvcs",
    "ripple_no_rme",
    "unitary_expansion",
    "vcce_bu",
    "vcce_hybrid",
    "vcce_td",
    "verify_component",
    "verify_result",
]
