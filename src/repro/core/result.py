"""Result and instrumentation types shared by every enumeration algorithm.

Each algorithm returns a :class:`VCCResult` carrying the enumerated
components plus the per-phase wall-clock timings and operation counters
the paper's Figure 9 / Table VI analyses need. Results round-trip
through JSON for the CLI and for archiving benchmark output.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ParameterError, ParseError

__all__ = ["RESULT_STATUSES", "PhaseTimer", "VCCResult"]

#: Valid values of :attr:`VCCResult.status`. ``completed`` is a full
#: enumeration; ``deadline`` and ``interrupted`` are clean partial stops
#: (components found so far, checkpoint for resumption); ``degraded``
#: is a full enumeration that lost its worker pool along the way and
#: finished in-process.
RESULT_STATUSES = ("completed", "deadline", "degraded", "interrupted")


class PhaseTimer:
    """Accumulates wall-clock time and counters per named phase.

    Every recording is mirrored to the thread's active
    :mod:`repro.obs` collector (phases under a ``phase.`` prefix), so
    enabling observability aggregates the existing per-result timers
    without touching the algorithms.

    >>> timer = PhaseTimer()
    >>> with timer.phase("seeding"):
    ...     pass
    >>> timer.seconds("seeding") >= 0
    True
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counters: dict[str, int] = {}

    def phase(self, name: str, **attrs) -> "_PhaseContext":
        """Context manager adding the block's duration to ``name``.

        When the active collector records spans, the same enter/exit
        pair also opens a ``phase.<name>`` span carrying ``attrs`` —
        identical boundaries, so the span tree's per-phase totals
        reconcile with the flat ``phase.*`` seconds by construction.
        """
        return _PhaseContext(self, name, attrs)

    def add_seconds(self, name: str, seconds: float) -> None:
        """Accumulate raw seconds into a phase (for external timers)."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        obs.add_seconds(f"phase.{name}", seconds)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump an operation counter (flow calls, clique tests, …)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + amount
        # Inlined obs.count: this runs on every flow call and merge
        # test, and the extra frame shows up in the gated perf cases.
        collector = obs._tls.collector
        if not collector.is_noop:
            collector.count(name, amount)

    def seconds(self, name: str) -> float:
        """Total seconds recorded for a phase (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    @property
    def phases(self) -> dict[str, float]:
        """A copy of the phase → seconds mapping."""
        return dict(self._seconds)

    @property
    def counters(self) -> dict[str, int]:
        """A copy of the counter → value mapping."""
        return dict(self._counters)

    def total_seconds(self) -> float:
        """Sum over all recorded phases."""
        return sum(self._seconds.values())

    def proportions(self) -> dict[str, float]:
        """Phase shares of total time (empty if nothing recorded)."""
        total = self.total_seconds()
        if total == 0:
            return {}
        return {name: s / total for name, s in self._seconds.items()}


class _PhaseContext:
    """Context manager produced by :meth:`PhaseTimer.phase`."""

    def __init__(
        self, timer: PhaseTimer, name: str, attrs: dict | None = None
    ) -> None:
        self._timer = timer
        self._name = name
        self._attrs = attrs or {}
        self._start = 0.0
        self._span = None

    def __enter__(self) -> "_PhaseContext":
        self._span = obs.start_span(f"phase.{self._name}", **self._attrs)
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self._span.__exit__(*exc_info)
        # add_seconds mirrors into the flat obs phase totals; keep it
        # after the span close so both see the same boundaries.
        self._timer.add_seconds(self._name, elapsed)


@dataclass
class VCCResult:
    """Output of a k-VCC enumeration run.

    Attributes
    ----------
    components:
        The enumerated components as frozensets of vertices, sorted by
        size descending then lexicographically for deterministic output.
    k:
        The connectivity threshold the run used.
    algorithm:
        Human-readable name of the configuration that produced this.
    timer:
        Phase timings and counters collected during the run.
    status:
        One of :data:`RESULT_STATUSES` — how the run ended.
    checkpoint:
        For partial runs, the raw component pool at the stop point
        (supersets-in-progress, not yet finalized); feed it back via
        ``resume_from=`` to continue the enumeration. ``None`` for
        completed runs.
    """

    components: list[frozenset]
    k: int
    algorithm: str
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    status: str = "completed"
    checkpoint: list[frozenset] | None = None

    def __post_init__(self) -> None:
        if self.status not in RESULT_STATUSES:
            raise ParameterError(
                f"status must be one of {RESULT_STATUSES}, "
                f"got {self.status!r}"
            )
        self.components = sorted(
            (frozenset(c) for c in self.components),
            key=lambda c: (-len(c), sorted(map(repr, c))),
        )
        if self.checkpoint is not None:
            self.checkpoint = sorted(
                (frozenset(c) for c in self.checkpoint),
                key=lambda c: (-len(c), sorted(map(repr, c))),
            )

    @property
    def num_components(self) -> int:
        """How many components were enumerated."""
        return len(self.components)

    @property
    def is_partial(self) -> bool:
        """Whether the run stopped before enumerating everything."""
        return self.status in ("deadline", "interrupted")

    def covered_vertices(self) -> set:
        """Union of all component vertex sets."""
        covered: set = set()
        for comp in self.components:
            covered |= comp
        return covered

    def component_containing(self, vertex) -> frozenset | None:
        """The first (largest) component containing ``vertex``, if any."""
        for comp in self.components:
            if vertex in comp:
                return comp
        return None

    def to_json(self) -> str:
        """Serialise to a JSON document (components, k, algorithm,
        phase timings, counters). Vertex labels must be JSON-safe
        (int/str — everything this library produces)."""
        payload = {
            "algorithm": self.algorithm,
            "k": self.k,
            "status": self.status,
            "components": [sorted(c, key=repr) for c in self.components],
            "phases": self.timer.phases,
            "counters": self.timer.counters,
        }
        if self.checkpoint is not None:
            payload["checkpoint"] = [
                sorted(c, key=repr) for c in self.checkpoint
            ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, document: str) -> "VCCResult":
        """Rebuild a result from :meth:`to_json` output."""
        try:
            payload = json.loads(document)
            timer = PhaseTimer()
            # Write the internal dicts directly: deserialising archived
            # numbers must not leak into the live obs collector.
            for name, seconds in payload.get("phases", {}).items():
                timer._seconds[str(name)] = float(seconds)
            for name, value in payload.get("counters", {}).items():
                timer._counters[str(name)] = int(value)
            checkpoint = payload.get("checkpoint")
            return cls(
                components=[frozenset(c) for c in payload["components"]],
                k=payload["k"],
                algorithm=payload["algorithm"],
                timer=timer,
                status=str(payload.get("status", "completed")),
                checkpoint=(
                    None
                    if checkpoint is None
                    else [frozenset(c) for c in checkpoint]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParseError(f"not a valid VCCResult document: {exc}") from exc

    def summary(self) -> str:
        """One-line human-readable description of the result."""
        sizes = ", ".join(str(len(c)) for c in self.components[:8])
        if len(self.components) > 8:
            sizes += ", …"
        note = "" if self.status == "completed" else f" [{self.status}]"
        return (
            f"{self.algorithm}: {self.num_components} {self.k}-VCC(s) "
            f"covering {len(self.covered_vertices())} vertices "
            f"(sizes: {sizes or 'none'}){note}"
        )
