"""VCCE-BU: the baseline bottom-up enumerator (Li et al., WWW J. 2020).

LkVCS enumeration seeding + Unitary Expansion + Neighbor-Based Merging.
Implemented faithfully *including its two known defects* — UE missing
mutually supporting vertex groups and NBM over-counting boundary
neighbours — because reproducing its accuracy gap against RIPPLE is the
heart of Table III.
"""

from __future__ import annotations

from repro.core.pipeline import bottom_up_pipeline
from repro.core.result import VCCResult
from repro.core.seeding import DEFAULT_ALPHA
from repro.graph.adjacency import Graph
from repro.resilience.deadline import Deadline

__all__ = ["vcce_bu"]


def vcce_bu(
    graph: Graph,
    k: int,
    alpha: int = DEFAULT_ALPHA,
    deadline: Deadline | float | None = None,
    certificate: bool | None = None,
) -> VCCResult:
    """Enumerate k-VCCs with the VCCE-BU baseline (LkVCS + UE + NBM).

    The output is heuristic: components may be subsets of true k-VCCs
    (UE under-expansion) and may even fail k-vertex connectivity (NBM
    over-merging) — both deliberately reproduced behaviours.
    """
    return bottom_up_pipeline(
        graph,
        k,
        seeding="lkvcs",
        expansion="ue",
        merging="nbm",
        alpha=alpha,
        algorithm_name="VCCE-BU",
        deadline=deadline,
        certificate=certificate,
    )
