"""The k-VCC hierarchy: components for every k at once (paper Figure 1).

k-VCCs nest: every (k+1)-VCC lies inside some k-VCC (removing fewer
vertices can only disconnect less). Figure 1 of the paper illustrates
exactly this — the same 16-vertex graph decomposed at k = 1, 2, 3, 4.
:func:`kvcc_hierarchy` computes the full decomposition, recursing *into*
each level's components rather than re-scanning the whole graph, so the
work at level k+1 is confined to the (usually much smaller) level-k
components.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.core.vcce_td import vcce_td
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.traversal import connected_components

__all__ = ["kvcc_hierarchy", "max_kvcc_level", "membership_levels"]


def kvcc_hierarchy(
    graph: Graph, max_k: int | None = None
) -> dict[int, list[frozenset]]:
    """Exact k-VCC decomposition for every k from 1 up to ``max_k``.

    Level 1 is the connected components (with > 1 vertex); each later
    level is computed inside the previous level's components. Stops at
    the first empty level when ``max_k`` is None.

    >>> from repro.graph import clique_graph
    >>> levels = kvcc_hierarchy(clique_graph(4))
    >>> sorted(levels)
    [1, 2, 3]
    """
    if max_k is not None and max_k < 1:
        raise ParameterError(f"max_k must be >= 1, got {max_k}")
    levels: dict[int, list[frozenset]] = {}
    level_one = [
        frozenset(c)
        for c in connected_components(graph)
        if len(c) > 1
    ]
    if not level_one:
        return levels
    levels[1] = sorted(level_one, key=lambda c: (-len(c), sorted(map(repr, c))))
    k = 2
    current = levels[1]
    while current and (max_k is None or k <= max_k):
        next_level: list[frozenset] = []
        for parent in current:
            sub = graph.subgraph(parent)
            next_level.extend(vcce_td(sub, k).components)
        if not next_level:
            break
        levels[k] = sorted(
            set(next_level), key=lambda c: (-len(c), sorted(map(repr, c)))
        )
        current = levels[k]
        k += 1
    return levels


def max_kvcc_level(graph: Graph) -> int:
    """The largest k with a non-empty k-VCC level (0 for edgeless graphs)."""
    levels = kvcc_hierarchy(graph)
    return max(levels) if levels else 0


def membership_levels(graph: Graph) -> dict[Hashable, int]:
    """For each vertex, the deepest hierarchy level containing it.

    A vertex's level is the largest k such that it belongs to some
    k-VCC — a connectivity-based centrality ("coreness done right"):
    unlike the core number it cannot be inflated by dense-but-separable
    neighbourhoods.
    """
    depth: dict[Hashable, int] = {u: 0 for u in graph.vertices()}
    for k, components in kvcc_hierarchy(graph).items():
        for component in components:
            for u in component:
                depth[u] = max(depth[u], k)
    return depth
