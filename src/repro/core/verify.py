"""Verification of enumeration results: connectivity and maximality.

A claimed k-VCC must satisfy two properties (Definition 2):

1. **k-vertex connectivity** of the induced subgraph — checked exactly
   with the flow-based predicate;
2. **maximality** — no proper superset is a k-VCS. Theorem 2 makes
   this checkable: unrestricted Multiple Expansion from a k-VCS yields
   the unique maximal k-connected superset, so a set is maximal iff ME
   cannot grow it.

These checks are exact but expensive (many max-flow calls); they exist
for auditing heuristic output, tests, and the CLI ``verify`` command —
not for the enumeration hot path.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

from repro.core.expansion import multiple_expansion
from repro.core.result import VCCResult
from repro.errors import ParameterError
from repro.flow.connectivity import is_k_vertex_connected
from repro.graph.adjacency import Graph

__all__ = ["ComponentReport", "verify_component", "verify_result"]


@dataclass(frozen=True)
class ComponentReport:
    """Audit outcome for one claimed k-VCC."""

    members: frozenset
    k: int
    is_k_connected: bool
    is_maximal: bool
    missed_vertices: frozenset

    @property
    def is_valid_kvcc(self) -> bool:
        """True iff the component is a genuine k-VCC of the graph."""
        return self.is_k_connected and self.is_maximal

    def describe(self) -> str:
        """One-line human-readable verdict."""
        if self.is_valid_kvcc:
            return (
                f"OK: {len(self.members)} vertices form a maximal "
                f"{self.k}-VCC"
            )
        problems = []
        if not self.is_k_connected:
            problems.append(f"not {self.k}-vertex connected")
        if not self.is_maximal:
            problems.append(
                f"not maximal (misses {len(self.missed_vertices)} "
                f"absorbable vertices)"
            )
        return f"FAIL: {len(self.members)} vertices — " + "; ".join(problems)


def verify_component(
    graph: Graph, members: Iterable[Hashable], k: int
) -> ComponentReport:
    """Exactly audit one claimed k-VCC of ``graph``.

    Maximality is only meaningful for k-connected sets; for sets that
    fail connectivity it is reported as False with no missed vertices.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    member_set = frozenset(members)
    connected = is_k_vertex_connected(graph.subgraph(member_set), k)
    if not connected:
        return ComponentReport(
            members=member_set,
            k=k,
            is_k_connected=False,
            is_maximal=False,
            missed_vertices=frozenset(),
        )
    grown = multiple_expansion(graph, k, member_set, hops=None)
    missed = frozenset(grown - member_set)
    return ComponentReport(
        members=member_set,
        k=k,
        is_k_connected=True,
        is_maximal=not missed,
        missed_vertices=missed,
    )


def verify_result(graph: Graph, result: VCCResult) -> list[ComponentReport]:
    """Audit every component of an enumeration result."""
    return [
        verify_component(graph, component, result.k)
        for component in result.components
    ]
