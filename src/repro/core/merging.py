"""Merging conditions for pairs of k-vertex connected subgraphs.

* :func:`neighbor_based_merge_condition` — NBM (Proposition 1), the
  VCCE-BU baseline. Counts overlap plus the smaller side's pure
  neighbour set. **Intentionally unsound**: boundary vertices with
  several neighbours across the cut get counted multiple times, so NBM
  can merge two sides whose actual connectivity is below k (paper
  Figure 3). It is implemented verbatim because reproducing its failure
  is half of the accuracy story.
* :func:`flow_based_merge_condition` — FBM (Theorem 3). Attaches σ to
  all of S and τ to all of S' and merges iff ``max_flow(σ → τ) ≥ k``
  inside ``G[S ∪ S']``; an overlap of ≥ k vertices short-circuits the
  flow (any separator of the union would have to swallow the overlap).
  Dense unions run the flow on the CKT sparse certificate of the union
  instead (same verdict, ≤ k·(n-1) arcs — see
  :func:`repro.graph.forests.certificate_for_flow`).
* :func:`merge_components` — the fixed-point driver (Algorithm 2): keeps
  trying pairs until no two components merge, with a size-descending
  order so big components absorb small ones early. Instead of rescanning
  all O(p²) pairs per round, an inverted vertex→component index plus a
  boundary-adjacency candidate heap surfaces exactly the pairs that
  touch, and a rejected-pair memo skips re-testing pairs neither of
  whose sides changed since the last rejection (the whole final
  round's flow work) — both invisible in the output, the test sequence
  over touching pairs is byte-identical to the naive scan.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro import obs
from repro.core.expansion import SIGMA
from repro.core.result import PhaseTimer
from repro.errors import ParameterError
from repro.flow import fastpath
from repro.flow.network import VertexSplitNetwork
from repro.graph.adjacency import Graph
from repro.graph.forests import certificate_for_flow

__all__ = [
    "neighbor_based_merge_condition",
    "flow_based_merge_condition",
    "merge_components",
    "TAU",
]

#: Label of the virtual vertex attached to the second side (Theorem 3).
TAU = "__tau__"

MergeCondition = Callable[[Graph, int, set, set, PhaseTimer], bool]


def neighbor_based_merge_condition(
    graph: Graph, k: int, side_a: set, side_b: set, timer: PhaseTimer
) -> bool:
    """NBM, Proposition 1 of the paper (deliberately flawed baseline).

    ``|S ∩ S'| + min(|N_{G[S' \\ S]}(S \\ S')|, |N_{G[S \\ S']}(S' \\ S)|) ≥ k``
    """
    timer.count("merge_checks")
    obs.count("merge.tests_attempted")
    overlap = side_a & side_b
    pure_a = side_a - side_b
    pure_b = side_b - side_a
    # Pure neighbours of A inside B: vertices of B \ A adjacent to A \ B
    # (isdisjoint early-exits without materialising the intersection).
    neighbors = graph.neighbors
    neighbors_in_b = {
        v for v in pure_b if not pure_a.isdisjoint(neighbors(v))
    }
    neighbors_in_a = {
        v for v in pure_a if not pure_b.isdisjoint(neighbors(v))
    }
    verdict = (
        len(overlap) + min(len(neighbors_in_b), len(neighbors_in_a)) >= k
    )
    obs.count("merge.tests_accepted" if verdict else "merge.tests_rejected")
    return verdict


def flow_based_merge_condition(
    graph: Graph, k: int, side_a: set, side_b: set, timer: PhaseTimer
) -> bool:
    """FBM, Theorem 3: merge iff σ and τ are k-connected in the union."""
    timer.count("merge_checks")
    obs.count("merge.tests_attempted")
    overlap = len(side_a & side_b)
    if overlap >= k:
        obs.count("merge.tests_accepted")
        obs.count("merge.overlap_short_circuits")
        return True
    # Exact rejection bound (NBM's count, Proposition 1, sound in this
    # direction): a σ→τ path either passes through an overlap vertex or
    # crosses between the pure sides, and vertex-disjoint paths cross
    # through *distinct* boundary vertices. So κ(σ, τ) can reach k only
    # if each pure side has ≥ k - overlap boundary vertices — checked
    # with an early-exit scan before paying for a network build.
    needed = k - overlap
    # Direct private-dict access: the scan probes every pure-side
    # vertex on the ~97% of tests the bound rejects, and the accessor
    # costs a Python frame per probe.
    adj = graph._adj
    pure_a = side_a - side_b
    pure_b = side_b - side_a
    for near, far in ((pure_a, pure_b), (pure_b, pure_a)):
        boundary = 0
        for v in near:
            if not far.isdisjoint(adj[v]):
                boundary += 1
                if boundary >= needed:
                    break
        if boundary < needed:
            obs.count("merge.tests_rejected")
            obs.count("merge.bound_short_circuits")
            return False
    union = side_a | side_b
    config = fastpath.active()
    host = graph
    if config.certificate:
        certificate = certificate_for_flow(
            graph, union, k, config.certificate_factor
        )
        if certificate is not None:
            host = certificate
    network = VertexSplitNetwork(
        host,
        union,
        virtual_sources={SIGMA: side_a, TAU: side_b},
    )
    timer.count("fbm_flow_calls")
    verdict = network.max_flow(SIGMA, TAU, cutoff=k) >= k
    obs.count("merge.tests_accepted" if verdict else "merge.tests_rejected")
    return verdict


def merge_components(
    graph: Graph,
    k: int,
    components: list[set],
    condition: MergeCondition,
    timer: PhaseTimer | None = None,
) -> list[set]:
    """Merge components pairwise until no pair satisfies ``condition``.

    Only pairs that touch (shared vertices or at least one crossing
    edge) are ever tested — disjoint far-apart subgraphs can never be
    k-connected together. The touch relation is computed **once**, in
    stable component-uid space, from an inverted vertex→component
    index (on dense CSR ids when the host graph carries a current
    snapshot, on labels otherwise): merging never adds graph edges, so
    ``touching(A ∪ B) = touching(A) ∪ touching(B)`` and a merge just
    unions the two sides' touch sets, with uids of absorbed components
    resolved through an absorbed-into map at query time. No vertex is
    ever rescanned after the initial pass. Pairs already rejected are
    skipped until one side changes (uid + version memo); the sequence
    of condition evaluations (and therefore the result) matches the
    naive all-pairs scan exactly.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    timer = timer or PhaseTimer()
    pool = [set(c) for c in components]
    # CSR fast path: with a current flat snapshot of the host graph,
    # the one-time inverted-index pass runs on dense integer ids (one
    # plain-list row per vertex) instead of label sets. The touch sets
    # are identical either way, so the evaluation sequence — and the
    # result — does not change.
    csr = None
    if fastpath.active().csr:
        getter = getattr(graph, "csr_if_current", None)
        if getter is not None:
            csr = getter()
    ids_pool: list[set] | None = None
    if csr is not None:
        lookup = csr.index.__getitem__
        try:
            ids_pool = [set(map(lookup, c)) for c in pool]
        except KeyError:
            # A component vertex outside the snapshot (caller passed a
            # stale graph): stay on the label path.
            ids_pool = None

    # One vertex-level pass: touch[uid] = uids of every component that
    # shares a vertex with uid's component or is adjacent to it. The
    # pass goes through per-vertex *reach* sets (owners of the closed
    # neighbourhood): components overlap heavily, so computing each
    # vertex's reach once and multi-unioning per component does far
    # less set work than rescanning every member's adjacency per
    # component — with an identical result.
    if ids_pool is not None:
        owner_of: list = [None] * csr.n
        for uid, component in enumerate(ids_pool):
            for g in component:
                owners = owner_of[g]
                if owners is None:
                    owners = owner_of[g] = set()
                owners.add(uid)
        rows = csr.rows_list()
        reach: list = [None] * csr.n
        for g, owners in enumerate(owner_of):
            if owners is None:
                continue
            found: set = set(owners)
            for w in rows[g]:
                others = owner_of[w]
                if others is not None:
                    found |= others
            reach[g] = found
        touch: list[set] = [
            set().union(*map(reach.__getitem__, component))
            for component in ids_pool
        ]
    else:
        owner_map: dict = {}
        for uid, component in enumerate(pool):
            for v in component:
                owner_map.setdefault(v, set()).add(uid)
        neighbors = graph.neighbors
        get_owner = owner_map.get
        reach_map: dict = {}
        for v, owners in owner_map.items():
            found = set(owners)
            for w in neighbors(v):
                others = get_owner(w)
                if others is not None:
                    found |= others
            reach_map[v] = found
        touch = [
            set().union(*map(reach_map.__getitem__, component))
            for component in pool
        ]

    # Component identity survives merges (the absorbing side keeps its
    # uid, bumping its version), so a rejected pair needs re-testing
    # only when one side's (uid, version) changed. ``absorbed_into``
    # maps a dead uid to its absorber; chasing it resolves any stale
    # uid in a touch set to the component that now owns its vertices.
    total = len(pool)
    uids = list(range(total))
    versions = [0] * total
    # uids are dense 0..total-1 and never grow, so the absorbed-into
    # map and the per-round position map are plain lists (indexing
    # beats dict probes in ``touching``, the hottest merge-driver loop).
    absorbed_into: list[int | None] = [None] * total
    # The active collector cannot change mid-call (it is installed
    # around the whole pipeline, thread-locally), so probe once whether
    # anything is recording instead of per condition test.
    plain = obs.get_collector().is_noop
    rejected: set[tuple] = set()
    merged_any = True
    round_no = 0
    while merged_any:
        merged_any = False
        round_no += 1
        obs.count("merge.rounds")
        obs.trace_event("merge.round", pool=len(pool))
        with obs.start_span(
            "merge.round", round=round_no, pool=len(pool)
        ):
            sizes = [len(component) for component in pool]
            order = sorted(
                range(len(pool)), key=sizes.__getitem__, reverse=True
            )
            pool = [pool[p] for p in order]
            uids = [uids[p] for p in order]
            versions = [versions[p] for p in order]
            position_of: list = [None] * total
            for p, uid in enumerate(uids):
                position_of[uid] = p
            alive = [True] * len(pool)
            alive_count = len(pool)
            alive_before = 0  # alive positions strictly below i
            skipped_by_index = 0

            def touching(touched: set) -> set[int]:
                """Current alive positions of a uid-space touch set."""
                found: set[int] = set()
                found_add = found.add
                for uid in touched:
                    root = absorbed_into[uid]
                    if root is not None:
                        # Chase to the live absorber, compressing the
                        # path so the next query resolves in one hop.
                        parent = absorbed_into[root]
                        while parent is not None:
                            root = parent
                            parent = absorbed_into[root]
                        absorbed_into[uid] = root
                        uid = root
                    p = position_of[uid]
                    if p is not None and alive[p]:
                        found_add(p)
                return found

            for i in range(len(pool)):
                if not alive[i]:
                    continue
                current = pool[i]
                beyond = alive_count - alive_before - 1
                candidates = [
                    p for p in touching(touch[uids[i]]) if p > i
                ]
                heapq.heapify(candidates)
                queued = set(candidates)
                examined = 0
                last = i
                while candidates:
                    j = heapq.heappop(candidates)
                    if j <= last or not alive[j]:
                        continue
                    last = j
                    examined += 1
                    key = (uids[i], versions[i], uids[j], versions[j])
                    if key in rejected:
                        obs.count("merge.tests_memoized")
                        continue
                    other = pool[j]
                    if plain:
                        # Uninstrumented runs skip the span machinery
                        # (and its attribute-list allocations) — this
                        # is the innermost loop of the merge phase.
                        accepted = condition(graph, k, current, other, timer)
                    else:
                        with obs.start_span(
                            "merge.test",
                            pair=[i, j],
                            sizes=[len(current), len(other)],
                        ):
                            accepted = condition(
                                graph, k, current, other, timer
                            )
                            obs.set_span_attrs(accepted=accepted)
                    if not accepted:
                        rejected.add(key)
                        continue
                    current |= other
                    other_touch = touch[uids[j]]
                    touch[uids[i]] |= other_touch
                    absorbed_into[uids[j]] = uids[i]
                    alive[j] = False
                    alive_count -= 1
                    versions[i] += 1
                    timer.count("merges")
                    merged_any = True
                    # The grown component may touch positions the old
                    # one did not; only positions past the scan pointer
                    # matter (earlier ones get retried next round, just
                    # as the naive scan would).
                    for p in touching(other_touch):
                        if p > last and alive[p] and p not in queued:
                            queued.add(p)
                            heapq.heappush(candidates, p)
                skipped_by_index += max(0, beyond - examined)
                alive_before += 1
            # One emission per round (the counter is a sum either way);
            # per-seed emission was a measurable slice of the driver.
            obs.count("merge.pairs_skipped_by_index", skipped_by_index)
            pool = [c for c, a in zip(pool, alive) if a]
            uids = [u for u, a in zip(uids, alive) if a]
            versions = [v for v, a in zip(versions, alive) if a]
    return pool
