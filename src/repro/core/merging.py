"""Merging conditions for pairs of k-vertex connected subgraphs.

* :func:`neighbor_based_merge_condition` — NBM (Proposition 1), the
  VCCE-BU baseline. Counts overlap plus the smaller side's pure
  neighbour set. **Intentionally unsound**: boundary vertices with
  several neighbours across the cut get counted multiple times, so NBM
  can merge two sides whose actual connectivity is below k (paper
  Figure 3). It is implemented verbatim because reproducing its failure
  is half of the accuracy story.
* :func:`flow_based_merge_condition` — FBM (Theorem 3). Attaches σ to
  all of S and τ to all of S' and merges iff ``max_flow(σ → τ) ≥ k``
  inside ``G[S ∪ S']``; an overlap of ≥ k vertices short-circuits the
  flow (any separator of the union would have to swallow the overlap).
  Dense unions run the flow on the CKT sparse certificate of the union
  instead (same verdict, ≤ k·(n-1) arcs — see
  :func:`repro.graph.forests.certificate_for_flow`).
* :func:`merge_components` — the fixed-point driver (Algorithm 2): keeps
  trying pairs until no two components merge, with a size-descending
  order so big components absorb small ones early. Instead of rescanning
  all O(p²) pairs per round, an inverted vertex→component index plus a
  boundary-adjacency candidate heap surfaces exactly the pairs that
  touch, and a rejected-pair memo skips re-testing pairs neither of
  whose sides changed since the last rejection (the whole final
  round's flow work) — both invisible in the output, the test sequence
  over touching pairs is byte-identical to the naive scan.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro import obs
from repro.core.expansion import SIGMA
from repro.core.result import PhaseTimer
from repro.errors import ParameterError
from repro.flow import fastpath
from repro.flow.network import VertexSplitNetwork
from repro.graph.adjacency import Graph
from repro.graph.forests import certificate_for_flow

__all__ = [
    "neighbor_based_merge_condition",
    "flow_based_merge_condition",
    "merge_components",
    "TAU",
]

#: Label of the virtual vertex attached to the second side (Theorem 3).
TAU = "__tau__"

MergeCondition = Callable[[Graph, int, set, set, PhaseTimer], bool]


def neighbor_based_merge_condition(
    graph: Graph, k: int, side_a: set, side_b: set, timer: PhaseTimer
) -> bool:
    """NBM, Proposition 1 of the paper (deliberately flawed baseline).

    ``|S ∩ S'| + min(|N_{G[S' \\ S]}(S \\ S')|, |N_{G[S \\ S']}(S' \\ S)|) ≥ k``
    """
    timer.count("merge_checks")
    obs.count("merge.tests_attempted")
    overlap = side_a & side_b
    pure_a = side_a - side_b
    pure_b = side_b - side_a
    # Pure neighbours of A inside B: vertices of B \ A adjacent to A \ B.
    neighbors_in_b = {
        v for v in pure_b if graph.neighbors(v) & pure_a
    }
    neighbors_in_a = {
        v for v in pure_a if graph.neighbors(v) & pure_b
    }
    verdict = (
        len(overlap) + min(len(neighbors_in_b), len(neighbors_in_a)) >= k
    )
    obs.count("merge.tests_accepted" if verdict else "merge.tests_rejected")
    return verdict


def flow_based_merge_condition(
    graph: Graph, k: int, side_a: set, side_b: set, timer: PhaseTimer
) -> bool:
    """FBM, Theorem 3: merge iff σ and τ are k-connected in the union."""
    timer.count("merge_checks")
    obs.count("merge.tests_attempted")
    overlap = len(side_a & side_b)
    if overlap >= k:
        obs.count("merge.tests_accepted")
        obs.count("merge.overlap_short_circuits")
        return True
    # Exact rejection bound (NBM's count, Proposition 1, sound in this
    # direction): a σ→τ path either passes through an overlap vertex or
    # crosses between the pure sides, and vertex-disjoint paths cross
    # through *distinct* boundary vertices. So κ(σ, τ) can reach k only
    # if each pure side has ≥ k - overlap boundary vertices — checked
    # with an early-exit scan before paying for a network build.
    needed = k - overlap
    for near, far in (
        (side_a - side_b, side_b - side_a),
        (side_b - side_a, side_a - side_b),
    ):
        boundary = 0
        for v in near:
            if graph.neighbors(v) & far:
                boundary += 1
                if boundary >= needed:
                    break
        if boundary < needed:
            obs.count("merge.tests_rejected")
            obs.count("merge.bound_short_circuits")
            return False
    union = side_a | side_b
    config = fastpath.active()
    host = graph
    if config.certificate:
        certificate = certificate_for_flow(
            graph, union, k, config.certificate_factor
        )
        if certificate is not None:
            host = certificate
    network = VertexSplitNetwork(
        host,
        union,
        virtual_sources={SIGMA: side_a, TAU: side_b},
    )
    timer.count("fbm_flow_calls")
    verdict = network.max_flow(SIGMA, TAU, cutoff=k) >= k
    obs.count("merge.tests_accepted" if verdict else "merge.tests_rejected")
    return verdict


def merge_components(
    graph: Graph,
    k: int,
    components: list[set],
    condition: MergeCondition,
    timer: PhaseTimer | None = None,
) -> list[set]:
    """Merge components pairwise until no pair satisfies ``condition``.

    Only pairs that touch (shared vertices or at least one crossing
    edge) are ever tested — disjoint far-apart subgraphs can never be
    k-connected together. Touching pairs are found through an inverted
    vertex→component index rather than a pairwise rescan, pairs
    already rejected are skipped until one side changes, and merges
    update the index incrementally; the sequence of condition
    evaluations (and therefore the result) matches the naive
    all-pairs scan exactly.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    timer = timer or PhaseTimer()
    pool = [set(c) for c in components]
    # Component identity survives merges (the absorbing side keeps its
    # uid, bumping its version), so a rejected pair needs re-testing
    # only when one side's (uid, version) changed.
    uids = list(range(len(pool)))
    versions = [0] * len(pool)
    rejected: set[tuple] = set()
    merged_any = True
    round_no = 0
    while merged_any:
        merged_any = False
        round_no += 1
        obs.count("merge.rounds")
        obs.trace_event("merge.round", pool=len(pool))
        with obs.start_span(
            "merge.round", round=round_no, pool=len(pool)
        ):
            order = sorted(
                range(len(pool)), key=lambda p: len(pool[p]), reverse=True
            )
            pool = [pool[p] for p in order]
            uids = [uids[p] for p in order]
            versions = [versions[p] for p in order]
            member_index: dict = {}
            for position, component in enumerate(pool):
                for v in component:
                    member_index.setdefault(v, set()).add(position)
            alive = [True] * len(pool)
            alive_count = len(pool)
            alive_before = 0  # alive positions strictly below i

            def touching(vertices) -> set[int]:
                """Positions of components sharing or adjacent to ``vertices``."""
                found: set[int] = set()
                for v in vertices:
                    owners = member_index.get(v)
                    if owners:
                        found |= owners
                    for w in graph.neighbors(v):
                        owners = member_index.get(w)
                        if owners:
                            found |= owners
                return found

            for i in range(len(pool)):
                if not alive[i]:
                    continue
                current = pool[i]
                beyond = alive_count - alive_before - 1
                candidates = [
                    p for p in touching(current) if p > i and alive[p]
                ]
                heapq.heapify(candidates)
                queued = set(candidates)
                examined = 0
                last = i
                while candidates:
                    j = heapq.heappop(candidates)
                    if j <= last or not alive[j]:
                        continue
                    last = j
                    examined += 1
                    key = (uids[i], versions[i], uids[j], versions[j])
                    if key in rejected:
                        obs.count("merge.tests_memoized")
                        continue
                    other = pool[j]
                    with obs.start_span(
                        "merge.test",
                        pair=[i, j],
                        sizes=[len(current), len(other)],
                    ):
                        accepted = condition(graph, k, current, other, timer)
                        obs.set_span_attrs(accepted=accepted)
                    if not accepted:
                        rejected.add(key)
                        continue
                    for v in other:
                        owners = member_index[v]
                        owners.discard(j)
                        owners.add(i)
                    current |= other
                    alive[j] = False
                    alive_count -= 1
                    versions[i] += 1
                    timer.count("merges")
                    merged_any = True
                    # The grown component may touch positions the old
                    # one did not; only positions past the scan pointer
                    # matter (earlier ones get retried next round, just
                    # as the naive scan would).
                    for p in touching(other):
                        if p > last and alive[p] and p not in queued:
                            queued.add(p)
                            heapq.heappush(candidates, p)
                obs.count(
                    "merge.pairs_skipped_by_index", max(0, beyond - examined)
                )
                alive_before += 1
            pool = [c for c, a in zip(pool, alive) if a]
            uids = [u for u, a in zip(uids, alive) if a]
            versions = [v for v, a in zip(versions, alive) if a]
    return pool
