"""Merging conditions for pairs of k-vertex connected subgraphs.

* :func:`neighbor_based_merge_condition` — NBM (Proposition 1), the
  VCCE-BU baseline. Counts overlap plus the smaller side's pure
  neighbour set. **Intentionally unsound**: boundary vertices with
  several neighbours across the cut get counted multiple times, so NBM
  can merge two sides whose actual connectivity is below k (paper
  Figure 3). It is implemented verbatim because reproducing its failure
  is half of the accuracy story.
* :func:`flow_based_merge_condition` — FBM (Theorem 3). Attaches σ to
  all of S and τ to all of S' and merges iff ``max_flow(σ → τ) ≥ k``
  inside ``G[S ∪ S']``; an overlap of ≥ k vertices short-circuits the
  flow (any separator of the union would have to swallow the overlap).
* :func:`merge_components` — the fixed-point driver (Algorithm 2): keeps
  trying pairs until no two components merge, with a size-descending
  order so big components absorb small ones early.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import obs
from repro.core.expansion import SIGMA
from repro.core.result import PhaseTimer
from repro.errors import ParameterError
from repro.flow.network import VertexSplitNetwork
from repro.graph.adjacency import Graph

__all__ = [
    "neighbor_based_merge_condition",
    "flow_based_merge_condition",
    "merge_components",
    "TAU",
]

#: Label of the virtual vertex attached to the second side (Theorem 3).
TAU = "__tau__"

MergeCondition = Callable[[Graph, int, set, set, PhaseTimer], bool]


def neighbor_based_merge_condition(
    graph: Graph, k: int, side_a: set, side_b: set, timer: PhaseTimer
) -> bool:
    """NBM, Proposition 1 of the paper (deliberately flawed baseline).

    ``|S ∩ S'| + min(|N_{G[S' \\ S]}(S \\ S')|, |N_{G[S \\ S']}(S' \\ S)|) ≥ k``
    """
    timer.count("merge_checks")
    obs.count("merge.tests_attempted")
    overlap = side_a & side_b
    pure_a = side_a - side_b
    pure_b = side_b - side_a
    # Pure neighbours of A inside B: vertices of B \ A adjacent to A \ B.
    neighbors_in_b = {
        v for v in pure_b if graph.neighbors(v) & pure_a
    }
    neighbors_in_a = {
        v for v in pure_a if graph.neighbors(v) & pure_b
    }
    verdict = (
        len(overlap) + min(len(neighbors_in_b), len(neighbors_in_a)) >= k
    )
    obs.count("merge.tests_accepted" if verdict else "merge.tests_rejected")
    return verdict


def flow_based_merge_condition(
    graph: Graph, k: int, side_a: set, side_b: set, timer: PhaseTimer
) -> bool:
    """FBM, Theorem 3: merge iff σ and τ are k-connected in the union."""
    timer.count("merge_checks")
    obs.count("merge.tests_attempted")
    if len(side_a & side_b) >= k:
        obs.count("merge.tests_accepted")
        obs.count("merge.overlap_short_circuits")
        return True
    union = side_a | side_b
    network = VertexSplitNetwork(
        graph,
        union,
        virtual_sources={SIGMA: side_a, TAU: side_b},
    )
    timer.count("fbm_flow_calls")
    verdict = network.max_flow(SIGMA, TAU, cutoff=k) >= k
    obs.count("merge.tests_accepted" if verdict else "merge.tests_rejected")
    return verdict


def merge_components(
    graph: Graph,
    k: int,
    components: list[set],
    condition: MergeCondition,
    timer: PhaseTimer | None = None,
) -> list[set]:
    """Merge components pairwise until no pair satisfies ``condition``.

    Only pairs that touch (shared vertices or at least one crossing
    edge) are tested — disjoint far-apart subgraphs can never be
    k-connected together, and skipping them keeps the pass close to
    linear in practice.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    timer = timer or PhaseTimer()
    pool = [set(c) for c in components]
    merged_any = True
    round_no = 0
    while merged_any:
        merged_any = False
        round_no += 1
        obs.count("merge.rounds")
        obs.trace_event("merge.round", pool=len(pool))
        with obs.start_span(
            "merge.round", round=round_no, pool=len(pool)
        ):
            pool.sort(key=len, reverse=True)
            index = 0
            while index < len(pool):
                current = pool[index]
                other_index = index + 1
                while other_index < len(pool):
                    other = pool[other_index]
                    if _touches(graph, current, other):
                        with obs.start_span(
                            "merge.test",
                            pair=[index, other_index],
                            sizes=[len(current), len(other)],
                        ):
                            accepted = condition(
                                graph, k, current, other, timer
                            )
                            obs.set_span_attrs(accepted=accepted)
                    else:
                        accepted = False
                    if accepted:
                        current |= other
                        pool.pop(other_index)
                        timer.count("merges")
                        merged_any = True
                    else:
                        other_index += 1
                index += 1
    return pool


def _touches(graph: Graph, side_a: set, side_b: set) -> bool:
    """Whether two vertex sets overlap or are joined by an edge."""
    small, large = sorted((side_a, side_b), key=len)
    if small & large:
        return True
    return any(graph.neighbors(u) & large for u in small)
