"""RIPPLE and its published variants as named entry points.

RIPPLE (Algorithm 5) = QkVCS seeding + FBM merging + RME expansion on
the k-core of the input. :func:`ripple_me` swaps RME for the exact
h-hop Multiple Expansion (Table IV's RIPPLE-ME); the three
``ripple_no*`` variants are the ablations of Table V.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.pipeline import bottom_up_pipeline
from repro.core.result import VCCResult
from repro.core.seeding import DEFAULT_ALPHA
from repro.graph.adjacency import Graph
from repro.resilience.deadline import Deadline

__all__ = [
    "ripple",
    "ripple_me",
    "ripple_no_qkvcs",
    "ripple_no_fbm",
    "ripple_no_rme",
]


def ripple(
    graph: Graph,
    k: int,
    alpha: int = DEFAULT_ALPHA,
    deadline: Deadline | float | None = None,
    resume_from: Iterable[frozenset] | None = None,
    certificate: bool | None = None,
) -> VCCResult:
    """Enumerate k-VCCs with RIPPLE (QkVCS + FBM + RME).

    ``deadline`` bounds the run's wall clock (partial results with
    ``status="deadline"`` past it) and ``resume_from`` continues from a
    partial result's ``checkpoint``. ``certificate`` overrides the flow
    fast path's certificate sparsification (``None`` = inherit, see
    :mod:`repro.flow.fastpath`).

    >>> from repro.graph import community_graph
    >>> g = community_graph([10, 10], k=3, seed=1)
    >>> result = ripple(g, 3)
    >>> result.num_components
    2
    """
    return bottom_up_pipeline(
        graph,
        k,
        seeding="qkvcs",
        expansion="rme",
        merging="fbm",
        alpha=alpha,
        algorithm_name="RIPPLE",
        deadline=deadline,
        resume_from=resume_from,
        certificate=certificate,
    )


def ripple_me(
    graph: Graph,
    k: int,
    hops: int | None = 1,
    alpha: int = DEFAULT_ALPHA,
    deadline: Deadline | float | None = None,
    certificate: bool | None = None,
) -> VCCResult:
    """RIPPLE-ME: exact Multiple Expansion restricted to ``hops`` rings.

    ``hops=None`` removes the restriction entirely (Theorem 2's exact
    local expansion — accurate and extremely slow; Table IV's story).
    """
    return bottom_up_pipeline(
        graph,
        k,
        seeding="qkvcs",
        expansion="me",
        merging="fbm",
        alpha=alpha,
        me_hops=hops,
        algorithm_name="RIPPLE-ME",
        deadline=deadline,
        certificate=certificate,
    )


def ripple_no_qkvcs(
    graph: Graph, k: int, alpha: int = DEFAULT_ALPHA
) -> VCCResult:
    """Ablation: RIPPLE with the baseline LkVCS seeding (Table V)."""
    return bottom_up_pipeline(
        graph,
        k,
        seeding="lkvcs",
        expansion="rme",
        merging="fbm",
        alpha=alpha,
        algorithm_name="RIPPLE-noQkVCS",
    )


def ripple_no_fbm(
    graph: Graph, k: int, alpha: int = DEFAULT_ALPHA
) -> VCCResult:
    """Ablation: RIPPLE with the unsound NBM merging (Table V)."""
    return bottom_up_pipeline(
        graph,
        k,
        seeding="qkvcs",
        expansion="rme",
        merging="nbm",
        alpha=alpha,
        algorithm_name="RIPPLE-noFBM",
    )


def ripple_no_rme(
    graph: Graph, k: int, alpha: int = DEFAULT_ALPHA
) -> VCCResult:
    """Ablation: RIPPLE with Unitary Expansion (Table V)."""
    return bottom_up_pipeline(
        graph,
        k,
        seeding="qkvcs",
        expansion="ue",
        merging="fbm",
        alpha=alpha,
        algorithm_name="RIPPLE-noRME",
    )
