"""Local expansion strategies: UE (baseline), ME (exact), RME (ring-based).

Each strategy takes a k-vertex connected seed set ``S`` and grows it with
vertices of the host graph while preserving k-vertex connectivity:

* :func:`unitary_expansion` — the VCCE-BU baseline. Absorbs one vertex at
  a time when it has ≥ k neighbours already inside. Misses groups of
  vertices that supply disjoint paths *for each other* (paper Figure 2).
* :func:`multiple_expansion` — the paper's exact ME (Algorithm 1).
  Attaches a virtual vertex σ to every seed vertex and keeps shrinking a
  candidate set ``C`` until every remaining candidate has
  ``max_flow(u → σ) ≥ k`` inside ``G[S ∪ C] + σ`` (Theorem 1); then the
  whole survivor set joins at once. With ``hops=None`` the candidates
  start at ``V \\ S`` and the expansion is exact (Theorem 2); bounded
  ``hops`` trades accuracy for speed.
* :func:`ring_expansion` — RME (Algorithm 3). Buckets the one-hop
  boundary ring by the number of neighbours in the seed; absorbs the
  ≥ k bucket directly and absorbs maximal cliques ``K ⊆ C_r`` with
  ``|K| ≥ k+1-r`` and ``|N_S(K)| ≥ k`` (Theorem 4) — no max-flow calls
  in the hot path.

Soundness note: the paper's Theorem 4 conditions admit rare corner cases
where the clique's anchor vertices overlap too much for the k disjoint
paths to exist (the proof implicitly needs a system of distinct
representatives). :func:`ring_expansion` therefore additionally runs a
tiny bipartite-matching check per clique member, which makes every
absorption provably sound while accepting all configurations the paper's
proof actually covers. DESIGN.md documents this deviation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro import obs
from repro.core.result import PhaseTimer
from repro.errors import ParameterError
from repro.flow import fastpath
from repro.flow.network import VertexSplitNetwork
from repro.graph.adjacency import Graph
from repro.graph.cliques import collect_cliques_at_least
from repro.graph.forests import certificate_for_flow

__all__ = [
    "unitary_expansion",
    "multiple_expansion",
    "ring_expansion",
    "SIGMA",
]

#: Label of the virtual vertex attached to the seed side (Theorem 1).
SIGMA = "__sigma__"


def _check_k(k: int) -> None:
    if k < 2:
        raise ParameterError(f"expansion requires k >= 2, got {k}")


def unitary_expansion(
    graph: Graph,
    k: int,
    seed: Iterable[Hashable],
    timer: PhaseTimer | None = None,
) -> set:
    """Expand ``seed`` one vertex at a time (the VCCE-BU heuristic).

    A candidate joins when it already has ≥ k neighbours inside the
    growing set; absorbed vertices can unlock their own neighbours, so a
    work queue propagates until a fixed point.
    """
    _check_k(k)
    timer = timer or PhaseTimer()
    members = set(seed)
    # Inside-degree bookkeeping (mirrors RME's ring buckets): every
    # boundary vertex carries |N(u) ∩ members|, updated on absorption,
    # so no candidate ever recomputes the intersection from scratch.
    inside_degree = {
        u: len(graph.neighbors(u) & members)
        for u in graph.external_boundary(members)
    }
    pending = [u for u, d in inside_degree.items() if d >= k]
    while pending:
        u = pending.pop()
        if u in members:
            continue
        timer.count("ue_checks")
        if inside_degree[u] < k:
            continue  # stale queue entry
        members.add(u)
        obs.count("expansion.ue.absorbed")
        for v in graph.neighbors(u):
            if v in members:
                continue
            # First touch of a 2+-hop vertex: u is its only absorbed
            # neighbour (any earlier one would have registered it).
            degree = inside_degree.get(v, 0) + 1
            inside_degree[v] = degree
            if degree >= k:
                pending.append(v)
    return members


def multiple_expansion(
    graph: Graph,
    k: int,
    seed: Iterable[Hashable],
    hops: int | None = 1,
    timer: PhaseTimer | None = None,
) -> set:
    """Expand ``seed`` by the exact Multiple Expansion (Algorithm 1).

    ``hops`` bounds the candidate scope to the h-hop neighbourhood of
    the current seed; ``None`` means the whole graph (the provably
    maximal variant of Theorem 2, and by far the slowest).
    """
    _check_k(k)
    if hops is not None and hops < 1:
        raise ParameterError(f"hops must be >= 1 or None, got {hops}")
    timer = timer or PhaseTimer()
    members = set(seed)
    while True:
        if hops is None:
            candidates = graph.vertex_set() - members
        else:
            candidates = graph.neighborhood(members, hops) - members
        if not candidates:
            break
        obs.count("expansion.me.rounds")
        with obs.start_span(
            "expansion.me.round",
            members=len(members),
            candidates=len(candidates),
        ):
            survivors = _shrink_candidates(
                graph, k, members, candidates, timer
            )
            obs.set_span_attrs(absorbed=len(survivors))
        obs.count("expansion.me.absorbed", len(survivors))
        obs.count(
            "expansion.me.discarded", len(candidates) - len(survivors)
        )
        obs.trace_event(
            "me.round",
            members=len(members),
            candidates=len(candidates),
            absorbed=len(survivors),
        )
        if not survivors:
            break
        members |= survivors
    return members


def _shrink_candidates(
    graph: Graph,
    k: int,
    members: set,
    candidates: set,
    timer: PhaseTimer,
) -> set:
    """Iterate the ME filter until the candidate set is stable.

    Returns the surviving candidate set (possibly empty): the largest
    ``C* ⊆ candidates`` whose every vertex reaches σ with ≥ k disjoint
    paths inside ``G[S ∪ C*] + σ``.

    Fast path (see :mod:`repro.flow.fastpath`): the network is built
    once per round and discarded candidates are *disabled* between
    passes — flow-equivalent to rebuilding on the shrunk scope — so
    every pass after the first skips network construction entirely.
    On dense scopes the flow tests run on the CKT sparse certificate
    instead; the certificate is only valid for the exact scope it was
    built from, so certificate rounds rebuild per pass (each pass is
    then k·n-arc cheap) rather than disabling into a stale certificate.
    """
    config = fastpath.active()
    current = set(candidates)
    # Degree peel: max_flow(u → σ) is capped by u's degree inside the
    # scope ``S ∪ C``, so a candidate below k inside-degree can never
    # survive any filter pass — and dropping it shrinks its neighbours'
    # scope degrees, so the peel cascades (a k-core of the candidate
    # region, anchored on the seed). The ME fixpoint is the *maximal*
    # feasible subset and every feasible subset lives inside the peeled
    # core, so the surviving set is untouched; what the peel removes is
    # network builds and flow calls for hopeless one-round scopes.
    neighbors = graph.neighbors
    scope = members | current
    inside_degree = {u: len(neighbors(u) & scope) for u in current}
    peel = [u for u, d in inside_degree.items() if d < k]
    while peel:
        u = peel.pop()
        current.discard(u)
        obs.count("expansion.me.degree_peeled")
        for v in neighbors(u):
            d = inside_degree.get(v)
            if d is not None and v in current:
                inside_degree[v] = d - 1
                if d == k:
                    peel.append(v)
    network: VertexSplitNetwork | None = None
    certified = False
    while current:
        obs.count("expansion.me.filter_passes")
        if network is None:
            scope = members | current
            host = graph
            certified = False
            if config.certificate:
                certificate = certificate_for_flow(
                    graph, scope, k, config.certificate_factor
                )
                if certificate is not None:
                    host = certificate
                    certified = True
            network = VertexSplitNetwork(
                host, scope, virtual_sources={SIGMA: members}
            )
        else:
            obs.count("expansion.me.network_rebuilds_avoided")
        survivors = set()
        for u in current:
            timer.count("me_flow_calls")
            if network.max_flow(u, SIGMA, cutoff=k) >= k:
                survivors.add(u)
        obs.trace_event(
            "me.filter_pass",
            candidates=len(current),
            survivors=len(survivors),
        )
        if survivors == current:
            return survivors
        dropped = current - survivors
        current = survivors
        if current and config.reuse_networks and not certified:
            for u in dropped:
                network.disable_vertex(u)
        else:
            network = None
    return current


def ring_expansion(
    graph: Graph,
    k: int,
    seed: Iterable[Hashable],
    timer: PhaseTimer | None = None,
) -> set:
    """Expand ``seed`` by Ring-based Multiple Expansion (Algorithm 3)."""
    _check_k(k)
    timer = timer or PhaseTimer()
    members = set(seed)
    while True:
        obs.count("expansion.rme.rounds")
        with obs.start_span(
            "expansion.rme.round", members=len(members)
        ):
            absorbed = _ring_pass(graph, k, members, timer)
            obs.set_span_attrs(absorbed=len(absorbed))
        obs.count("expansion.rme.absorbed", len(absorbed))
        obs.trace_event(
            "rme.round", members=len(members), absorbed=len(absorbed)
        )
        if not absorbed:
            break
        members |= absorbed
    return members


def _ring_pass(
    graph: Graph, k: int, members: set, timer: PhaseTimer
) -> set:
    """One do-iteration of Algorithm 3: returns the newly absorbed set F."""
    ring: dict[Hashable, int] = {}
    buckets: list[set] = [set() for _ in range(k + 1)]
    for u in graph.external_boundary(members):
        r = min(len(graph.neighbors(u) & members), k)
        ring[u] = r
        buckets[r].add(u)
    # Candidate-ring size on the enclosing expansion.rme.round span.
    obs.set_span_attrs(ring=len(ring))

    absorbed: set = set()

    def promote_neighbours(start: Hashable) -> None:
        """UpdateNeighbours: bump ring counts around newly absorbed vertices."""
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if v in members or v in absorbed or v not in ring:
                    continue
                r = ring[v]
                if r >= k:  # already pending in the top bucket
                    continue
                buckets[r].discard(v)
                ring[v] = r + 1
                if r + 1 >= k:
                    absorbed.add(v)
                    timer.count("rme_chain_absorbed")
                    stack.append(v)
                else:
                    buckets[r + 1].add(v)

    # Vertices with ≥ k neighbours inside join unconditionally (this is
    # exactly the sound part of Unitary Expansion).
    for u in list(buckets[k]):
        if u in absorbed:
            continue
        buckets[k].discard(u)
        absorbed.add(u)
        promote_neighbours(u)

    # Rings k-1 … 1: absorb qualifying maximal cliques (Theorem 4).
    for r in range(k - 1, 0, -1):
        snapshot = set(buckets[r])
        if len(snapshot) < k + 1 - r:
            continue
        ring_subgraph = graph.subgraph(snapshot)
        # The enumeration reads only the immutable ring snapshot, so
        # the eager list sees exactly what lazy iteration would.
        for clique in collect_cliques_at_least(ring_subgraph, k + 1 - r):
            timer.count("rme_clique_checks")
            if any(v not in buckets[r] for v in clique):
                continue  # a member was absorbed or promoted meanwhile
            base = members | absorbed
            if not _clique_absorbable(graph, clique, base, k):
                continue
            for v in clique:
                buckets[r].discard(v)
                absorbed.add(v)
            timer.count("rme_cliques_absorbed")
            for v in clique:
                promote_neighbours(v)
    return absorbed


def _clique_absorbable(
    graph: Graph, clique: frozenset, base: set, k: int
) -> bool:
    """Theorem 4 check with the distinct-representatives strengthening.

    ``base`` is the current (k-vertex connected) grown set. The clique
    joins when (i) its members' anchors into ``base`` number ≥ k in
    union, and (ii) every member ``u`` can route its missing ``k - r_u``
    paths through *distinct* fellow members to *distinct* anchors
    outside ``N(u) ∩ base`` — a bipartite matching per member.
    """
    anchors_of = {v: graph.neighbors(v) & base for v in clique}
    union: set = set()
    for anchors in anchors_of.values():
        union |= anchors
    if len(union) < k:
        return False
    for u in clique:
        needed = k - len(anchors_of[u])
        if needed <= 0:
            continue
        relays = [v for v in clique if v != u]
        options = {
            v: anchors_of[v] - anchors_of[u] for v in relays
        }
        if _matching_size(relays, options, needed) < needed:
            return False
    return True


def _matching_size(
    left: list, options: dict, target: int
) -> int:
    """Size of a maximum bipartite matching, stopping early at ``target``.

    ``left`` vertices match into the anchor sets given by ``options``
    (left vertex → set of right candidates). Classic augmenting-path
    matching; the sides here are tiny (≤ k members / anchors).
    """
    match_of: dict = {}  # right vertex -> left vertex
    size = 0
    for u in left:
        seen: set = set()
        if _augment(u, options, match_of, seen):
            size += 1
            if size >= target:
                return size
    return size


def _augment(u, options: dict, match_of: dict, seen: set) -> bool:
    for w in options[u]:
        if w in seen:
            continue
        seen.add(w)
        if w not in match_of or _augment(match_of[w], options, match_of, seen):
            match_of[w] = u
            return True
    return False
