"""Constructive Menger: extract actual vertex-disjoint paths.

The paper motivates k-VCCs with applications that need the *paths*
themselves — k vertex-disjoint routes for transportation robustness and
fault-tolerant networking. This module decomposes a maximum flow on the
vertex-split network back into the internally-vertex-disjoint paths it
certifies.

    >>> from repro.graph import circulant_graph
    >>> paths = vertex_disjoint_paths(circulant_graph(8, 2), 0, 4)
    >>> len(paths)
    4
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import ParameterError
from repro.flow.network import VertexSplitNetwork
from repro.graph.adjacency import Graph

__all__ = ["vertex_disjoint_paths"]


def vertex_disjoint_paths(
    graph: Graph,
    source: Hashable,
    sink: Hashable,
    limit: int | None = None,
) -> list[list]:
    """A maximum set of internally-vertex-disjoint source→sink paths.

    Each returned path is a vertex list ``[source, …, sink]``; no two
    paths share a vertex other than the endpoints. If the pair is
    adjacent, the direct edge is returned as one of the paths. With
    ``limit`` set, at most that many paths are produced (the flow is
    cut off accordingly — much cheaper when only "are there k?" plus
    witnesses are needed).
    """
    if source == sink:
        raise ParameterError("source and sink must differ")
    for label in (source, sink):
        if not graph.has_vertex(label):
            raise ParameterError(f"{label!r} is not in the graph")
    if limit is not None and limit < 1:
        raise ParameterError(f"limit must be >= 1 or None, got {limit}")

    direct: list[list] = []
    work = graph
    if graph.has_edge(source, sink):
        # Peel the direct edge off as its own path; the remaining flow
        # question is then well-posed on the split network.
        direct.append([source, sink])
        if limit is not None and limit == 1:
            return direct
        work = graph.copy()
        work.remove_edge(source, sink)

    remaining = None if limit is None else limit - len(direct)
    network = VertexSplitNetwork(work)
    cutoff = float("inf") if remaining is None else remaining
    flow = int(network.max_flow(source, sink, cutoff=cutoff))
    if flow == 0:
        return direct
    return direct + _decompose(network, source, sink, flow)


def _decompose(
    network: VertexSplitNetwork,
    source: Hashable,
    sink: Hashable,
    flow: int,
) -> list[list]:
    """Walk saturated arcs of the residual network into vertex paths.

    After a max-flow of value f, exactly f unit paths leave the
    source's out-node. Flow conservation on the unit-capacity internal
    arcs means every intermediate vertex carries at most one path, so
    greedily following saturated edge arcs (and consuming them) splits
    the flow into f vertex-disjoint paths. Cycles cannot trap the walk:
    any flow cycle is vertex-disjoint from the s→t paths and is simply
    never entered.
    """
    outgoing: dict[Hashable, list] = {}
    for u, v in network.saturated_arcs():
        outgoing.setdefault(u, []).append(v)
    paths: list[list] = []
    for _ in range(flow):
        path = [source]
        current = source
        while current != sink:
            nxt = outgoing[current].pop()
            path.append(nxt)
            current = nxt
        paths.append(path)
    return paths
