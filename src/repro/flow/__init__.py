"""Flow substrate: Dinic max-flow and vertex-connectivity queries."""

from repro.flow import fastpath
from repro.flow.connectivity import (
    find_vertex_cut,
    global_vertex_connectivity,
    is_k_vertex_connected,
    is_k_vertex_connected_subset,
    is_side_vertex,
    local_connectivity,
    local_connectivity_at_least,
)
from repro.flow.dinic import Dinic
from repro.flow.even_tarjan import EvenTarjan
from repro.flow.network import VertexSplitNetwork
from repro.flow.paths import vertex_disjoint_paths

__all__ = [
    "Dinic",
    "EvenTarjan",
    "VertexSplitNetwork",
    "fastpath",
    "find_vertex_cut",
    "global_vertex_connectivity",
    "is_k_vertex_connected",
    "is_k_vertex_connected_subset",
    "is_side_vertex",
    "local_connectivity",
    "local_connectivity_at_least",
    "vertex_disjoint_paths",
]
