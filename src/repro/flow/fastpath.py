"""Runtime switches for the flow-engine fast path.

The fast path is a bundle of four independently toggleable
optimisations (see ``docs/performance.md``):

* **dirty reset** — :class:`repro.flow.network.VertexSplitNetwork`
  restores only the arcs the previous query touched instead of copying
  the whole capacity array;
* **network reuse** — Multiple Expansion keeps one network per filter
  round and *disables* discarded candidates between passes instead of
  rebuilding from scratch;
* **certificate** — ME and FBM flow tests on dense induced subgraphs
  run on the Cheriyan–Kao–Thurimella sparse certificate (at most
  ``k(n-1)`` edges) instead of the full subgraph;
* **csr** — network construction and merge-candidate discovery run on
  the host graph's flat-array CSR snapshot
  (:class:`repro.graph.CsrGraph`) when one is current, skipping the
  per-neighbour set machinery of the dict substrate. The environment
  variable ``REPRO_FASTPATH_CSR=0`` turns it off process-wide (the CI
  legacy-path job uses this).

Every optimisation is exact: enumeration output is identical with any
combination toggled off (``tests/test_fastpath.py`` asserts this
differentially). The switches exist for ablation benches and as an
escape hatch, not because results change.

Configuration is thread-local, mirroring the :mod:`repro.obs`
collector scoping: :func:`configured` overrides for a block,
:func:`active` reads the current settings. Worker processes start from
:data:`DEFAULT`.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = [
    "DEFAULT",
    "FastPathConfig",
    "active",
    "configured",
]


def _csr_env_default() -> bool:
    """The ``csr`` default: on unless ``REPRO_FASTPATH_CSR`` disables it."""
    value = os.environ.get("REPRO_FASTPATH_CSR")
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "no", "off")


@dataclass(frozen=True)
class FastPathConfig:
    """Switches for the flow-engine fast path (all on by default)."""

    #: Restore only query-touched arcs on network reset (O(touched)
    #: instead of O(E) per flow query).
    dirty_reset: bool = True

    #: Reuse one ME network per filter round, disabling discarded
    #: candidates between passes instead of rebuilding.
    reuse_networks: bool = True

    #: Run ME/FBM flow tests on the CKT sparse certificate when the
    #: induced subgraph is dense (the CLI's ``--no-certificate``
    #: disables this).
    certificate: bool = True

    #: Density threshold: the certificate activates when the induced
    #: subgraph has more than ``certificate_factor * k * n`` edges.
    #: The certificate itself has at most ``k * (n - 1)`` edges, so a
    #: factor of 2 guarantees at least a halving of flow work.
    certificate_factor: float = 2.0

    #: Drive network construction and merge-candidate discovery from
    #: the host graph's cached CSR snapshot when one is current
    #: (``Graph.csr_if_current``). Arc layout and results are
    #: byte-identical to the dict path.
    csr: bool = True


DEFAULT = FastPathConfig(csr=_csr_env_default())


class _Local(threading.local):
    # Class-attribute fallback: threads that never override read the
    # module default via plain attribute lookup (``active`` sits on
    # per-test and per-network-build paths).
    config: FastPathConfig = DEFAULT


_tls = _Local()


def active() -> FastPathConfig:
    """The thread's active fast-path configuration."""
    return _tls.config


@contextmanager
def configured(**overrides):
    """Scope fast-path overrides over a block (thread-local).

    >>> from repro.flow import fastpath
    >>> with fastpath.configured(certificate=False) as config:
    ...     config.certificate
    False
    >>> fastpath.active().certificate
    True
    """
    previous = active()
    current = replace(previous, **overrides)
    _tls.config = current
    try:
        yield current
    finally:
        _tls.config = previous
