"""Runtime switches for the flow-engine fast path.

The fast path is a bundle of three independently toggleable
optimisations (see ``docs/performance.md``):

* **dirty reset** — :class:`repro.flow.network.VertexSplitNetwork`
  restores only the arcs the previous query touched instead of copying
  the whole capacity array;
* **network reuse** — Multiple Expansion keeps one network per filter
  round and *disables* discarded candidates between passes instead of
  rebuilding from scratch;
* **certificate** — ME and FBM flow tests on dense induced subgraphs
  run on the Cheriyan–Kao–Thurimella sparse certificate (at most
  ``k(n-1)`` edges) instead of the full subgraph.

Every optimisation is exact: enumeration output is identical with any
combination toggled off (``tests/test_fastpath.py`` asserts this
differentially). The switches exist for ablation benches and as an
escape hatch, not because results change.

Configuration is thread-local, mirroring the :mod:`repro.obs`
collector scoping: :func:`configured` overrides for a block,
:func:`active` reads the current settings. Worker processes start from
:data:`DEFAULT`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = [
    "DEFAULT",
    "FastPathConfig",
    "active",
    "configured",
]


@dataclass(frozen=True)
class FastPathConfig:
    """Switches for the flow-engine fast path (all on by default)."""

    #: Restore only query-touched arcs on network reset (O(touched)
    #: instead of O(E) per flow query).
    dirty_reset: bool = True

    #: Reuse one ME network per filter round, disabling discarded
    #: candidates between passes instead of rebuilding.
    reuse_networks: bool = True

    #: Run ME/FBM flow tests on the CKT sparse certificate when the
    #: induced subgraph is dense (the CLI's ``--no-certificate``
    #: disables this).
    certificate: bool = True

    #: Density threshold: the certificate activates when the induced
    #: subgraph has more than ``certificate_factor * k * n`` edges.
    #: The certificate itself has at most ``k * (n - 1)`` edges, so a
    #: factor of 2 guarantees at least a halving of flow work.
    certificate_factor: float = 2.0


DEFAULT = FastPathConfig()

_tls = threading.local()


def active() -> FastPathConfig:
    """The thread's active fast-path configuration."""
    return getattr(_tls, "config", DEFAULT)


@contextmanager
def configured(**overrides):
    """Scope fast-path overrides over a block (thread-local).

    >>> from repro.flow import fastpath
    >>> with fastpath.configured(certificate=False) as config:
    ...     config.certificate
    False
    >>> fastpath.active().certificate
    True
    """
    previous = active()
    current = replace(previous, **overrides)
    _tls.config = current
    try:
        yield current
    finally:
        _tls.config = previous
