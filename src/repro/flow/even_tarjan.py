"""Even–Tarjan style BFS augmenting-path max-flow (reference engine).

The first exact k-VCC algorithms (Even & Tarjan '75, the paper's [10])
compute vertex connectivity with plain shortest-augmenting-path flows.
This engine exists as an independently-implemented reference for the
Dinic engine — property tests assert the two always agree — and as the
baseline in the flow-engine ablation bench.

Interface mirrors :class:`repro.flow.dinic.Dinic` (add_edge /
max_flow / min_cut_side) so :class:`VertexSplitNetwork` could run on
either; Dinic stays the default because its level-graph phases win on
the unit networks the library builds.
"""

from __future__ import annotations

from collections import deque

from repro import obs
from repro.errors import ParameterError

__all__ = ["EvenTarjan"]

_INF = float("inf")


class EvenTarjan:
    """Shortest-augmenting-path max-flow on an edge-array residual graph."""

    __slots__ = ("n", "head", "to", "cap", "next_edge")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        self.n = n
        self.head = [-1] * n
        self.to: list[int] = []
        self.cap: list[float] = []
        self.next_edge: list[int] = []

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add directed edge ``u → v``; returns its edge index."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ParameterError(f"edge ({u}, {v}) out of range 0..{self.n - 1}")
        if capacity < 0:
            raise ParameterError(f"capacity must be non-negative, got {capacity}")
        index = len(self.to)
        self.to.append(v)
        self.cap.append(capacity)
        self.next_edge.append(self.head[u])
        self.head[u] = index
        self.to.append(u)
        self.cap.append(0)
        self.next_edge.append(self.head[v])
        self.head[v] = index + 1
        return index

    def _augment_once(self, source: int, sink: int) -> float:
        """Push one shortest augmenting path; returns its bottleneck."""
        parent_edge = [-1] * self.n
        parent_edge[source] = -2  # visited marker for the source
        queue = deque((source,))
        to, cap, nxt = self.to, self.cap, self.next_edge
        while queue:
            u = queue.popleft()
            e = self.head[u]
            while e != -1:
                v = to[e]
                if cap[e] > 0 and parent_edge[v] == -1:
                    parent_edge[v] = e
                    if v == sink:
                        queue.clear()
                        break
                    queue.append(v)
                e = nxt[e]
        if parent_edge[sink] == -1:
            return 0.0
        bottleneck = _INF
        v = sink
        while v != source:
            e = parent_edge[v]
            bottleneck = min(bottleneck, cap[e])
            v = to[e ^ 1]
        v = sink
        while v != source:
            e = parent_edge[v]
            cap[e] -= bottleneck
            cap[e ^ 1] += bottleneck
            v = to[e ^ 1]
        return bottleneck

    def max_flow(
        self, source: int, sink: int, cutoff: float = _INF
    ) -> float:
        """Max flow source→sink, stopping once ``cutoff`` is reached."""
        if source == sink:
            raise ParameterError("source and sink must differ")
        obs.count("flow.even_tarjan.calls")
        with obs.agg_span("flow.even_tarjan.max_flow"):
            flow = 0.0
            while flow < cutoff:
                pushed = self._augment_once(source, sink)
                if pushed == 0:
                    break
                obs.count("flow.even_tarjan.augmentations")
                flow += pushed
            return min(flow, cutoff)

    def min_cut_side(self, source: int) -> set[int]:
        """Residual-reachable set from ``source`` after a full max_flow."""
        seen = {source}
        queue = deque((source,))
        to, cap, nxt = self.to, self.cap, self.next_edge
        while queue:
            u = queue.popleft()
            e = self.head[u]
            while e != -1:
                v = to[e]
                if cap[e] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
                e = nxt[e]
        return seen
