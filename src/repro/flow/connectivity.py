"""Vertex-connectivity queries built on the split-network flow engine.

Implements the Even–Tarjan strategy the top-down baseline needs:

* :func:`local_connectivity` — κ(u, v, G), the size of a minimum vertex
  cut separating u from v (∞ for adjacent pairs, Definition 4).
* :func:`find_vertex_cut` — a vertex cut of size < k if one exists
  (the partitioning step of VCCE-TD).
* :func:`is_k_vertex_connected` — the verification predicate used to
  certify seeds and final components.
* :func:`global_vertex_connectivity` — κ(G), mostly for tests and the
  k_max statistic of Table II.

The pivot trick: fix any vertex ``u``. Every vertex cut either misses
``u`` — then it separates ``u`` from some non-neighbour ``v`` and
κ(u, v) finds it — or contains ``u`` — then it separates two neighbours
of ``u``, and κ(v, w) over neighbour pairs finds it.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Hashable

from repro.errors import ParameterError
from repro.flow.network import VertexSplitNetwork
from repro.graph.adjacency import Graph
from repro.graph.traversal import is_connected

__all__ = [
    "local_connectivity",
    "local_connectivity_at_least",
    "find_vertex_cut",
    "is_k_vertex_connected",
    "is_k_vertex_connected_subset",
    "is_side_vertex",
    "global_vertex_connectivity",
]


def local_connectivity(graph: Graph, u: Hashable, v: Hashable) -> float:
    """κ(u, v, G): minimum vertices to remove to disconnect u from v.

    Returns ``math.inf`` for adjacent pairs (the paper's convention —
    no vertex removal can separate an edge's endpoints).
    """
    if u == v:
        raise ParameterError("local connectivity needs two distinct vertices")
    if graph.has_edge(u, v):
        return math.inf
    network = VertexSplitNetwork(graph)
    return network.max_flow(u, v)


def local_connectivity_at_least(
    graph: Graph, u: Hashable, v: Hashable, k: int
) -> bool:
    """Whether κ(u, v, G) ≥ k, with the flow cut off at k."""
    if u == v:
        raise ParameterError("local connectivity needs two distinct vertices")
    if graph.has_edge(u, v):
        return True
    network = VertexSplitNetwork(graph)
    return network.max_flow(u, v, cutoff=k) >= k


def find_vertex_cut(
    graph: Graph, k: int, certificate: bool = True
) -> set | None:
    """A vertex cut of size < k, or None if the graph has none.

    The input must be connected (VCCE-TD splits into connected
    components before calling this). Complete graphs have no vertex
    cut at all and always return None.

    With ``certificate`` (the default), dense inputs are first reduced
    to their Cheriyan–Kao–Thurimella sparse certificate of at most
    ``k(n-1)`` edges: the certificate has a cut of size < k iff the
    graph does, and any such cut of the certificate is a valid cut of
    the graph — so all flow work happens on the sparse subgraph (Wen
    et al.'s optimisation).
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    if n <= 1:
        return None
    if not is_connected(graph):
        raise ParameterError("find_vertex_cut requires a connected graph")
    if graph.num_edges == n * (n - 1) // 2:
        return None  # complete graph: no cut exists at any size
    if certificate and graph.num_edges > k * (n - 1):
        from repro.graph.forests import sparse_certificate

        return find_vertex_cut(
            sparse_certificate(graph, k), k, certificate=False
        )

    # Pivot on a minimum-degree vertex: if d(u) < k its neighbourhood is
    # already a small cut (u has a non-neighbour since G is incomplete).
    # A simplicial pivot (clique neighbourhood) of similarly small
    # degree is even better: no minimal vertex cut can contain it (its
    # cut membership would force an edge across the separation), so the
    # quadratic neighbour-pair phase disappears entirely.
    pivot = min(graph.vertices(), key=graph.degree)
    min_degree = graph.degree(pivot)
    if min_degree < k:
        return set(graph.neighbors(pivot))
    pivot_is_simplicial = _is_simplicial(graph, pivot)
    if not pivot_is_simplicial:
        for candidate in graph.vertices():
            if graph.degree(candidate) <= min_degree + 2 and _is_simplicial(
                graph, candidate
            ):
                pivot = candidate
                pivot_is_simplicial = True
                break

    network = VertexSplitNetwork(graph)
    pivot_nbrs = set(graph.neighbors(pivot))
    cut_or_none = _certified_sweep(graph, network, pivot, k)
    if cut_or_none is not None:
        return cut_or_none
    if pivot_is_simplicial:
        return None  # no cut avoids the pivot, and none can contain it
    # Any remaining small cut must contain the pivot and separate two of
    # its neighbours.
    neighbors = sorted(pivot_nbrs, key=graph.degree)
    for v, w in itertools.combinations(neighbors, 2):
        if graph.has_edge(v, w):
            continue
        if len(graph.neighbors(v) & graph.neighbors(w)) >= k:
            continue
        cut = network.vertex_cut_if_below(v, w, k)
        if cut is not None:
            return cut
    return None


def _is_simplicial(graph: Graph, vertex: Hashable) -> bool:
    """Whether the vertex's neighbourhood induces a clique."""
    nbrs = list(graph.neighbors(vertex))
    for i, u in enumerate(nbrs):
        u_nbrs = graph.neighbors(u)
        for w in nbrs[i + 1:]:
            if w not in u_nbrs:
                return False
    return True


def _certified_sweep(
    graph: Graph,
    network: VertexSplitNetwork,
    pivot: Hashable,
    k: int,
) -> set | None:
    """Cut-from-pivot search with Wen et al.'s deposit sweep.

    Maintains the set of vertices *certified* k-connected to the pivot.
    Seeds: the pivot's neighbours (adjacent ⇒ κ = ∞). Deposit rule: a
    vertex with ≥ k certified neighbours is itself certified without a
    flow — any cut of size < k leaves one certified neighbour
    untouched on the pivot's side, and the edge to it pins the vertex
    there too. Certifications propagate breadth-first, so on dense
    graphs most vertices never see a max-flow call.

    Returns a vertex cut of size < k if one separates the pivot from
    anything, else None.
    """
    certified = set(graph.neighbors(pivot)) | {pivot}
    deposits = {
        v: len(graph.neighbors(v) & certified)
        for v in graph.vertices()
        if v not in certified
    }

    def propagate(start: Hashable) -> None:
        stack = [start]
        while stack:
            u = stack.pop()
            for w in graph.neighbors(u):
                if w in certified:
                    continue
                deposits[w] += 1
                if deposits[w] >= k:
                    certified.add(w)
                    stack.append(w)

    # Flush vertices already saturated by the initial neighbourhood.
    for v in sorted(deposits, key=repr):
        if v not in certified and deposits[v] >= k:
            certified.add(v)
            propagate(v)

    for v in graph.vertices():
        if v in certified:
            continue
        cut = network.vertex_cut_if_below(pivot, v, k)
        if cut is not None:
            return cut
        certified.add(v)
        propagate(v)
    return None


def is_k_vertex_connected(graph: Graph, k: int) -> bool:
    """Whether the graph itself is k-vertex connected.

    Requires more than k vertices (so that removing any k-1 leaves at
    least two), connectivity, min degree ≥ k, and no vertex cut of size
    below k.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if graph.num_vertices <= k:
        return False
    if graph.min_degree() < k:
        return False
    if not is_connected(graph):
        return False
    return find_vertex_cut(graph, k) is None


def is_k_vertex_connected_subset(graph: Graph, members: set, k: int) -> bool:
    """Whether the induced subgraph ``G[members]`` is k-vertex connected."""
    return is_k_vertex_connected(graph.subgraph(members), k)


def is_side_vertex(graph: Graph, vertex: Hashable, k: int) -> bool:
    """Whether ``vertex`` is a *side-vertex*: in no vertex cut of size < k.

    Side-vertices (Wen et al.) make local k-connectivity transitive
    (the paper's Lemma 1), which is what the virtual-vertex proofs of
    Theorems 1 and 3 lean on. The check: ``vertex`` belongs to some
    cut of size < k iff there is a non-adjacent pair (a, b) avoiding it
    with κ(a, b) < k whose connectivity drops when ``vertex`` is
    removed (then ``vertex`` sits in one of their minimum cuts).

    Cost: O(n²) threshold flows — a research/verification utility, not
    an enumeration-path primitive.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if not graph.has_vertex(vertex):
        raise ParameterError(f"vertex {vertex!r} not in graph")
    others = [u for u in graph.vertices() if u != vertex]
    removed = graph.subgraph(set(others))
    full = VertexSplitNetwork(graph)
    reduced = VertexSplitNetwork(removed)
    for i, a in enumerate(others):
        for b in others[i + 1:]:
            if graph.has_edge(a, b):
                continue
            kappa = full.max_flow(a, b, cutoff=k)
            if kappa >= k:
                continue
            if reduced.max_flow(a, b, cutoff=kappa) < kappa:
                return False
    return True


def global_vertex_connectivity(graph: Graph) -> int:
    """κ(G) for a graph with at least two vertices.

    Complete graphs get κ = n - 1 (the standard convention). Used by
    tests and by the k_max dataset statistic.
    """
    n = graph.num_vertices
    if n < 2:
        raise ParameterError("connectivity needs at least two vertices")
    if not is_connected(graph):
        return 0
    if graph.num_edges == n * (n - 1) // 2:
        return n - 1
    best = graph.min_degree()
    network = VertexSplitNetwork(graph)
    pivot = min(graph.vertices(), key=graph.degree)
    pivot_nbrs = set(graph.neighbors(pivot))
    pivot_closed = pivot_nbrs | {pivot}
    for v in graph.vertices():
        if v in pivot_closed:
            continue
        if len(pivot_nbrs & graph.neighbors(v)) >= best:
            continue  # shared neighbours alone meet the current bound
        best = min(best, int(network.max_flow(pivot, v, cutoff=best)))
        if best == 0:
            return 0
    for v, w in itertools.combinations(pivot_nbrs, 2):
        if graph.has_edge(v, w):
            continue
        if len(graph.neighbors(v) & graph.neighbors(w)) >= best:
            continue
        best = min(best, int(network.max_flow(v, w, cutoff=best)))
        if best == 0:
            return 0
    return best
