"""Dinic max-flow on array-based residual networks.

This is the flow engine behind every connectivity question in the
library: local connectivity κ(u, v), Multiple Expansion's
``max_flow(u → σ)`` tests, and Flow-Based Merging's ``max_flow(σ → τ)``.

The networks are small-integer-capacity (almost always unit) directed
graphs produced by vertex splitting, so Dinic with adjacency arrays is
the right tool: O(E · sqrt(V)) on unit networks. All k-VCC questions
are threshold questions ("is the flow ≥ k?"), so :meth:`Dinic.max_flow`
accepts a ``cutoff`` and stops as soon as the threshold is reached —
a large practical win that DESIGN.md §5 ablates.

Capacities are integers throughout (vertex splitting only ever
produces unit and "safely infinite" integer arcs), which keeps the
inner-loop comparisons exact; ``cutoff=float("inf")`` stays accepted
at the API boundary. Every arc a query saturates or un-saturates is
recorded in :attr:`Dinic.dirty`, so callers that reset capacities
between queries (:class:`repro.flow.network.VertexSplitNetwork`) can
restore only the touched region instead of copying the whole array.
"""

from __future__ import annotations

from collections import deque

from repro import obs
from repro.errors import ParameterError

__all__ = ["Dinic"]

_INF = float("inf")


class Dinic:
    """Array-based Dinic max-flow.

    Vertices are integers ``0 … n-1``. Edges are stored in parallel
    arrays; the reverse edge of edge ``i`` is ``i ^ 1``.
    """

    __slots__ = (
        "n",
        "head",
        "to",
        "cap",
        "next_edge",
        "dirty",
        "_level",
        "_iter",
        "_blank",
    )

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        self.n = n
        # Plain Python int lists, deliberately not array('q'): the hot
        # loops read and write individual elements, where list access
        # to cached small ints beats the box/unbox cost an array pays
        # per element on CPython. Compact array('q') storage lives in
        # repro.graph.csr, where rows are sliced in bulk instead.
        self.head = [-1] * n
        self.to: list[int] = []
        self.cap: list[int] = []
        self.next_edge: list[int] = []
        #: Forward-arc indices whose capacity changed since the last
        #: :meth:`restore_capacities` (their ``^ 1`` twins changed too).
        self.dirty: set[int] = set()
        self._level = [0] * n
        self._iter = [0] * n
        # Reset template: level[:] = _blank is one C-level copy versus
        # an n-step Python loop per BFS phase.
        self._blank = [-1] * n

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add directed edge ``u → v`` with the given integer capacity.

        Returns the internal edge index (its residual twin is index+1).
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ParameterError(f"edge ({u}, {v}) out of range 0..{self.n - 1}")
        if type(capacity) is not int:  # fast path: callers pass ints
            if capacity != int(capacity):
                raise ParameterError(
                    f"capacity must be integral, got {capacity!r} "
                    "(vertex-split networks only produce integer arcs)"
                )
            capacity = int(capacity)
        if capacity < 0:
            raise ParameterError(f"capacity must be non-negative, got {capacity}")
        index = len(self.to)
        self.to.append(v)
        self.cap.append(capacity)
        self.next_edge.append(self.head[u])
        self.head[u] = index
        self.to.append(u)
        self.cap.append(0)
        self.next_edge.append(self.head[v])
        self.head[v] = index + 1
        return index

    def add_split_pairs(self) -> int:
        """Lay out the ``n / 2`` unit split arcs ``2i → 2i+1`` directly.

        Equivalent to ``add_edges(list(range(n)), 1)`` on a freshly
        constructed even-``n`` network — the first thing every
        vertex-split network does — but because no arcs exist yet the
        intrusive head/next chains are fully predictable and all five
        parallel arrays come out of whole-array operations instead of a
        per-pair Python loop. Returns the first edge index (0).
        """
        if self.to:
            raise ParameterError(
                "add_split_pairs requires a network with no arcs yet"
            )
        n = self.n
        if n % 2:
            raise ParameterError(f"n must be even for split pairs, got {n}")
        to = [0] * n
        to[0::2] = range(1, n, 2)
        to[1::2] = range(0, n, 2)
        self.to = to
        self.cap = [1, 0] * (n // 2)
        self.next_edge = [-1] * n
        self.head = list(range(n))
        return 0

    def add_edges(self, endpoints: list[int], capacity: int) -> int:
        """Bulk :meth:`add_edge` at one shared capacity.

        ``endpoints`` is the flattened pair list ``[u0, v0, u1, v1, …]``.
        Lays the arcs out exactly as ``add_edge(u0, v0)``,
        ``add_edge(u1, v1)``, … would (twin at ``index ^ 1``) while
        validating once and building the parallel arrays with slice and
        ``extend`` operations — network construction adds thousands of
        same-capacity arcs and is a measured hot path. Returns the edge
        index of the first pair.
        """
        if type(capacity) is not int:  # fast path: callers pass ints
            if capacity != int(capacity):
                raise ParameterError(
                    f"capacity must be integral, got {capacity!r} "
                    "(vertex-split networks only produce integer arcs)"
                )
            capacity = int(capacity)
        if capacity < 0:
            raise ParameterError(f"capacity must be non-negative, got {capacity}")
        if len(endpoints) % 2:
            raise ParameterError(
                f"endpoints must hold (u, v) pairs, got {len(endpoints)} values"
            )
        first = len(self.to)
        if not endpoints:
            return first
        if min(endpoints) < 0 or max(endpoints) >= self.n:
            raise ParameterError(
                f"endpoints out of range 0..{self.n - 1}"
            )
        # Arc targets interleave as v0, u0, v1, u1, … — the endpoint
        # list with each (u, v) swapped in place.
        targets = endpoints[:]
        targets[0::2] = endpoints[1::2]
        targets[1::2] = endpoints[0::2]
        self.to.extend(targets)
        self.cap.extend([capacity, 0] * (len(endpoints) // 2))
        # Only the head/next intrusive chains are order-dependent and
        # need a Python-level loop.
        head = self.head
        next_append = self.next_edge.append
        it = iter(endpoints)
        arc_starts = range(first, first + len(endpoints), 2)
        for index, u, v in zip(arc_starts, it, it):
            next_append(head[u])
            head[u] = index
            next_append(head[v])
            head[v] = index + 1
        return first

    def restore_capacities(self, caps0: list[int], full: bool = False) -> int:
        """Reset ``cap`` to ``caps0``, touching only dirty arc pairs.

        With ``full`` (or when the dirty set covers most of the
        network, where a bulk slice copy is cheaper than indexed
        stores) the whole array is copied instead. Returns the number
        of arcs restored individually, or ``-1`` for a full copy — the
        caller turns that into the ``flow.reset.*`` counters.
        """
        dirty = self.dirty
        if full or 3 * len(dirty) >= len(caps0):
            self.cap[:] = caps0
            dirty.clear()
            return -1
        cap = self.cap
        restored = len(dirty)
        for e in dirty:
            cap[e] = caps0[e]
            cap[e ^ 1] = caps0[e ^ 1]
        dirty.clear()
        return restored

    def _bfs(self, source: int, sink: int) -> bool:
        """Build the level graph; True iff the sink is reachable."""
        level = self._level
        level[:] = self._blank
        level[source] = 0
        queue = deque((source,))
        to, cap, nxt = self.to, self.cap, self.next_edge
        head = self.head
        while queue:
            u = queue.popleft()
            e = head[u]
            while e != -1:
                v = to[e]
                if cap[e] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    if v == sink:
                        return True
                    queue.append(v)
                e = nxt[e]
        return level[sink] >= 0

    def _dfs(self, u: int, sink: int, pushed: int | float) -> int:
        """Send blocking flow along level-graph paths (iterative DFS).

        ``path_edges`` holds the edge indices from ``u`` to the current
        vertex. Within one phase an admissible edge that saturates never
        regains capacity (reverse edges are never admissible), so the
        per-vertex edge cursor ``self._iter`` may skip failed edges
        permanently.
        """
        to, cap, nxt = self.to, self.cap, self.next_edge
        level, iters = self._level, self._iter
        dirty = self.dirty
        path_edges: list[int] = []
        total = 0
        augmentations = 0
        vertex = u
        while True:
            if vertex == sink:
                augmentations += 1
                bottleneck = pushed - total
                for e in path_edges:
                    if cap[e] < bottleneck:
                        bottleneck = cap[e]
                for e in path_edges:
                    cap[e] -= bottleneck
                    cap[e ^ 1] += bottleneck
                dirty.update(path_edges)
                total += bottleneck
                if total >= pushed:
                    # Counter flushes are batched per phase: the value
                    # is identical, the per-augmentation call is not.
                    obs.count("flow.dinic.augmentations", augmentations)
                    return total
                # Retreat to just before the first saturated edge.
                cut = len(path_edges)
                for i, e in enumerate(path_edges):
                    if cap[e] == 0:
                        cut = i
                        break
                del path_edges[cut:]
                vertex = u if not path_edges else to[path_edges[-1]]
                continue
            e = iters[vertex]
            while e != -1 and not (
                cap[e] > 0 and level[to[e]] == level[vertex] + 1
            ):
                e = nxt[e]
            iters[vertex] = e
            if e != -1:
                path_edges.append(e)
                vertex = to[e]
            else:
                level[vertex] = -1  # dead end: prune for this phase
                if not path_edges:
                    if augmentations:
                        obs.count(
                            "flow.dinic.augmentations", augmentations
                        )
                    return total
                path_edges.pop()
                vertex = u if not path_edges else to[path_edges[-1]]

    def max_flow(
        self, source: int, sink: int, cutoff: int | float = _INF
    ) -> int | float:
        """Maximum flow from ``source`` to ``sink``.

        With ``cutoff`` set, stops as soon as the accumulated flow
        reaches it and returns ``cutoff`` — exact answers above the
        threshold are never needed by the connectivity code.
        """
        if source == sink:
            raise ParameterError("source and sink must differ")
        obs.count("flow.dinic.calls")
        # Aggregated into the enclosing span (one counter triple, not a
        # tree node per call — there are thousands of calls per run).
        with obs.agg_span("flow.dinic.max_flow"):
            flow = 0
            while flow < cutoff and self._bfs(source, sink):
                obs.count("flow.dinic.bfs_phases")
                self._iter = list(self.head)
                pushed = self._dfs(source, sink, cutoff - flow)
                if pushed == 0:
                    break
                flow += pushed
            if flow >= cutoff:
                obs.count("flow.dinic.cutoff_exits")
            return min(flow, cutoff)

    def min_cut_side(self, source: int) -> set[int]:
        """Vertices reachable from ``source`` in the residual network.

        Valid after :meth:`max_flow` has run to completion (no cutoff
        short-circuit); the returned set is the source side of a minimum
        cut.
        """
        seen = {source}
        queue = deque((source,))
        to, cap, nxt = self.to, self.cap, self.next_edge
        while queue:
            u = queue.popleft()
            e = self.head[u]
            while e != -1:
                v = to[e]
                if cap[e] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
                e = nxt[e]
        return seen
