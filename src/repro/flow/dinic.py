"""Dinic max-flow on array-based residual networks.

This is the flow engine behind every connectivity question in the
library: local connectivity κ(u, v), Multiple Expansion's
``max_flow(u → σ)`` tests, and Flow-Based Merging's ``max_flow(σ → τ)``.

The networks are small-integer-capacity (almost always unit) directed
graphs produced by vertex splitting, so Dinic with adjacency arrays is
the right tool: O(E · sqrt(V)) on unit networks. All k-VCC questions
are threshold questions ("is the flow ≥ k?"), so :meth:`Dinic.max_flow`
accepts a ``cutoff`` and stops as soon as the threshold is reached —
a large practical win that DESIGN.md §5 ablates.
"""

from __future__ import annotations

from collections import deque

from repro import obs
from repro.errors import ParameterError

__all__ = ["Dinic"]

_INF = float("inf")


class Dinic:
    """Array-based Dinic max-flow.

    Vertices are integers ``0 … n-1``. Edges are stored in parallel
    arrays; the reverse edge of edge ``i`` is ``i ^ 1``.
    """

    __slots__ = ("n", "head", "to", "cap", "next_edge", "_level", "_iter")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ParameterError(f"n must be non-negative, got {n}")
        self.n = n
        self.head = [-1] * n
        self.to: list[int] = []
        self.cap: list[float] = []
        self.next_edge: list[int] = []
        self._level = [0] * n
        self._iter = [0] * n

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add directed edge ``u → v`` with the given capacity.

        Returns the internal edge index (its residual twin is index+1).
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ParameterError(f"edge ({u}, {v}) out of range 0..{self.n - 1}")
        if capacity < 0:
            raise ParameterError(f"capacity must be non-negative, got {capacity}")
        index = len(self.to)
        self.to.append(v)
        self.cap.append(capacity)
        self.next_edge.append(self.head[u])
        self.head[u] = index
        self.to.append(u)
        self.cap.append(0)
        self.next_edge.append(self.head[v])
        self.head[v] = index + 1
        return index

    def _bfs(self, source: int, sink: int) -> bool:
        """Build the level graph; True iff the sink is reachable."""
        level = self._level
        for i in range(self.n):
            level[i] = -1
        level[source] = 0
        queue = deque((source,))
        to, cap, nxt = self.to, self.cap, self.next_edge
        while queue:
            u = queue.popleft()
            e = self.head[u]
            while e != -1:
                v = to[e]
                if cap[e] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    if v == sink:
                        return True
                    queue.append(v)
                e = nxt[e]
        return level[sink] >= 0

    def _dfs(self, u: int, sink: int, pushed: float) -> float:
        """Send blocking flow along level-graph paths (iterative DFS).

        ``path_edges`` holds the edge indices from ``u`` to the current
        vertex. Within one phase an admissible edge that saturates never
        regains capacity (reverse edges are never admissible), so the
        per-vertex edge cursor ``self._iter`` may skip failed edges
        permanently.
        """
        to, cap, nxt = self.to, self.cap, self.next_edge
        level, iters = self._level, self._iter
        path_edges: list[int] = []
        total = 0.0
        vertex = u
        while True:
            if vertex == sink:
                obs.count("flow.dinic.augmentations")
                bottleneck = pushed - total
                for e in path_edges:
                    if cap[e] < bottleneck:
                        bottleneck = cap[e]
                for e in path_edges:
                    cap[e] -= bottleneck
                    cap[e ^ 1] += bottleneck
                total += bottleneck
                if total >= pushed:
                    return total
                # Retreat to just before the first saturated edge.
                cut = len(path_edges)
                for i, e in enumerate(path_edges):
                    if cap[e] == 0:
                        cut = i
                        break
                del path_edges[cut:]
                vertex = u if not path_edges else to[path_edges[-1]]
                continue
            e = iters[vertex]
            while e != -1 and not (
                cap[e] > 0 and level[to[e]] == level[vertex] + 1
            ):
                e = nxt[e]
            iters[vertex] = e
            if e != -1:
                path_edges.append(e)
                vertex = to[e]
            else:
                level[vertex] = -1  # dead end: prune for this phase
                if not path_edges:
                    return total
                path_edges.pop()
                vertex = u if not path_edges else to[path_edges[-1]]

    def max_flow(
        self, source: int, sink: int, cutoff: float = _INF
    ) -> float:
        """Maximum flow from ``source`` to ``sink``.

        With ``cutoff`` set, stops as soon as the accumulated flow
        reaches it and returns ``cutoff`` — exact answers above the
        threshold are never needed by the connectivity code.
        """
        if source == sink:
            raise ParameterError("source and sink must differ")
        obs.count("flow.dinic.calls")
        # Aggregated into the enclosing span (one counter triple, not a
        # tree node per call — there are thousands of calls per run).
        with obs.agg_span("flow.dinic.max_flow"):
            flow = 0.0
            while flow < cutoff and self._bfs(source, sink):
                obs.count("flow.dinic.bfs_phases")
                self._iter = list(self.head)
                pushed = self._dfs(source, sink, cutoff - flow)
                if pushed == 0:
                    break
                flow += pushed
            if flow >= cutoff:
                obs.count("flow.dinic.cutoff_exits")
            return min(flow, cutoff)

    def min_cut_side(self, source: int) -> set[int]:
        """Vertices reachable from ``source`` in the residual network.

        Valid after :meth:`max_flow` has run to completion (no cutoff
        short-circuit); the returned set is the source side of a minimum
        cut.
        """
        seen = {source}
        queue = deque((source,))
        to, cap, nxt = self.to, self.cap, self.next_edge
        while queue:
            u = queue.popleft()
            e = self.head[u]
            while e != -1:
                v = to[e]
                if cap[e] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
                e = nxt[e]
        return seen
