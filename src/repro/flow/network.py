"""Vertex-split flow networks for vertex-connectivity queries.

Menger's theorem reduces "how many vertex-disjoint u→v paths exist" to a
max-flow question on the *split* network: every vertex ``w`` becomes an
arc ``w_in → w_out`` of capacity 1, and every undirected edge {u, v}
becomes the two arcs ``u_out → v_in`` and ``v_out → u_in``. A flow from
``u_out`` to ``v_in`` then counts internally-vertex-disjoint paths.

:class:`VertexSplitNetwork` builds the arc structure once per graph and
resets capacities between queries, so repeated local-connectivity tests
(the inner loop of ME and FBM) do not rebuild adjacency arrays.

Virtual vertices (the σ and τ of Theorems 1 and 3) are ordinary vertices
here: callers add them to the member set with their adjacency before
constructing the network, via :meth:`VertexSplitNetwork.with_virtual`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.errors import GraphError, ParameterError
from repro.flow.dinic import Dinic
from repro.graph.adjacency import Graph

__all__ = ["VertexSplitNetwork"]


class VertexSplitNetwork:
    """Reusable vertex-split flow network over an induced subgraph.

    Parameters
    ----------
    graph:
        The host graph.
    members:
        Vertex set to induce the network on (defaults to all vertices).
    virtual_sources:
        Mapping of virtual vertex label → iterable of member vertices it
        is adjacent to. Virtual labels must not collide with members.
    """

    __slots__ = ("_index", "_dinic", "_caps0", "_adjacent")

    def __init__(
        self,
        graph: Graph,
        members: Iterable[Hashable] | None = None,
        virtual_sources: dict[Hashable, Iterable[Hashable]] | None = None,
    ) -> None:
        member_set = (
            graph.vertex_set() if members is None else set(members)
        )
        missing = [u for u in member_set if not graph.has_vertex(u)]
        if missing:
            raise GraphError(f"members not in graph: {missing[:5]!r}")
        virtuals = virtual_sources or {}
        collisions = set(virtuals) & member_set
        if collisions:
            raise ParameterError(
                f"virtual labels collide with members: {collisions!r}"
            )

        self._index: dict[Hashable, int] = {}
        for u in member_set:
            self._index[u] = len(self._index)
        for label in virtuals:
            self._index[label] = len(self._index)

        n = len(self._index)
        dinic = Dinic(2 * n)
        # w_in = 2i, w_out = 2i + 1; internal arc capacity 1.
        for i in range(n):
            dinic.add_edge(2 * i, 2 * i + 1, 1)
        # Edge arcs must exceed any possible flow value so minimum cuts
        # cross only internal arcs — that is what lets min_vertex_cut
        # read the cut as a set of *vertices*. Total flow is capped by
        # the n unit internal arcs, so 2n + 1 is safely "infinite".
        big = 2 * n + 1
        self._adjacent: dict[Hashable, set] = {}
        for u in member_set:
            inside = graph.neighbors(u) & member_set
            self._adjacent[u] = set(inside)
            ui = self._index[u]
            for v in inside:
                vi = self._index[v]
                if ui < vi:
                    dinic.add_edge(2 * ui + 1, 2 * vi, big)
                    dinic.add_edge(2 * vi + 1, 2 * ui, big)
        for label, attached in virtuals.items():
            attach_set = set(attached)
            outside = attach_set - member_set
            if outside:
                raise ParameterError(
                    f"virtual vertex {label!r} attaches outside members: "
                    f"{sorted(map(repr, outside))[:5]}"
                )
            self._adjacent[label] = attach_set
            li = self._index[label]
            for v in attach_set:
                self._adjacent[v].add(label)
                vi = self._index[v]
                dinic.add_edge(2 * li + 1, 2 * vi, big)
                dinic.add_edge(2 * vi + 1, 2 * li, big)
        self._dinic = dinic
        self._caps0 = list(dinic.cap)

    @classmethod
    def with_virtual(
        cls,
        graph: Graph,
        members: Iterable[Hashable],
        virtual_sources: dict[Hashable, Iterable[Hashable]],
    ) -> "VertexSplitNetwork":
        """Explicit-name constructor for networks with virtual vertices."""
        return cls(graph, members, virtual_sources=virtual_sources)

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of (real + virtual) vertices in the network."""
        return len(self._index)

    def contains(self, u: Hashable) -> bool:
        """Whether ``u`` is a member or virtual vertex of this network."""
        return u in self._index

    def adjacent(self, u: Hashable, v: Hashable) -> bool:
        """Whether ``u`` and ``v`` are adjacent inside the network."""
        return v in self._adjacent[u]

    def _reset(self) -> None:
        self._dinic.cap[:] = self._caps0

    def max_flow(
        self, source: Hashable, sink: Hashable, cutoff: float = float("inf")
    ) -> float:
        """Max flow (= vertex-disjoint path count) for a non-adjacent pair.

        Equals κ(source, sink) inside the network by Menger's theorem.
        Adjacent pairs are rejected: no vertex removal separates an
        edge's endpoints, the paper defines κ = ∞ there, and the split
        network's unbounded direct arc would return garbage. Use
        :meth:`local_connectivity_at_least`, which folds the adjacency
        convention in.
        """
        if source == sink:
            raise ParameterError("source and sink must differ")
        for label in (source, sink):
            if label not in self._index:
                raise ParameterError(f"{label!r} is not in the network")
        if self.adjacent(source, sink):
            raise ParameterError(
                f"{source!r} and {sink!r} are adjacent: κ is unbounded "
                "(use local_connectivity_at_least)"
            )
        self._reset()
        s = 2 * self._index[source] + 1  # source's out-node
        t = 2 * self._index[sink]  # sink's in-node
        return self._dinic.max_flow(s, t, cutoff=cutoff)

    def local_connectivity_at_least(
        self, source: Hashable, sink: Hashable, k: int
    ) -> bool:
        """Whether κ(source, sink) ≥ k inside the network.

        Adjacent pairs are infinitely connected by convention
        (Definition 4 of the paper), hence always True.
        """
        if k <= 0:
            return True
        if self.adjacent(source, sink):
            return True
        return self.max_flow(source, sink, cutoff=k) >= k

    def vertex_cut_if_below(
        self, source: Hashable, sink: Hashable, k: int
    ) -> set | None:
        """A minimum vertex cut separating source/sink if κ < k, else None.

        Runs the flow with a cutoff of ``k``: if the true connectivity is
        below the cutoff, Dinic runs to completion, the residual network
        is exact, and the cut can be read off it; otherwise we learn
        "≥ k" cheaply and return None. Adjacent pairs can never be
        separated and return None.
        """
        if self.adjacent(source, sink):
            return None
        flow = self.max_flow(source, sink, cutoff=k)
        if flow >= k:
            return None
        return self._read_cut(source)

    def _read_cut(self, source: Hashable) -> set:
        """Extract the vertex cut from the current residual network."""
        side = self._dinic.min_cut_side(2 * self._index[source] + 1)
        cut: set = set()
        for label, i in self._index.items():
            if 2 * i in side and 2 * i + 1 not in side:
                cut.add(label)
        return cut

    def saturated_arcs(self) -> list[tuple[Hashable, Hashable]]:
        """Edge arcs (u, v) carrying flow after the last max_flow call.

        Only inter-vertex arcs are reported (u_out → v_in), as label
        pairs; internal arcs are implied. Used by the flow-to-paths
        decomposition.
        """
        labels = {i: label for label, i in self._index.items()}
        arcs: list[tuple[Hashable, Hashable]] = []
        for arc in range(0, len(self._dinic.to), 2):
            if self._caps0[arc] - self._dinic.cap[arc] <= 0:
                continue
            head = self._dinic.to[arc]
            tail = self._dinic.to[arc ^ 1]
            if tail % 2 == 1 and head % 2 == 0:
                arcs.append((labels[tail // 2], labels[head // 2]))
        return arcs

    def min_vertex_cut(self, source: Hashable, sink: Hashable) -> set:
        """A minimum vertex cut separating two *non-adjacent* vertices.

        Runs max-flow to completion, then reads the cut off the residual
        reachability: a vertex is in the cut iff its in-node is reachable
        from the source but its out-node is not.
        """
        if self.adjacent(source, sink):
            raise ParameterError(
                f"{source!r} and {sink!r} are adjacent; no vertex cut exists"
            )
        self.max_flow(source, sink)  # leaves residual state in _dinic
        return self._read_cut(source)
