"""Vertex-split flow networks for vertex-connectivity queries.

Menger's theorem reduces "how many vertex-disjoint u→v paths exist" to a
max-flow question on the *split* network: every vertex ``w`` becomes an
arc ``w_in → w_out`` of capacity 1, and every undirected edge {u, v}
becomes the two arcs ``u_out → v_in`` and ``v_out → u_in``. A flow from
``u_out`` to ``v_in`` then counts internally-vertex-disjoint paths.

:class:`VertexSplitNetwork` builds the arc structure once per graph and
resets capacities between queries, so repeated local-connectivity tests
(the inner loop of ME and FBM) do not rebuild adjacency arrays. Three
fast-path mechanics keep construction and repeated queries cheap (all
exact, all toggleable via :mod:`repro.flow.fastpath`):

* **CSR construction** — when the host graph carries a current
  :class:`repro.graph.CsrGraph` snapshot (see ``fastpath.csr``), the
  arc layout is emitted straight from the snapshot's sorted integer
  rows: no per-member set intersection, no eager adjacency dict (the
  :meth:`adjacent` query answers from the snapshot instead). The
  resulting Dinic arc arrays are byte-identical to the dict path's;

* **dirty reset** — the reset between queries restores only the arcs
  the previous query touched (``Dinic.dirty``), turning the per-query
  O(E) capacity copy into O(touched);
* **vertex disabling** — :meth:`disable_vertex` soft-removes a vertex
  by zeroing its split arc and incident edge arcs (with saved-capacity
  bookkeeping so :meth:`enable_vertex` restores them), which lets
  Multiple Expansion shrink its candidate scope between filter passes
  without reconstructing the network.

Vertex labels are indexed in a sorted (repr-keyed) order and incident
arcs are laid out in index order, so the network's edge layout — and
therefore residual-cut tie-breaks — is identical across processes
regardless of ``PYTHONHASHSEED`` (``tests/test_determinism.py``).

Virtual vertices (the σ and τ of Theorems 1 and 3) are ordinary vertices
here: callers add them to the member set with their adjacency before
constructing the network, via :meth:`VertexSplitNetwork.with_virtual`.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Hashable, Iterable

from repro import obs
from repro.errors import GraphError, ParameterError
from repro.flow import fastpath
from repro.flow.dinic import Dinic
from repro.graph.adjacency import Graph

__all__ = ["VertexSplitNetwork"]


class VertexSplitNetwork:
    """Reusable vertex-split flow network over an induced subgraph.

    Parameters
    ----------
    graph:
        The host graph.
    members:
        Vertex set to induce the network on (defaults to all vertices).
    virtual_sources:
        Mapping of virtual vertex label → iterable of member vertices it
        is adjacent to. Virtual labels must not collide with members.
    """

    __slots__ = (
        "_index",
        "_dinic",
        "_caps0",
        "_caps_build",
        "_adjacent",
        "_csr",
        "_virtual_attach",
        "_arcs_of",
        "_blocks",
        "_disabled",
        "_dirty_reset",
        "_queries",
    )

    def __init__(
        self,
        graph: Graph,
        members: Iterable[Hashable] | None = None,
        virtual_sources: dict[Hashable, Iterable[Hashable]] | None = None,
    ) -> None:
        if members is None:
            member_set = graph.vertex_set()
        else:
            member_set = set(members)
            if not member_set.issubset(graph.vertex_view()):
                missing = sorted(
                    member_set.difference(graph.vertex_view()), key=repr
                )
                raise GraphError(f"members not in graph: {missing[:5]!r}")
        virtuals = virtual_sources or {}
        collisions = set(virtuals) & member_set
        if collisions:
            raise ParameterError(
                f"virtual labels collide with members: {collisions!r}"
            )

        obs.count("flow.network.builds")
        config = fastpath.active()
        # Fast path: when the host graph carries a *current* CSR
        # snapshot whose id order is the natural label order, the
        # deterministic sorted layout below can be reproduced straight
        # from the flat rows — no per-member set intersections, no
        # eager adjacency dict. Certificate hosts and ad-hoc subgraphs
        # have no cached snapshot and fall through to the dict path.
        csr = None
        if config.csr:
            getter = getattr(graph, "csr_if_current", None)
            if getter is not None:
                csr = getter()
            if csr is not None and not csr.natural_order:
                # A subset of a repr-sorted label universe may sort
                # differently on its own; ids cannot stand in for
                # sorted labels, so take the dict path.
                csr = None
            if csr is None:
                obs.count("flow.csr.fallbacks")

        # Index members in sorted order so the arc layout does not
        # depend on set iteration order (hash randomisation); repr is
        # the tie-break for label sets no natural order covers. Virtual
        # labels follow in their mapping's insertion order.
        if csr is not None:
            gids = sorted(map(csr.index.__getitem__, member_set))
            labels = csr.labels
            member_order = [labels[g] for g in gids]
        else:
            try:
                member_order = sorted(member_set)
            except TypeError:
                member_order = sorted(member_set, key=repr)
        index: dict[Hashable, int] = {
            u: i for i, u in enumerate(member_order)
        }
        for label in virtuals:
            index[label] = len(index)
        self._index = index

        n = len(index)
        dinic = Dinic(2 * n)
        # Incident arc ids per vertex, recovered lazily from the Dinic
        # adjacency on the first disable_vertex (most networks never
        # disable anything, and recording ids per edge here would cost
        # a third of the construction time).
        self._arcs_of: dict[Hashable, list[int]] = {}
        # w_in = 2i, w_out = 2i + 1; internal arc capacity 1. Added
        # first and in index order, so label i's internal arc sits at
        # edge index 2i — and the flattened (2i, 2i+1) pair list is
        # just 0..2n-1.
        dinic.add_split_pairs()
        # Edge arcs must exceed any possible flow value so minimum cuts
        # cross only internal arcs — that is what lets min_vertex_cut
        # read the cut as a set of *vertices*. Total flow is capped by
        # the n unit internal arcs, so 2n + 1 is safely "infinite".
        big = 2 * n + 1
        endpoints: list[int] = []
        if csr is not None:
            obs.count("flow.csr.network_builds")
            self._adjacent = None
            self._csr = csr
            # Member rows are sorted by global id, and local indices
            # ascend with global ids over the member subset, so the
            # upper-index arcs come out already sorted — byte-identical
            # to the dict path's sorted layout.
            local_get = dict(zip(gids, range(len(gids)))).get
            rows = csr.rows_list()
            for ui, g in enumerate(gids):
                out = 2 * ui + 1
                base = 2 * ui
                row = rows[g]
                # Rows are sorted and local indices ascend with global
                # ids, so ``vi > ui`` is exactly ``gv > g`` — bisect to
                # the upper tail and probe membership only there.
                for gv in row[bisect_right(row, g):]:
                    vi = local_get(gv)
                    if vi is not None:
                        # One in-place tuple extend per arc instead of
                        # four append calls — this pair loop dominates
                        # construction on the CSR path.
                        endpoints += (out, 2 * vi, 2 * vi + 1, base)
            self._virtual_attach: dict[Hashable, set] | None = {}
            for label, attached in virtuals.items():
                attach_set = set(attached)
                outside = attach_set - member_set
                if outside:
                    raise ParameterError(
                        f"virtual vertex {label!r} attaches outside "
                        f"members: {sorted(map(repr, outside))[:5]}"
                    )
                self._virtual_attach[label] = attach_set
                li = index[label]
                l_out = 2 * li + 1
                l_in = 2 * li
                attach_indices = sorted(map(index.__getitem__, attach_set))
                for vi in attach_indices:
                    endpoints += (l_out, 2 * vi, 2 * vi + 1, l_in)
        else:
            self._csr = None
            self._virtual_attach = None
            adjacent: dict[Hashable, set] = {}
            self._adjacent = adjacent
            neighbors = graph.neighbors
            for ui, u in enumerate(member_order):
                inside = neighbors(u) & member_set
                adjacent[u] = inside
                # Each undirected edge is laid out once, from its lower
                # index; sorting the (halved) index list keeps the arc
                # layout independent of set iteration order.
                upper = [vi for v in inside if (vi := index[v]) > ui]
                upper.sort()
                out = 2 * ui + 1
                base = 2 * ui
                for vi in upper:
                    endpoints += (out, 2 * vi, 2 * vi + 1, base)
            for label, attached in virtuals.items():
                attach_set = set(attached)
                outside = attach_set - member_set
                if outside:
                    raise ParameterError(
                        f"virtual vertex {label!r} attaches outside "
                        f"members: {sorted(map(repr, outside))[:5]}"
                    )
                adjacent[label] = attach_set
                li = index[label]
                l_out = 2 * li + 1
                l_in = 2 * li
                attach_indices = [index[v] for v in attach_set]
                attach_indices.sort()
                for vi in attach_indices:
                    adjacent[member_order[vi]].add(label)
                    endpoints += (l_out, 2 * vi, 2 * vi + 1, l_in)
        dinic.add_edges(endpoints, big)
        self._dinic = dinic
        self._caps0 = list(dinic.cap)
        # Pristine construction-time capacities: _caps0 additionally
        # reflects disabled vertices, this copy never changes. Aliased
        # until the first disable actually diverges them (most networks
        # never disable anything, and the extra O(E) copy would show).
        self._caps_build = self._caps0
        self._blocks: dict[int, int] = {}
        self._disabled: set = set()
        self._dirty_reset = config.dirty_reset
        self._queries = 0

    @classmethod
    def with_virtual(
        cls,
        graph: Graph,
        members: Iterable[Hashable],
        virtual_sources: dict[Hashable, Iterable[Hashable]],
    ) -> "VertexSplitNetwork":
        """Explicit-name constructor for networks with virtual vertices."""
        return cls(graph, members, virtual_sources=virtual_sources)

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of (real + virtual) vertices in the network."""
        return len(self._index)

    def contains(self, u: Hashable) -> bool:
        """Whether ``u`` is a member or virtual vertex of this network."""
        return u in self._index

    def adjacent(self, u: Hashable, v: Hashable) -> bool:
        """Whether ``u`` and ``v`` are adjacent inside the network."""
        adjacent = self._adjacent
        if adjacent is not None:
            return v in adjacent[u]
        # CSR-built network: virtual adjacency from the attach sets,
        # member adjacency from the snapshot's sorted rows. Unknown
        # ``u`` raises KeyError exactly like the dict path.
        attach = self._virtual_attach
        attached = attach.get(u)
        if attached is not None:
            return v in attached
        index = self._index
        if u not in index:
            raise KeyError(u)
        attached = attach.get(v)
        if attached is not None:
            return u in attached
        if v not in index:
            return False
        return self._csr.has_edge_labels(u, v)

    def is_disabled(self, u: Hashable) -> bool:
        """Whether ``u`` is currently soft-removed by :meth:`disable_vertex`."""
        return u in self._disabled

    def disable_vertex(self, u: Hashable) -> None:
        """Soft-remove ``u``: zero its split arc and incident edge arcs.

        Flow can no longer pass through (or start/end at) ``u``, so
        queries behave exactly as on the network rebuilt without it.
        The zeroed capacities are folded into the reset baseline, which
        is what lets one network object serve every pass of an ME
        filter round. Re-enable with :meth:`enable_vertex`.
        """
        if u not in self._index:
            raise ParameterError(f"{u!r} is not in the network")
        if u in self._disabled:
            raise ParameterError(f"{u!r} is already disabled")
        if self._caps_build is self._caps0:
            self._caps_build = list(self._caps0)
        self._disabled.add(u)
        obs.count("flow.network.vertex_disables")
        caps0, cap, blocks = self._caps0, self._dinic.cap, self._blocks
        for arc in self._incident_arcs(u):
            blocks[arc] = blocks.get(arc, 0) + 1
            caps0[arc] = 0
            cap[arc] = 0

    def enable_vertex(self, u: Hashable) -> None:
        """Undo :meth:`disable_vertex`, restoring the saved capacities.

        An arc shared with another still-disabled vertex stays at zero
        until that vertex is enabled too (per-arc block counting).
        """
        if u not in self._disabled:
            raise ParameterError(f"{u!r} is not disabled")
        self._disabled.discard(u)
        caps0, cap, blocks = self._caps0, self._dinic.cap, self._blocks
        build = self._caps_build
        for arc in self._incident_arcs(u):
            blocks[arc] -= 1
            if blocks[arc] == 0:
                del blocks[arc]
                caps0[arc] = build[arc]
                cap[arc] = build[arc]

    def _incident_arcs(self, u: Hashable) -> list[int]:
        """Every Dinic arc touching ``u``'s split pair, twins included.

        Walked from the adjacency arrays on first use and cached: the
        chains of ``u_in`` and ``u_out`` hold the internal arc, every
        incident edge arc's forward copy, and the residual twins of the
        arcs pointing at ``u`` — so ``e`` plus ``e ^ 1`` over both
        chains covers the vertex's whole footprint. (Twins are zero in
        the pristine capacities; blocking and restoring them is a
        harmless no-op that keeps this enumeration simple.)
        """
        arcs = self._arcs_of.get(u)
        if arcs is None:
            dinic = self._dinic
            head, next_edge = dinic.head, dinic.next_edge
            ui = self._index[u]
            arcs = []
            for node in (2 * ui, 2 * ui + 1):
                e = head[node]
                while e != -1:
                    arcs.append(e)
                    arcs.append(e ^ 1)
                    e = next_edge[e]
            self._arcs_of[u] = arcs
        return arcs

    def _reset(self) -> None:
        restored = self._dinic.restore_capacities(
            self._caps0, full=not self._dirty_reset
        )
        if restored < 0:
            obs.count("flow.reset.full")
        else:
            obs.count("flow.reset.dirty_edges", restored)

    def max_flow(
        self, source: Hashable, sink: Hashable, cutoff: float = float("inf")
    ) -> int | float:
        """Max flow (= vertex-disjoint path count) for a non-adjacent pair.

        Equals κ(source, sink) inside the network by Menger's theorem.
        Adjacent pairs are rejected: no vertex removal separates an
        edge's endpoints, the paper defines κ = ∞ there, and the split
        network's unbounded direct arc would return garbage. Use
        :meth:`local_connectivity_at_least`, which folds the adjacency
        convention in.
        """
        if source == sink:
            raise ParameterError("source and sink must differ")
        for label in (source, sink):
            if label not in self._index:
                raise ParameterError(f"{label!r} is not in the network")
            if label in self._disabled:
                raise ParameterError(f"{label!r} is disabled in the network")
        if self.adjacent(source, sink):
            raise ParameterError(
                f"{source!r} and {sink!r} are adjacent: κ is unbounded "
                "(use local_connectivity_at_least)"
            )
        if self._queries:
            obs.count("flow.network.reuses")
        self._queries += 1
        self._reset()
        s = 2 * self._index[source] + 1  # source's out-node
        t = 2 * self._index[sink]  # sink's in-node
        return self._dinic.max_flow(s, t, cutoff=cutoff)

    def local_connectivity_at_least(
        self, source: Hashable, sink: Hashable, k: int
    ) -> bool:
        """Whether κ(source, sink) ≥ k inside the network.

        Adjacent pairs are infinitely connected by convention
        (Definition 4 of the paper), hence always True.
        """
        if k <= 0:
            return True
        if self.adjacent(source, sink):
            return True
        return self.max_flow(source, sink, cutoff=k) >= k

    def vertex_cut_if_below(
        self, source: Hashable, sink: Hashable, k: int
    ) -> set | None:
        """A minimum vertex cut separating source/sink if κ < k, else None.

        Runs the flow with a cutoff of ``k``: if the true connectivity is
        below the cutoff, Dinic runs to completion, the residual network
        is exact, and the cut can be read off it; otherwise we learn
        "≥ k" cheaply and return None. Adjacent pairs can never be
        separated and return None.
        """
        if self.adjacent(source, sink):
            return None
        flow = self.max_flow(source, sink, cutoff=k)
        if flow >= k:
            return None
        return self._read_cut(source)

    def _read_cut(self, source: Hashable) -> set:
        """Extract the vertex cut from the current residual network."""
        side = self._dinic.min_cut_side(2 * self._index[source] + 1)
        cut: set = set()
        for label, i in self._index.items():
            if 2 * i in side and 2 * i + 1 not in side:
                cut.add(label)
        return cut

    def saturated_arcs(self) -> list[tuple[Hashable, Hashable]]:
        """Edge arcs (u, v) carrying flow after the last max_flow call.

        Only inter-vertex arcs are reported (u_out → v_in), as label
        pairs; internal arcs are implied. Used by the flow-to-paths
        decomposition.
        """
        labels = {i: label for label, i in self._index.items()}
        arcs: list[tuple[Hashable, Hashable]] = []
        for arc in range(0, len(self._dinic.to), 2):
            if self._caps0[arc] - self._dinic.cap[arc] <= 0:
                continue
            head = self._dinic.to[arc]
            tail = self._dinic.to[arc ^ 1]
            if tail % 2 == 1 and head % 2 == 0:
                arcs.append((labels[tail // 2], labels[head // 2]))
        return arcs

    def min_vertex_cut(self, source: Hashable, sink: Hashable) -> set:
        """A minimum vertex cut separating two *non-adjacent* vertices.

        Runs max-flow to completion, then reads the cut off the residual
        reachability: a vertex is in the cut iff its in-node is reachable
        from the source but its out-node is not.
        """
        if self.adjacent(source, sink):
            raise ParameterError(
                f"{source!r} and {sink!r} are adjacent; no vertex cut exists"
            )
        self.max_flow(source, sink)  # leaves residual state in _dinic
        return self._read_cut(source)
