"""k-truss decomposition (Huang et al., the paper's reference [17]).

The k-truss is the maximal subgraph in which every edge is supported by
at least k-2 triangles. It sits between the k-core and the clique in
the cohesion ladder the paper's introduction walks: stronger than
degree constraints, still purely local — a k-truss can be split by
removing few vertices, which is exactly the weakness k-VCCs fix.
Implemented here so the comparison examples/benches can put all four
models (k-core, k-truss, k-ECC, k-VCC) side by side.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["k_truss", "truss_numbers"]


def _support(graph: Graph) -> dict[frozenset, int]:
    """Triangle support of every edge."""
    return {
        frozenset((u, v)): len(graph.neighbors(u) & graph.neighbors(v))
        for u, v in graph.edges()
    }


def k_truss(graph: Graph, k: int) -> Graph:
    """The k-truss: maximal subgraph with edge support ≥ k-2 everywhere.

    Standard peeling: repeatedly delete edges with fewer than k-2
    triangles, updating the supports of the surviving edges that shared
    those triangles. Isolated vertices left behind are dropped (the
    truss is an edge-induced notion). Runs in O(m^1.5) time.
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    work = graph.copy()
    threshold = k - 2
    support = _support(work)
    queue = deque(e for e, s in support.items() if s < threshold)
    queued = set(queue)
    while queue:
        edge = queue.popleft()
        u, v = tuple(edge)
        if not work.has_edge(u, v):
            continue
        for w in work.neighbors(u) & work.neighbors(v):
            for other in (frozenset((u, w)), frozenset((v, w))):
                support[other] -= 1
                if support[other] < threshold and other not in queued:
                    queue.append(other)
                    queued.add(other)
        work.remove_edge(u, v)
    work.remove_vertices(
        [w for w in work.vertices() if work.degree(w) == 0]
    )
    return work


def truss_numbers(graph: Graph) -> dict[frozenset, int]:
    """The truss number of every edge: the largest k whose k-truss keeps it.

    Peels edges in non-decreasing support order (the edge analogue of
    core decomposition); every edge's truss number is its support at
    removal time plus 2, made monotone.
    """
    work = graph.copy()
    support = _support(work)
    numbers: dict[frozenset, int] = {}
    current = 0
    while support:
        edge = min(support, key=support.get)
        current = max(current, support[edge])
        numbers[edge] = current + 2
        u, v = tuple(edge)
        for w in work.neighbors(u) & work.neighbors(v):
            for other in (frozenset((u, w)), frozenset((v, w))):
                if other in support and support[other] > 0:
                    support[other] -= 1
        del support[edge]
        work.remove_edge(u, v)
    return numbers
