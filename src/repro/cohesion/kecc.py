"""k-edge connected components (the paper's references [6][40]).

A k-ECC is a maximal subgraph that survives the removal of any k-1
*edges*. Unlike k-VCCs, k-ECCs are vertex-disjoint, so the classic
partition framework is exact: find a global edge cut below k, remove
it, recurse on the pieces. Edge connectivity questions reduce to plain
(non-vertex-split) max-flow: λ(u, v) equals the max flow with one unit
arc per edge direction, and the global λ is the minimum of λ(s, v)
over any fixed s (every cut separates s from somebody).

Built on the same Dinic engine as the vertex machinery; used by the
cohesion-model comparison example and bench to place k-VCC against the
weaker edge-based notion the paper's introduction discusses.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.errors import ParameterError
from repro.flow.dinic import Dinic
from repro.graph.adjacency import Graph
from repro.graph.traversal import connected_components

__all__ = [
    "local_edge_connectivity",
    "global_edge_connectivity",
    "find_edge_cut",
    "k_edge_components",
]


class _EdgeFlowNetwork:
    """Reusable unit-capacity flow network over a graph's edges."""

    def __init__(self, graph: Graph) -> None:
        self._index = {u: i for i, u in enumerate(graph.vertices())}
        self._dinic = Dinic(len(self._index))
        for u, v in graph.edges():
            i, j = self._index[u], self._index[v]
            # one arc pair per direction so each undirected edge
            # carries at most one unit each way
            self._dinic.add_edge(i, j, 1)
            self._dinic.add_edge(j, i, 1)
        self._caps0 = list(self._dinic.cap)

    def max_flow(
        self, source: Hashable, sink: Hashable, cutoff: float = float("inf")
    ) -> float:
        self._dinic.cap[:] = self._caps0
        return self._dinic.max_flow(
            self._index[source], self._index[sink], cutoff=cutoff
        )

    def cut_side(self, source: Hashable) -> set:
        side = self._dinic.min_cut_side(self._index[source])
        labels = {i: u for u, i in self._index.items()}
        return {labels[i] for i in side}


def local_edge_connectivity(graph: Graph, u: Hashable, v: Hashable) -> int:
    """λ(u, v): minimum edges to remove to disconnect u from v."""
    if u == v:
        raise ParameterError("edge connectivity needs two distinct vertices")
    for label in (u, v):
        if not graph.has_vertex(label):
            raise ParameterError(f"{label!r} is not in the graph")
    return int(_EdgeFlowNetwork(graph).max_flow(u, v))


def global_edge_connectivity(graph: Graph) -> int:
    """λ(G) for a graph with at least two vertices."""
    if graph.num_vertices < 2:
        raise ParameterError("edge connectivity needs at least two vertices")
    network = _EdgeFlowNetwork(graph)
    anchor = next(iter(graph.vertices()))
    best = graph.min_degree()
    for v in graph.vertices():
        if v == anchor:
            continue
        best = min(best, int(network.max_flow(anchor, v, cutoff=best)))
        if best == 0:
            return 0
    return best


def find_edge_cut(graph: Graph, k: int) -> set[frozenset] | None:
    """An edge cut of size < k, or None if the graph is k-edge connected.

    Requires a connected input (the k-ECC partitioner handles
    components); single-vertex graphs have no cut and return None.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if graph.num_vertices <= 1:
        return None
    network = _EdgeFlowNetwork(graph)
    anchor = next(iter(graph.vertices()))
    if graph.degree(anchor) < k:
        return {
            frozenset((anchor, w)) for w in graph.neighbors(anchor)
        }
    for v in graph.vertices():
        if v == anchor:
            continue
        flow = network.max_flow(anchor, v, cutoff=k)
        if flow < k:
            side = network.cut_side(anchor)
            return {
                frozenset((a, b))
                for a, b in graph.edges()
                if (a in side) != (b in side)
            }
    return None


def k_edge_components(graph: Graph, k: int) -> list[set]:
    """All k-edge connected components with more than one vertex.

    Exact partition framework: split each connected piece along any
    edge cut of size < k until every piece is k-edge connected.
    Components are vertex-disjoint and returned largest-first.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    result: list[set] = []
    pending = [c for c in connected_components(graph) if len(c) > 1]
    while pending:
        members = pending.pop()
        piece = graph.subgraph(members)
        cut = find_edge_cut(piece, k)
        if cut is None:
            result.append(set(members))
            continue
        for edge in cut:
            u, v = tuple(edge)
            piece.remove_edge(u, v)
        pending.extend(
            c for c in connected_components(piece) if len(c) > 1
        )
    return sorted(result, key=lambda c: (-len(c), sorted(map(repr, c))))
