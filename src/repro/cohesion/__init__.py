"""Related cohesive-subgraph models the paper positions k-VCCs against.

The introduction's cohesion ladder: k-core (degree) < k-truss
(triangles) < k-ECC (edge connectivity) < k-VCC (vertex connectivity).
k-core lives in :mod:`repro.graph.kcore`; this package adds the other
two comparators.
"""

from repro.cohesion.kecc import (
    find_edge_cut,
    global_edge_connectivity,
    k_edge_components,
    local_edge_connectivity,
)
from repro.cohesion.ktruss import k_truss, truss_numbers

__all__ = [
    "find_edge_cut",
    "global_edge_connectivity",
    "k_edge_components",
    "k_truss",
    "local_edge_connectivity",
    "truss_numbers",
]
