"""Parallel RIPPLE: the three-stage task decomposition of Section VI-E.

The paper parallelises RIPPLE with OpenMP in three places:

1. **QkVCS** — maximal-clique enumeration is split by degeneracy-order
   roots, and the LkVCS fallback sweep is split by start vertex;
2. **FBM** — the pairwise merge conditions of one round are evaluated
   concurrently, then the accepted merges are applied through a
   union-find (resolving the data contention the paper describes by
   construction instead of locking);
3. **RME** — each seed subgraph expands independently.

Substitution note (DESIGN.md §3): CPython threads cannot run this
CPU-bound work concurrently under the GIL, so the default backend is a
``multiprocessing`` pool — each worker receives the (immutable) k-core
once via its initializer, and tasks ship only vertex sets. A thread
backend is kept for measuring the task decomposition without process
overhead; with it, wall-clock speedups are bounded near 1 by the GIL,
which the Figure 10 bench reports explicitly.

All dispatch goes through :class:`repro.resilience.SupervisedPool`:
worker crashes rebuild the pool and re-dispatch the in-flight work,
hung tasks time out, garbage results are caught by per-stage
validators, and repeated failures degrade the run to in-process
sequential execution — same components, no parallelism. A
:class:`repro.resilience.Deadline` is honoured at stage boundaries and
yields a partial result with a resumable checkpoint.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from repro import obs
from repro.core.expansion import ring_expansion
from repro.core.merging import flow_based_merge_condition
from repro.core.result import PhaseTimer, VCCResult
from repro.core.seeding import kbfs_seeds, lkvcs
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.cliques import cliques_from_roots
from repro.graph.kcore import degeneracy_ordering, k_core
from repro.resilience.deadline import Deadline, as_deadline
from repro.resilience.supervisor import SupervisedPool, SupervisionConfig

__all__ = ["parallel_ripple", "ParallelConfig"]

# Worker-global state, installed by the pool initializer so that task
# payloads stay tiny (vertex sets only). With the default fork start
# method the graph is shared copy-on-write; under spawn it is pickled
# once per worker rather than once per task. ``spans`` mirrors whether
# the orchestrator's collector records span trees, so worker tasks only
# pay for span recording when someone is looking.
_WORKER_GRAPH: Graph | None = None
_WORKER_K: int = 0
_WORKER_SPANS: bool = False


def _init_worker(graph: Graph, k: int, spans: bool = False) -> None:
    global _WORKER_GRAPH, _WORKER_K, _WORKER_SPANS
    _WORKER_GRAPH = graph
    _WORKER_K = k
    _WORKER_SPANS = spans


# Every task records into a collector scoped to the task (the obs
# active-collector is thread-local, so this is race-free under both
# backends) and returns the snapshot alongside its payload. The
# orchestrator folds the snapshots into its own collector, so per-run
# totals include worker-side flow calls, merge tests and absorptions.
# When span recording is on, each task opens a ``task.*`` root span
# whose subtree ships back inside the snapshot; merging re-parents it
# under the dispatching stage span (origin="worker").


def _expand_task(seed: frozenset) -> tuple[frozenset, dict]:
    with obs.collecting(spans=_WORKER_SPANS) as collector:
        with obs.start_span("task.expand", size=len(seed)):
            grown = frozenset(
                ring_expansion(_WORKER_GRAPH, _WORKER_K, set(seed))
            )
            obs.set_span_attrs(grown=len(grown))
    return grown, collector.snapshot()


def _merge_pair_task(
    pair: tuple[frozenset, frozenset, int, int]
) -> tuple[bool, dict]:
    side_a, side_b, left_id, right_id = pair
    with obs.collecting(spans=_WORKER_SPANS) as collector:
        with obs.start_span(
            "task.merge_test",
            pair=[left_id, right_id],
            sizes=[len(side_a), len(side_b)],
        ):
            verdict = flow_based_merge_condition(
                _WORKER_GRAPH,
                _WORKER_K,
                set(side_a),
                set(side_b),
                PhaseTimer(),
            )
            obs.set_span_attrs(accepted=verdict)
    return verdict, collector.snapshot()


def _clique_roots_task(
    payload: tuple[dict, tuple]
) -> tuple[list[frozenset], dict]:
    position, roots = payload
    with obs.collecting(spans=_WORKER_SPANS) as collector:
        with obs.start_span("task.cliques", roots=len(roots)):
            cliques = list(
                cliques_from_roots(
                    _WORKER_GRAPH, _WORKER_K + 1, position, list(roots)
                )
            )
    return cliques, collector.snapshot()


def _lkvcs_task(
    payload: tuple[object, int]
) -> tuple[frozenset | None, dict]:
    vertex, alpha = payload
    with obs.collecting(spans=_WORKER_SPANS) as collector:
        with obs.start_span("task.lkvcs"):
            seed = lkvcs(_WORKER_GRAPH, _WORKER_K, vertex, alpha=alpha)
    found = None if seed is None else frozenset(seed)
    return found, collector.snapshot()


def _absorb(snapshot: dict) -> None:
    """Fold one worker task's counter snapshot into the ambient collector."""
    obs.count("parallel.tasks_completed")
    obs.get_collector().merge(snapshot)


# Per-stage result validators for the supervised pool: a worker that
# returns garbage (fault injection, memory corruption, a mismatched
# pickle) is detected here and treated like a crash — retried, never
# folded into the component pool.


def _is_snapshot_pair(value) -> bool:
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[1], dict)
    )


def _valid_expand(value) -> bool:
    return _is_snapshot_pair(value) and isinstance(value[0], frozenset)


def _valid_merge(value) -> bool:
    return _is_snapshot_pair(value) and isinstance(value[0], bool)


def _valid_cliques(value) -> bool:
    return _is_snapshot_pair(value) and isinstance(value[0], list)


def _valid_lkvcs(value) -> bool:
    return _is_snapshot_pair(value) and (
        value[0] is None or isinstance(value[0], frozenset)
    )


class ParallelConfig:
    """How to run the pool: worker count and backend.

    ``backend`` is ``"process"`` (true parallelism, default) or
    ``"thread"`` (GIL-bound; useful to isolate decomposition overhead).
    """

    def __init__(self, workers: int = 2, backend: str = "process") -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if backend not in ("process", "thread"):
            raise ParameterError(
                f"backend must be 'process' or 'thread', got {backend!r}"
            )
        self.workers = workers
        self.backend = backend

    def make_pool(
        self, graph: Graph, k: int, spans: bool = False
    ) -> Executor:
        if self.backend == "thread":
            # Threads share the interpreter: install the globals directly.
            _init_worker(graph, k, spans)
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(graph, k, spans),
        )


def _chunks(items: list, pieces: int) -> list[tuple]:
    """Split ``items`` into at most ``pieces`` round-robin chunks."""
    return [
        tuple(items[i::pieces]) for i in range(pieces) if items[i::pieces]
    ]


def parallel_ripple(
    graph: Graph,
    k: int,
    config: ParallelConfig | None = None,
    alpha: int = 1000,
    supervision: SupervisionConfig | None = None,
    deadline: Deadline | float | None = None,
    resume_from: Iterable[frozenset] | None = None,
) -> VCCResult:
    """RIPPLE with its three stages fanned out over a supervised pool.

    Produces the same components as :func:`repro.core.ripple` up to
    heuristic tie-breaking — including under worker crashes, hangs, and
    garbage results, which the supervision layer recovers from
    (``supervision`` tunes timeouts/retries; the result's ``status``
    reports ``"degraded"`` when the pool had to fall back to sequential
    execution). ``deadline`` bounds the wall clock: past it the run
    stops at the next stage boundary with ``status="deadline"`` and a
    resumable ``checkpoint`` (pass it back via ``resume_from``).
    """
    if k < 2:
        raise ParameterError(f"k must be >= 2, got {k}")
    config = config or ParallelConfig()
    budget = as_deadline(deadline)
    timer = PhaseTimer()
    name = f"RIPPLE-parallel[{config.backend} x{config.workers}]"
    # An empty checkpoint means the interrupted run never finished
    # seeding, so resuming from it must seed from scratch.
    resume = list(resume_from) if resume_from is not None else None
    if not resume:
        resume = None
    components: list[set] = (
        [] if resume is None else [set(c) for c in resume]
    )

    def partial(status: str) -> VCCResult:
        obs.count(
            "resilience.deadline_stops"
            if status == "deadline"
            else "resilience.interrupts"
        )
        with timer.phase("finalize"):
            final = _finalize(components, k)
        return VCCResult(
            final,
            k=k,
            algorithm=name,
            timer=timer,
            status=status,
            checkpoint=[frozenset(c) for c in components],
        )

    if budget.expired():
        return partial("deadline")
    expired = False
    degraded = False
    # Workers record span subtrees only when the orchestrator's own
    # collector does — otherwise span recording stays entirely off.
    spans_on = obs.get_collector().spans is not None
    try:
        with obs.start_span(
            "pipeline.run",
            algorithm=name,
            k=k,
            backend=config.backend,
            workers=config.workers,
        ):
            with timer.phase("kcore", k=k):
                core = k_core(graph, k)
            if core.num_vertices <= k:
                return VCCResult([], k=k, algorithm=name, timer=timer)

            spool = SupervisedPool(
                make_pool=lambda: config.make_pool(core, k, spans_on),
                install_local=lambda: _init_worker(core, k, spans_on),
                backend=config.backend,
                supervision=supervision,
            )
            with spool:
                if resume is None:
                    if budget.expired():
                        return partial("deadline")
                    with timer.phase("seeding"):
                        components = _parallel_seeding(
                            spool, core, k, alpha, config, timer
                        )
                if budget.expired():
                    return partial("deadline")
                if components:
                    components, expired = _merge_expand_loop(
                        spool, core, k, components, timer, budget
                    )
                degraded = spool.degraded
    except KeyboardInterrupt:
        return partial("interrupted")
    if expired:
        return partial("deadline")
    with timer.phase("finalize"):
        final = _finalize(components, k)
    return VCCResult(
        final,
        k=k,
        algorithm=name,
        timer=timer,
        status="degraded" if degraded else "completed",
    )


def _parallel_seeding(
    spool: SupervisedPool,
    core: Graph,
    k: int,
    alpha: int,
    config: ParallelConfig,
    timer: PhaseTimer,
) -> list[set]:
    """QkVCS with parallel clique roots and parallel LkVCS fallback."""
    with obs.start_span("seeding.kbfs"):
        seeds = [set(s) for s in kbfs_seeds(core, k, timer=timer)]
    order = degeneracy_ordering(core)
    position = {u: i for i, u in enumerate(order)}
    payloads = [
        (position, chunk) for chunk in _chunks(order, 4 * config.workers)
    ]
    with obs.start_span(
        "parallel.stage", stage="seeding.cliques", tasks=len(payloads)
    ):
        for cliques, stats in spool.run(
            "seeding.cliques",
            _clique_roots_task,
            payloads,
            validate=_valid_cliques,
        ):
            _absorb(stats)
            seeds.extend(set(c) for c in cliques)
    covered: set = set().union(*seeds) if seeds else set()
    uncovered = sorted(
        (u for u in core.vertices() if u not in covered), key=core.degree
    )
    with obs.start_span(
        "parallel.stage", stage="seeding.lkvcs", tasks=len(uncovered)
    ):
        for found, stats in spool.run(
            "seeding.lkvcs",
            _lkvcs_task,
            [(u, alpha) for u in uncovered],
            validate=_valid_lkvcs,
        ):
            _absorb(stats)
            # Results arrive in submission order; respecting prior
            # coverage here mirrors the sequential sweep's skip rule.
            if found is not None and not (found <= covered):
                seeds.append(set(found))
                covered |= found
    return _dedupe(seeds)


def _merge_expand_loop(
    spool: SupervisedPool,
    core: Graph,
    k: int,
    components: list[set],
    timer: PhaseTimer,
    budget: Deadline,
) -> tuple[list[set], bool]:
    """Alternate parallel FBM rounds and parallel RME until stable.

    Returns ``(components, expired)`` — ``expired`` flags a deadline
    stop at a stage boundary, with ``components`` the partial pool.
    """
    while True:
        before = {frozenset(c) for c in components}
        with timer.phase("merging"):
            components = _parallel_merge(spool, core, k, components, timer)
        if budget.expired():
            return components, True
        with timer.phase("expansion"):
            expanded = []
            with obs.start_span(
                "parallel.stage",
                stage="expansion",
                tasks=len(components),
            ):
                for grown, stats in spool.run(
                    "expansion",
                    _expand_task,
                    [frozenset(c) for c in components],
                    validate=_valid_expand,
                ):
                    _absorb(stats)
                    expanded.append(set(grown))
            components = expanded
        timer.count("rounds")
        if {frozenset(c) for c in components} == before:
            return components, False
        if budget.expired():
            return components, True


def _parallel_merge(
    spool: SupervisedPool,
    core: Graph,
    k: int,
    components: list[set],
    timer: PhaseTimer,
) -> list[set]:
    """Rounds of concurrent pair checks + union-find application.

    Merging accepted pairs through a union-find is sound even for
    chains: any two accepted sets that end up in one group overlap in a
    whole component of > k vertices, so the union stays k-connected.
    """
    pool_sets = [set(c) for c in components]
    while True:
        candidates = [
            (i, j)
            for i, j in itertools.combinations(range(len(pool_sets)), 2)
            if _touches(core, pool_sets[i], pool_sets[j])
        ]
        if not candidates:
            return pool_sets
        with obs.start_span(
            "parallel.stage", stage="merging", tasks=len(candidates)
        ):
            verdicts = spool.run(
                "merging",
                _merge_pair_task,
                [
                    (frozenset(pool_sets[i]), frozenset(pool_sets[j]), i, j)
                    for i, j in candidates
                ],
                validate=_valid_merge,
            )
            parent = list(range(len(pool_sets)))

            def find(x: int) -> int:
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            merged_any = False
            for (i, j), (ok, stats) in zip(candidates, verdicts):
                _absorb(stats)
                if ok:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[rj] = ri
                        merged_any = True
                        timer.count("merges")
        if not merged_any:
            return pool_sets
        groups: dict[int, set] = {}
        for idx, comp in enumerate(pool_sets):
            groups.setdefault(find(idx), set()).update(comp)
        pool_sets = list(groups.values())


def _touches(graph: Graph, side_a: set, side_b: set) -> bool:
    small, large = sorted((side_a, side_b), key=len)
    if small & large:
        return True
    return any(graph.neighbors(u) & large for u in small)


def _dedupe(seeds: list[set]) -> list[set]:
    unique: list[set] = []
    for seed in sorted(seeds, key=len, reverse=True):
        if any(seed <= kept for kept in unique):
            continue
        unique.append(set(seed))
    return unique


def _finalize(components: list[set], k: int) -> list[frozenset]:
    ordered = sorted(
        {frozenset(c) for c in components}, key=len, reverse=True
    )
    kept: list[frozenset] = []
    for comp in ordered:
        if len(comp) <= k:
            continue
        if any(comp < other for other in kept):
            continue
        kept.append(comp)
    return kept
