"""Parallel execution of the RIPPLE pipeline (Figure 10)."""

from repro.parallel.executor import ParallelConfig, parallel_ripple

__all__ = ["ParallelConfig", "parallel_ripple"]
