"""Peak-memory measurement for the Figure 8 experiment.

The paper reports resident memory of the C++ processes. The Python
equivalent that isolates *algorithm* allocations from interpreter noise
is ``tracemalloc``: we snapshot the traced peak across a callable. This
under-reports constant interpreter overhead on purpose — the quantity
of interest is how allocation scales with the algorithm's working set
(TD's stack of partitioned subgraphs vs the bottom-up seed pools).
"""

from __future__ import annotations

import tracemalloc
from typing import Callable, TypeVar

T = TypeVar("T")

__all__ = ["measure_peak_memory"]


def measure_peak_memory(action: Callable[[], T]) -> tuple[T, int]:
    """Run ``action`` and return ``(result, peak_bytes_allocated)``.

    Nested use is not supported (tracemalloc is process-global); the
    bench harness runs measurements sequentially.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = action()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak
