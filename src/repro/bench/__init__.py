"""Benchmark harness: experiment runners, memory probe, table rendering."""

from repro.bench.ascii_chart import bar_chart, grouped_bar_chart
from repro.bench.experiments import (
    fig7_series,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    k_max,
    run_with_stats,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
)
from repro.bench.memory import measure_peak_memory
from repro.bench.reporting import format_value, render_series, render_table

__all__ = [
    "bar_chart",
    "fig10_rows",
    "fig7_series",
    "fig8_rows",
    "fig9_rows",
    "format_value",
    "grouped_bar_chart",
    "k_max",
    "measure_peak_memory",
    "render_series",
    "render_table",
    "run_with_stats",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
]
