"""Experiment runners: one function per table/figure of the paper.

Each function computes the structured rows behind a table or figure of
the evaluation section; ``benchmarks/`` wraps them in pytest-benchmark
entries and renders them via :mod:`repro.bench.reporting`. Everything
here is deterministic given the dataset registry.

The row functions accept a ``budget_seconds`` wall-clock budget (a
:class:`repro.resilience.Deadline` threaded through every enumeration
that supports one): when it expires, the sweep stops at the next row
boundary and returns the rows computed so far, so a long experiment
interrupted by a cluster deadline still yields usable partial tables.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Sequence

from repro import obs
from repro.bench.memory import measure_peak_memory
from repro.core.result import VCCResult
from repro.core.ripple import (
    ripple,
    ripple_me,
    ripple_no_fbm,
    ripple_no_qkvcs,
    ripple_no_rme,
)
from repro.core.seeding import lkvcs_seeds, qkvcs
from repro.core.vcce_bu import vcce_bu
from repro.core.vcce_td import vcce_td
from repro.datasets.registry import DATASETS, Dataset
from repro.flow.connectivity import is_k_vertex_connected
from repro.graph.adjacency import Graph
from repro.graph.kcore import degeneracy, k_core
from repro.metrics.accuracy import accuracy_report
from repro.parallel.executor import ParallelConfig, parallel_ripple
from repro.resilience.deadline import Deadline, as_deadline

__all__ = [
    "fig10_rows",
    "fig7_series",
    "fig8_rows",
    "fig9_rows",
    "k_max",
    "run_with_stats",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "table6_rows",
]


def _timed(action) -> tuple[VCCResult, float]:
    start = time.perf_counter()
    result = action()
    return result, time.perf_counter() - start


def run_with_stats(action: Callable[[], object]) -> tuple[object, dict]:
    """Run ``action`` under a fresh obs collector; return (value, stats).

    ``stats`` is the parsed ``repro.obs/1`` payload
    (:meth:`repro.obs.Collector.to_json`): the per-phase counters that
    the benchmark harness attaches to every experiment's JSON dump, so
    ``results/*.json`` trajectories explain *why* a timing moved (more
    augmentations? more merge tests?), not just that it did.
    """
    with obs.collecting() as collector:
        value = action()
    return value, json.loads(collector.to_json())


def k_max(graph: Graph) -> int:
    """The largest k for which a k-VCC exists (Table II's last column).

    Scans downward from the degeneracy (an upper bound: every vertex of
    a k-VCC has degree ≥ k inside it, so the k-core — hence the
    degeneracy — bounds k).
    """
    for k in range(degeneracy(graph), 1, -1):
        if vcce_td(graph, k).components:
            return k
    return 1


def table2_rows() -> list[list]:
    """Table II: dataset statistics."""
    rows = []
    for dataset in DATASETS.values():
        graph = dataset.graph()
        rows.append(
            [
                dataset.name,
                dataset.mirrors,
                graph.num_vertices,
                graph.num_edges,
                round(graph.average_degree(), 2),
                k_max(graph),
            ]
        )
    return rows


def table3_rows(
    names: Sequence[str] | None = None,
    budget_seconds: Deadline | float | None = None,
) -> list[list]:
    """Table III: accuracy of RIPPLE vs VCCE-BU against exact results."""
    deadline = as_deadline(budget_seconds)
    rows = []
    for dataset in _selected(names):
        graph = dataset.graph()
        for k in dataset.ks:
            if deadline.expired():
                return rows
            exact = vcce_td(graph, k)
            ours = ripple(graph, k, deadline=deadline)
            baseline = vcce_bu(graph, k, deadline=deadline)
            if ours.is_partial or baseline.is_partial:
                # A partial enumeration would report bogus accuracy;
                # stop at the last complete row instead.
                return rows
            ours_acc = accuracy_report(ours.components, exact.components)
            base_acc = accuracy_report(
                baseline.components, exact.components
            )
            rows.append(
                [
                    dataset.name,
                    k,
                    round(ours_acc["F_same"], 2),
                    round(base_acc["F_same"], 2),
                    round(ours_acc["J_Index"], 2),
                    round(base_acc["J_Index"], 2),
                ]
            )
    return rows


def table4_rows(
    names: Sequence[str] = (
        "ca-condmat",
        "ca-dblp",
        "ca-mathscinet",
        "cit-patent",
    ),
) -> list[list]:
    """Table IV: RIPPLE vs RIPPLE-ME (time and accuracy)."""
    rows = []
    for dataset in _selected(names):
        graph = dataset.graph()
        for k in dataset.ks:
            exact = vcce_td(graph, k)
            fast, fast_time = _timed(lambda: ripple(graph, k))
            exact_me, me_time = _timed(lambda: ripple_me(graph, k, hops=1))
            fast_acc = accuracy_report(fast.components, exact.components)
            me_acc = accuracy_report(exact_me.components, exact.components)
            rows.append(
                [
                    dataset.name,
                    k,
                    round(fast_time, 3),
                    round(fast_acc["F_same"], 2),
                    round(fast_acc["J_Index"], 2),
                    round(me_time, 3),
                    round(me_acc["F_same"], 2),
                    round(me_acc["J_Index"], 2),
                ]
            )
    return rows


def table5_rows(
    names: Sequence[str] = (
        "socfb-konect",
        "ca-dblp",
        "sc-shipsec",
        "uk-2005",
        "it-2004",
    ),
    budget_seconds: Deadline | float | None = None,
) -> list[list]:
    """Table V: ablation of the three RIPPLE modules."""
    deadline = as_deadline(budget_seconds)
    variants = (
        ("RIPPLE", ripple),
        ("noQkVCS", ripple_no_qkvcs),
        ("noFBM", ripple_no_fbm),
        ("noRME", ripple_no_rme),
    )
    rows = []
    for dataset in _selected(names):
        if deadline.expired():
            return rows
        graph = dataset.graph()
        k = dataset.default_k
        exact = vcce_td(graph, k)
        for label, fn in variants:
            if deadline.expired():
                return rows
            result, seconds = _timed(lambda: fn(graph, k))
            acc = accuracy_report(result.components, exact.components)
            rows.append(
                [
                    dataset.name,
                    k,
                    label,
                    round(seconds, 3),
                    round(acc["F_same"], 2),
                    round(acc["J_Index"], 2),
                ]
            )
    return rows


def table6_rows(
    names: Sequence[str] = (
        "ca-condmat",
        "uk-2005",
        "arabic-2005",
        "ca-citeseer",
    ),
) -> list[list]:
    """Table VI: QkVCS seeding coverage and speedup over LkVCS.

    Coverage is measured on the k-core (as in the paper): the share of
    k-core vertices covered by kBFS components, by maximal cliques, by
    both stages together, and the wall-clock ratio of a full LkVCS
    seeding sweep to a full QkVCS run.
    """
    from repro.core.seeding import clique_seeds, kbfs_seeds

    rows = []
    for dataset in _selected(names):
        graph = dataset.graph()
        for k in dataset.ks:
            core = k_core(graph, k)
            if core.num_vertices == 0:
                continue
            start = time.perf_counter()
            quick_seeds = qkvcs(core, k)
            quick_time = time.perf_counter() - start
            start = time.perf_counter()
            lkvcs_seeds(core, k)
            baseline_time = time.perf_counter() - start
            kbfs_cover = _coverage(kbfs_seeds(core, k), core)
            clique_cover = _coverage(clique_seeds(core, k), core)
            total_cover = _coverage(quick_seeds, core)
            rows.append(
                [
                    dataset.name,
                    k,
                    round(100 * kbfs_cover, 2),
                    round(100 * clique_cover, 2),
                    round(100 * total_cover, 2),
                    round(baseline_time / max(quick_time, 1e-9), 2),
                ]
            )
    return rows


def _coverage(seeds: list[set], core: Graph) -> float:
    if core.num_vertices == 0:
        return 0.0
    covered: set = set().union(*seeds) if seeds else set()
    return len(covered) / core.num_vertices


def fig7_series(
    name: str,
    budget_seconds: Deadline | float | None = None,
) -> tuple[list[int], dict[str, list[float]]]:
    """Figure 7: running time of TD / BU / RIPPLE as k varies."""
    deadline = as_deadline(budget_seconds)
    dataset = DATASETS[name]
    graph = dataset.graph()
    ks = sorted(set(dataset.ks))
    times: dict[str, list[float]] = {
        "VCCE-TD": [],
        "VCCE-BU": [],
        "RIPPLE": [],
    }
    done = []
    for k in ks:
        if deadline.expired():
            break
        _, td_time = _timed(lambda: vcce_td(graph, k))
        _, bu_time = _timed(lambda: vcce_bu(graph, k))
        _, rp_time = _timed(lambda: ripple(graph, k))
        done.append(k)
        times["VCCE-TD"].append(round(td_time, 4))
        times["VCCE-BU"].append(round(bu_time, 4))
        times["RIPPLE"].append(round(rp_time, 4))
    return done, times


def fig8_rows(names: Sequence[str] | None = None) -> list[list]:
    """Figure 8: peak traced allocations of the three algorithms."""
    rows = []
    for dataset in _selected(names):
        graph = dataset.graph()
        k = dataset.default_k
        _, td_peak = measure_peak_memory(lambda: vcce_td(graph, k))
        _, bu_peak = measure_peak_memory(lambda: vcce_bu(graph, k))
        _, rp_peak = measure_peak_memory(lambda: ripple(graph, k))
        rows.append(
            [
                dataset.name,
                k,
                round(td_peak / 1024, 1),
                round(bu_peak / 1024, 1),
                round(rp_peak / 1024, 1),
            ]
        )
    return rows


def fig9_rows(names: Sequence[str] | None = None) -> list[list]:
    """Figure 9: share of RIPPLE's runtime per phase."""
    rows = []
    for dataset in _selected(names):
        graph = dataset.graph()
        k = dataset.default_k
        result = ripple(graph, k)
        shares = result.timer.proportions()
        rows.append(
            [
                dataset.name,
                k,
                round(100 * shares.get("seeding", 0.0), 1),
                round(100 * shares.get("merging", 0.0), 1),
                round(100 * shares.get("expansion", 0.0), 1),
                round(100 * shares.get("kcore", 0.0)
                      + 100 * shares.get("finalize", 0.0), 1),
            ]
        )
    return rows


def fig10_rows(
    name: str = "ca-dblp",
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    backend: str = "process",
    budget_seconds: Deadline | float | None = None,
) -> list[list]:
    """Figure 10: parallel RIPPLE wall time and speedup vs workers."""
    deadline = as_deadline(budget_seconds)
    dataset = DATASETS[name]
    graph = dataset.graph()
    k = dataset.default_k
    rows = []
    base_time: float | None = None
    for workers in worker_counts:
        if deadline.expired():
            return rows
        config = ParallelConfig(workers=workers, backend=backend)
        _, seconds = _timed(lambda: parallel_ripple(graph, k, config))
        if base_time is None:
            base_time = seconds
        rows.append(
            [
                name,
                k,
                backend,
                workers,
                round(seconds, 3),
                round(base_time / max(seconds, 1e-9), 2),
            ]
        )
    return rows


def _selected(names: Sequence[str] | None) -> list[Dataset]:
    if names is None:
        return list(DATASETS.values())
    return [DATASETS[name] for name in names]


def sanity_check_outputs(name: str, k: int) -> bool:
    """Cross-check helper: every RIPPLE component verifies as a k-VCS."""
    graph = DATASETS[name].graph()
    result = ripple(graph, k)
    return all(
        is_k_vertex_connected(graph.subgraph(c), k)
        for c in result.components
    )
