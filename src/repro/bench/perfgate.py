"""Perf-regression gate: benchmark cases, baselines, and comparison.

The gate guards the hot paths the paper's speedups live in (seeding,
merging, expansion) against silent slowdowns. A *baseline* document
(``benchmarks/baselines/*.json``, committed) records, per case, the
median uninstrumented wall time, the peak traced memory, and the
per-span wall totals of one instrumented run. ``scripts/bench_compare``
re-measures the same cases and fails when wall time regresses more
than :data:`WALL_TOLERANCE` or peak memory more than
:data:`MEM_TOLERANCE`.

Machines differ, so raw seconds are never compared across hosts:
every measurement document carries a *calibration* — the best-of-N
wall time of a fixed integer busy loop — and candidate wall times are
normalised by ``baseline_calibration / candidate_calibration`` before
the tolerance check. Memory is machine-speed independent and is
compared raw.

Span totals are informational: on failure the comparison report
includes a per-span delta table so the regression can be localised
(did ``merge.test`` get slower, or ``seeding.cliques``?) without
re-running under a profiler.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.bench.memory import measure_peak_memory
from repro.obs.spans import span_totals

__all__ = [
    "LOAD_GATE_SCHEMA",
    "MEM_TOLERANCE",
    "SCHEMA",
    "WALL_TOLERANCE",
    "BenchCase",
    "builtin_cases",
    "calibrate",
    "compare",
    "compare_load_table",
    "load_gate_config",
    "render_load_report",
    "render_report",
    "run_case",
    "run_suite",
]

SCHEMA = "repro.perfgate/1"

LOAD_GATE_SCHEMA = "repro.loadgate/1"

#: Wall-clock regression tolerance (calibration-normalised).
WALL_TOLERANCE = 0.30

#: Peak traced-memory regression tolerance.
MEM_TOLERANCE = 0.20


@dataclass(frozen=True)
class BenchCase:
    """One gated benchmark: a setup factory returning the timed call.

    ``setup`` builds the inputs (graph construction is *not* timed) and
    returns a zero-argument callable running the measured algorithm.
    """

    name: str
    description: str
    setup: Callable[[], Callable[[], object]]


def _ripple_case(communities: int, size: int, k: int):
    def setup() -> Callable[[], object]:
        from repro.core.ripple import ripple
        from repro.graph.generators import planted_kvcc_graph

        graph = planted_kvcc_graph(communities, size, k, seed=0)
        return lambda: ripple(graph, k)

    return setup


def _ripple_me_case(communities: int, size: int, k: int):
    def setup() -> Callable[[], object]:
        from repro.core.ripple import ripple_me
        from repro.graph.generators import planted_kvcc_graph

        graph = planted_kvcc_graph(communities, size, k, seed=0)
        return lambda: ripple_me(graph, k)

    return setup


def _vcce_td_case(communities: int, size: int, k: int):
    def setup() -> Callable[[], object]:
        from repro.core.vcce_td import vcce_td
        from repro.graph.generators import planted_kvcc_graph

        graph = planted_kvcc_graph(communities, size, k, seed=0)
        return lambda: vcce_td(graph, k)

    return setup


def builtin_cases() -> dict[str, BenchCase]:
    """The gated smoke cases (fast, deterministic planted graphs)."""
    cases = [
        BenchCase(
            "ripple/planted-3x30-k4",
            "RIPPLE (RME) on 3 planted 4-VCCs of 30 vertices",
            _ripple_case(3, 30, 4),
        ),
        BenchCase(
            "ripple-me/planted-3x30-k4",
            "RIPPLE-ME on the same planted graph",
            _ripple_me_case(3, 30, 4),
        ),
        BenchCase(
            "vcce-td/planted-2x30-k3",
            "top-down baseline on 2 planted 3-VCCs of 30 vertices",
            _vcce_td_case(2, 30, 3),
        ),
    ]
    return {case.name: case for case in cases}


def calibrate(rounds: int = 3) -> float:
    """Best-of-``rounds`` wall seconds for a fixed integer busy loop.

    A pure-Python LCG over 200k iterations: deterministic work whose
    wall time scales with single-core interpreter speed, the same
    resource the gated cases consume.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 1
        for i in range(200_000):
            acc = (acc * 1103515245 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - start)
    return best


def run_case(case: BenchCase, repeats: int = 5) -> dict:
    """Measure one case: median wall, peak memory, span totals.

    Wall time is the median of ``repeats`` *uninstrumented* runs (no
    collector installed — the gate times what users run). Memory and
    span totals come from one extra instrumented run under a
    span-enabled collector with tracemalloc active.
    """
    action = case.setup()
    walls = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        walls.append(time.perf_counter() - start)

    collector = obs.Collector()
    collector.enable_spans()
    with obs.collecting(collector):
        _, mem_peak = measure_peak_memory(action)
    recorder = collector.spans
    spans = {
        name: round(total["wall"], 6)
        for name, total in span_totals(recorder.roots).items()
    }
    return {
        "description": case.description,
        "wall_s": round(statistics.median(walls), 6),
        "mem_peak_bytes": mem_peak,
        "spans": spans,
    }


def run_suite(
    repeats: int = 5, cases: dict[str, BenchCase] | None = None
) -> dict:
    """Measure every case and return a gate document (see module doc)."""
    if cases is None:
        cases = builtin_cases()
    return {
        "schema": SCHEMA,
        "calibration_s": round(calibrate(), 6),
        "repeats": repeats,
        "cases": {
            name: run_case(case, repeats) for name, case in cases.items()
        },
    }


def load_document(path: str) -> dict:
    """Read and minimally validate a gate document."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    if "cases" not in document or "calibration_s" not in document:
        raise ValueError(f"{path}: missing 'cases' or 'calibration_s'")
    return document


def compare(
    baseline: dict,
    candidate: dict,
    wall_tolerance: float = WALL_TOLERANCE,
    mem_tolerance: float = MEM_TOLERANCE,
) -> dict:
    """Judge ``candidate`` against ``baseline``.

    Returns ``{"ok": bool, "failures": [...], "rows": [...],
    "span_rows": [...]}`` where ``rows`` is one summary row per case
    and ``span_rows`` the per-span wall deltas (both normalised).
    """
    scale = baseline["calibration_s"] / max(
        candidate["calibration_s"], 1e-9
    )
    failures: list[str] = []
    rows: list[list] = []
    span_rows: list[list] = []
    for name, base in sorted(baseline["cases"].items()):
        cand = candidate["cases"].get(name)
        if cand is None:
            failures.append(f"{name}: case missing from candidate run")
            continue
        wall_adj = cand["wall_s"] * scale
        wall_rel = (
            (wall_adj - base["wall_s"]) / base["wall_s"]
            if base["wall_s"]
            else 0.0
        )
        mem_rel = (
            (cand["mem_peak_bytes"] - base["mem_peak_bytes"])
            / base["mem_peak_bytes"]
            if base["mem_peak_bytes"]
            else 0.0
        )
        verdict = "ok"
        if wall_rel > wall_tolerance:
            verdict = "WALL REGRESSION"
            failures.append(
                f"{name}: wall {base['wall_s']:.6f}s -> "
                f"{wall_adj:.6f}s (adj, {wall_rel:+.1%} > "
                f"{wall_tolerance:+.0%})"
            )
        if mem_rel > mem_tolerance:
            verdict = (
                "MEM REGRESSION" if verdict == "ok" else "WALL+MEM"
            )
            failures.append(
                f"{name}: mem {base['mem_peak_bytes']} -> "
                f"{cand['mem_peak_bytes']} bytes ({mem_rel:+.1%} > "
                f"{mem_tolerance:+.0%})"
            )
        rows.append(
            [
                name,
                f"{base['wall_s']:.6f}",
                f"{wall_adj:.6f}",
                f"{wall_rel:+.1%}",
                f"{mem_rel:+.1%}",
                verdict,
            ]
        )
        base_spans = base.get("spans", {})
        cand_spans = cand.get("spans", {})
        for span in sorted(set(base_spans) | set(cand_spans)):
            b = base_spans.get(span, 0.0)
            c = cand_spans.get(span, 0.0) * scale
            delta = f"{(c - b) / b:+.1%}" if b else "new"
            span_rows.append(
                [name, span, f"{b:.6f}", f"{c:.6f}", delta]
            )
    for name in sorted(set(candidate["cases"]) - set(baseline["cases"])):
        rows.append([name, "-", "-", "-", "-", "new case (not gated)"])
    return {
        "ok": not failures,
        "failures": failures,
        "rows": rows,
        "span_rows": span_rows,
    }


# -- load-test gate ----------------------------------------------------
#
# The serving tier's capacity gate: a committed ``repro.loadgate/1``
# document fixes a p95-latency ceiling, a throughput floor, and a
# failure-rate cap for one load-test scenario, *at the calibration
# speed of the machine the thresholds were chosen on*. Every run-table
# row carries the busy-loop calibration of the machine that produced
# it, so the gate rescales before judging: a runner half as fast gets
# twice the latency ceiling and half the throughput floor, and the
# gate stops flaking on runner lotteries while still catching real
# regressions.


def load_gate_config(path: str) -> dict:
    """Read and validate a committed load-gate document."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != LOAD_GATE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {LOAD_GATE_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    for key in ("calibration_s", "p95_ceiling_ms", "rps_floor"):
        if not isinstance(document.get(key), (int, float)):
            raise ValueError(f"{path}: missing or non-numeric {key!r}")
    return document


def compare_load_table(rows, gate: dict) -> dict:
    """Judge run-table rows against a load-gate document.

    ``rows`` are :class:`repro.loadtest.run_table.RunRow` objects (or
    anything with the same attributes). Rows are filtered to the
    gate's ``scenario`` when it names one; every surviving row must
    individually satisfy the calibrated thresholds — one bad
    repetition fails the gate, exactly like one bad case fails the
    perf gate.
    """
    scenario = gate.get("scenario")
    max_failure_rate = float(gate.get("max_failure_rate", 0.0))
    max_shed_rate = gate.get("max_shed_rate")
    min_shed_rate = gate.get("min_shed_rate")
    max_internal_errors = gate.get("max_internal_errors")
    server_p95_tolerance = gate.get("server_p95_tolerance")
    server_p95_slack_ms = float(gate.get("server_p95_slack_ms", 0.0))
    judged = [
        row
        for row in rows
        if scenario is None or row.scenario == scenario
    ]
    failures: list[str] = []
    report_rows: list[list] = []
    if not judged:
        failures.append(
            f"no run-table rows matched gate scenario {scenario!r}"
        )
    for row in judged:
        label = f"{row.scenario}#{row.repetition}"
        calibration = getattr(row, "calibration_s", float("nan"))
        if not calibration or calibration != calibration:  # 0 or NaN
            failures.append(
                f"{label}: row carries no calibration_s; cannot "
                f"normalise across machines"
            )
            continue
        slowness = calibration / gate["calibration_s"]
        allowed_p95 = gate["p95_ceiling_ms"] * slowness
        required_rps = gate["rps_floor"] / slowness
        verdict = "ok"
        if row.failure_rate > max_failure_rate:
            verdict = "FAILURES"
            failures.append(
                f"{label}: failure_rate {row.failure_rate:.4f} > "
                f"{max_failure_rate:.4f} (deadline "
                f"{row.failures_deadline}, protocol "
                f"{row.failures_protocol}, connection "
                f"{row.failures_connection})"
            )
        if row.p95_latency_ms > allowed_p95:
            verdict = "P95" if verdict == "ok" else verdict + "+P95"
            failures.append(
                f"{label}: p95 {row.p95_latency_ms:.3f}ms > ceiling "
                f"{allowed_p95:.3f}ms ({gate['p95_ceiling_ms']}ms at "
                f"reference speed × {slowness:.2f} slowness)"
            )
        if row.achieved_rps < required_rps:
            verdict = "RPS" if verdict == "ok" else verdict + "+RPS"
            failures.append(
                f"{label}: achieved {row.achieved_rps:.2f} rps < floor "
                f"{required_rps:.2f} ({gate['rps_floor']} at reference "
                f"speed ÷ {slowness:.2f} slowness)"
            )
        # Shed bounds are absolute rates, not latency-shaped, so they
        # need no calibration scaling. max_shed_rate bounds collateral
        # shedding under nominal load; min_shed_rate (degradation
        # gates) proves the daemon actually shed past saturation
        # instead of silently queueing.
        shed_rate = getattr(row, "shed_rate", 0.0)
        if max_shed_rate is not None and shed_rate > float(max_shed_rate):
            verdict = "SHED" if verdict == "ok" else verdict + "+SHED"
            failures.append(
                f"{label}: shed_rate {shed_rate:.4f} > "
                f"{float(max_shed_rate):.4f} "
                f"({getattr(row, 'shed_requests', 0)} shed)"
            )
        if min_shed_rate is not None and shed_rate < float(min_shed_rate):
            verdict = "NOSHED" if verdict == "ok" else verdict + "+NOSHED"
            failures.append(
                f"{label}: shed_rate {shed_rate:.4f} < required "
                f"{float(min_shed_rate):.4f} — overload did not shed "
                f"(silent queueing?)"
            )
        # The telemetry cross-check: the daemon's own
        # serving.handle_seconds histogram p95 over the measurement
        # window must agree with the client-observed p95. Relative
        # tolerance covers histogram bucket granularity (bucket edges
        # are a fixed 2^(1/4) ratio apart) plus the client-side
        # scheduling delay the server never sees; the absolute slack
        # is latency-shaped, so it scales with the row's calibration
        # like the p95 ceiling does.
        server_p95 = getattr(row, "server_p95_ms", float("nan"))
        if server_p95_tolerance is not None:
            allowed_gap = (
                row.p95_latency_ms * float(server_p95_tolerance)
                + server_p95_slack_ms * slowness
            )
            if server_p95 != server_p95:  # NaN: window never captured
                verdict = (
                    "SERVERP95" if verdict == "ok"
                    else verdict + "+SERVERP95"
                )
                failures.append(
                    f"{label}: server_p95_ms missing — daemon stats "
                    f"histograms were not captured, so the telemetry "
                    f"cross-check cannot run"
                )
            elif abs(server_p95 - row.p95_latency_ms) > allowed_gap:
                verdict = (
                    "SERVERP95" if verdict == "ok"
                    else verdict + "+SERVERP95"
                )
                failures.append(
                    f"{label}: server p95 {server_p95:.3f}ms vs client "
                    f"p95 {row.p95_latency_ms:.3f}ms — gap exceeds "
                    f"{float(server_p95_tolerance):.0%} + "
                    f"{server_p95_slack_ms * slowness:.3f}ms slack"
                )
        internal = getattr(row, "serving_internal_errors", 0)
        if (
            max_internal_errors is not None
            and internal > int(max_internal_errors)
        ):
            verdict = "INTERNAL" if verdict == "ok" else verdict + "+INTERNAL"
            failures.append(
                f"{label}: {internal} internal error(s) > allowed "
                f"{int(max_internal_errors)}"
            )
        report_rows.append(
            [
                label,
                f"{row.achieved_rps:.1f}/{required_rps:.1f}",
                f"{row.p95_latency_ms:.2f}/{allowed_p95:.2f}",
                "-" if server_p95 != server_p95 else f"{server_p95:.2f}",
                f"{row.failure_rate:.4f}",
                f"{shed_rate:.4f}",
                f"{slowness:.2f}x",
                verdict,
            ]
        )
    return {"ok": not failures, "failures": failures, "rows": report_rows}


def render_load_report(verdict: dict) -> str:
    """Human-readable load-gate report."""
    from repro.bench.reporting import render_table

    sections = [
        render_table(
            "Load gate: achieved/floor rps, p95/ceiling ms "
            "(calibration-adjusted)",
            ["run", "rps", "p95 ms", "srv p95", "fail rate", "shed rate",
             "slowness", "verdict"],
            verdict["rows"],
        )
    ]
    if verdict["failures"]:
        sections.append(
            "FAILURES:\n" + "\n".join(
                f"  - {line}" for line in verdict["failures"]
            )
        )
    else:
        sections.append("load gate passed")
    return "\n\n".join(sections)


def render_report(verdict: dict, verbose_spans: bool = False) -> str:
    """Human-readable comparison report (spans shown on failure)."""
    from repro.bench.reporting import render_table

    sections = [
        render_table(
            "Perf gate: wall (calibration-adjusted) and peak memory",
            ["case", "base s", "cand s", "wall", "mem", "verdict"],
            verdict["rows"],
        )
    ]
    if (not verdict["ok"] or verbose_spans) and verdict["span_rows"]:
        sections.append(
            render_table(
                "Per-span wall deltas (candidate adjusted)",
                ["case", "span", "base s", "cand s", "delta"],
                verdict["span_rows"],
            )
        )
    if verdict["failures"]:
        sections.append(
            "FAILURES:\n" + "\n".join(
                f"  - {line}" for line in verdict["failures"]
            )
        )
    else:
        sections.append("perf gate passed")
    return "\n\n".join(sections)
