"""Plain-text table and series rendering for the benchmark harness.

Each experiment prints the same rows/columns as the paper's table or
the same series as its figure, so a run of ``pytest benchmarks/``
regenerates the full evaluation section in text form.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value) -> str:
    """Human-friendly cell formatting (floats to 2 dp, None to '-')."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> str:
    """Render an aligned monospaced table with a title rule."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells), 1)
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence],
) -> str:
    """Render figure data as one row per x with one column per series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(xs)
    ]
    return render_table(title, headers, rows)
