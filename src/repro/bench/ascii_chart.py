"""ASCII charts for the figure benchmarks.

The paper's Figures 7–10 are log-scale line plots; the bench harness
recreates them as monospaced bar charts appended to the results files,
so a terminal diff shows the shape at a glance without a plotting
stack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

_BAR = "█"
_WIDTH = 40


def _scaled(value: float, maximum: float, log: bool) -> int:
    if value <= 0 or maximum <= 0:
        return 0
    if log:
        # map [min_positive, max] onto [1, WIDTH] logarithmically; one
        # decade of headroom keeps tiny values visible
        span = math.log10(maximum) + 1
        magnitude = math.log10(value) + 1
        return max(1, round(_WIDTH * max(magnitude, 0.05) / span))
    return max(1, round(_WIDTH * value / maximum))


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    log: bool = False,
) -> str:
    """One horizontal bar per (label, value), scaled to the maximum."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    lines = [title, "-" * len(title)]
    if not values:
        return "\n".join(lines + ["(no data)"])
    maximum = max(values)
    width = max((len(str(label)) for label in labels), default=1)
    for label, value in zip(labels, values):
        bar = _BAR * _scaled(value, maximum, log)
        lines.append(f"{str(label):>{width}} |{bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    xs: Sequence,
    series: dict[str, Sequence[float]],
    unit: str = "",
    log: bool = False,
) -> str:
    """Figure-style chart: per x, one bar per series (Fig. 7 layout)."""
    lines = [title, "-" * len(title)]
    flat = [v for values in series.values() for v in values]
    if not flat:
        return "\n".join(lines + ["(no data)"])
    maximum = max(flat)
    name_width = max(len(name) for name in series)
    for i, x in enumerate(xs):
        lines.append(f"x={x}")
        for name, values in series.items():
            bar = _BAR * _scaled(values[i], maximum, log)
            lines.append(
                f"  {name:>{name_width}} |{bar} {values[i]:g}{unit}"
            )
    return "\n".join(lines)
