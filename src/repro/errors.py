"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library failures without
swallowing unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "GraphError",
    "GraphFormatError",
    "IndexCorruptionError",
    "ParameterError",
    "ParseError",
    "ReproError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: adding a self-loop, querying a vertex that does not exist,
    or inducing a subgraph on vertices outside the graph.
    """


class ParseError(ReproError):
    """Raised when an on-disk graph representation cannot be parsed."""


class IndexCorruptionError(ParseError):
    """A persisted k-VCC index failed its integrity check.

    Raised by :meth:`repro.serving.index.KvccIndex.load` when a file is
    torn, truncated, or fails its checksum. ``quarantine`` is the path
    the corrupt file was renamed to (``None`` when the rename itself
    failed and the file was left in place).
    """

    def __init__(
        self, message: str, *, quarantine: str | None = None
    ) -> None:
        self.quarantine = quarantine
        if quarantine is not None:
            message = f"{message} (quarantined to {quarantine})"
        super().__init__(message)


class GraphFormatError(ParseError):
    """A malformed edge list, located by source name and line number.

    ``source`` is the file name (or ``None`` for in-memory input) and
    ``lineno`` the 1-based offending line; both are also baked into the
    message so a bare ``print(exc)`` tells the user where to look.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        lineno: int | None = None,
    ) -> None:
        self.source = source
        self.lineno = lineno
        where = source if source is not None else "<edge list>"
        if lineno is not None:
            where = f"{where}, line {lineno}"
        super().__init__(f"{where}: {message}")


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm receives an invalid parameter.

    Inherits from :class:`ValueError` so generic callers that guard with
    ``except ValueError`` keep working.
    """
