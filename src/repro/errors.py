"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library failures without
swallowing unrelated bugs.
"""

from __future__ import annotations

__all__ = ["GraphError", "ParameterError", "ParseError", "ReproError"]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: adding a self-loop, querying a vertex that does not exist,
    or inducing a subgraph on vertices outside the graph.
    """


class ParseError(ReproError):
    """Raised when an on-disk graph representation cannot be parsed."""


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm receives an invalid parameter.

    Inherits from :class:`ValueError` so generic callers that guard with
    ``except ValueError`` keep working.
    """
