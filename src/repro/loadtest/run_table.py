"""The run table: one flat, analyzable CSV row per (scenario, repetition).

The artifact shape follows the mubench replication's ``run_table.csv``
(one row per run×repetition, every column a plain scalar, all analysis
downstream of this one file) — see ``docs/loadtest.md`` for the column
glossary in the ``RUN_TABLE_COLUMNS_EXPLANATION.md`` style. The test
suite parses that glossary table and asserts it matches
:data:`COLUMNS` exactly, so the docs cannot drift from the writer.

Alongside the table, every run appends its raw per-request samples to
a JSONL file (one object per request: kind, scheduled offset, latency,
outcome) so percentiles can be recomputed and tails inspected without
re-running the load.
"""

from __future__ import annotations

import csv
import json
import math
import os
from dataclasses import dataclass, fields
from typing import Iterable

from repro.errors import ParameterError

__all__ = [
    "COLUMNS",
    "OUTCOMES",
    "RunRow",
    "Sample",
    "aggregate",
    "percentile",
    "read_run_table",
    "write_run_table",
    "write_samples_jsonl",
]

#: Failure taxonomy: every sample lands in exactly one outcome.
#: ``ok`` includes *expected* error responses (an ``unknown`` probe
#: answered with ``unknown-vertex`` is the daemon behaving correctly).
#: ``shed`` is an ``overloaded`` response that survived the client's
#: retry budget — the daemon *choosing* to refuse work is load
#: shedding doing its job, so it is tracked in its own columns and
#: excluded from ``failure_rate`` (which keeps the CI
#: ``failure_rate == 0`` gate meaning "nothing actually broke").
OUTCOMES = ("ok", "deadline", "protocol-error", "connection-refused", "shed")

#: Column names, in file order. ``docs/loadtest.md`` documents each
#: one; ``tests/loadtest/test_run_table.py`` keeps the two in lockstep.
COLUMNS = (
    "scenario",
    "repetition",
    "topology",
    "workers",
    "offered_rps",
    "achieved_rps",
    "request_count",
    "failure_rate",
    "failures_deadline",
    "failures_protocol",
    "failures_connection",
    "shed_requests",
    "shed_rate",
    "retried_requests",
    "retries_total",
    "avg_latency_ms",
    "p50_latency_ms",
    "p95_latency_ms",
    "p99_latency_ms",
    "cpu_usage_avg",
    "rss_peak_mb",
    "calibration_s",
    "serving_requests",
    "serving_queries",
    "serving_cache_hits",
    "serving_cache_misses",
    "serving_index_stale_rebuilds",
    "serving_errors",
    "serving_shed",
    "serving_internal_errors",
    "server_p95_ms",
    "server_shed",
)

#: run-table counter column -> obs counter folded into it.
COUNTER_COLUMNS = {
    "serving_requests": "serving.requests",
    "serving_queries": "serving.queries",
    "serving_cache_hits": "serving.cache.hits",
    "serving_cache_misses": "serving.cache.misses",
    "serving_index_stale_rebuilds": "serving.index.stale_rebuilds",
    "serving_errors": "serving.errors",
    "serving_shed": "serving.shed",
    "serving_internal_errors": "serving.errors.internal",
}


@dataclass(frozen=True)
class Sample:
    """One request's raw measurement (a JSONL line in the samples file).

    ``scheduled_s`` is the open-loop send time relative to run start;
    latency is measured from that *scheduled* instant, not from the
    actual send, so a generator running late charges its queueing delay
    to the service instead of silently omitting it (the classic
    coordinated-omission mistake closed-loop harnesses make).
    """

    kind: str
    scheduled_s: float
    latency_ms: float
    outcome: str
    code: str = ""
    warmup: bool = False
    #: Client-side retries this request consumed before its final
    #: outcome (0 = answered on the first attempt).
    retries: int = 0

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ParameterError(
                f"sample outcome must be one of {OUTCOMES}, "
                f"got {self.outcome!r}"
            )
        if self.retries < 0:
            raise ParameterError(
                f"sample retries must be >= 0, got {self.retries}"
            )

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "scheduled_s": round(self.scheduled_s, 6),
            "latency_ms": round(self.latency_ms, 3),
            "outcome": self.outcome,
            "code": self.code,
            "warmup": self.warmup,
            "retries": self.retries,
        }


@dataclass(frozen=True)
class RunRow:
    """One (scenario, repetition) line of ``run_table.csv``."""

    scenario: str
    repetition: int
    topology: str
    workers: int
    offered_rps: float
    achieved_rps: float
    request_count: int
    failure_rate: float
    failures_deadline: int
    failures_protocol: int
    failures_connection: int
    shed_requests: int
    shed_rate: float
    retried_requests: int
    retries_total: int
    avg_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    cpu_usage_avg: float
    rss_peak_mb: float
    calibration_s: float
    serving_requests: int
    serving_queries: int
    serving_cache_hits: int
    serving_cache_misses: int
    serving_index_stale_rebuilds: int
    serving_errors: int
    serving_shed: int
    serving_internal_errors: int
    #: Server-observed p95 handle time over the measurement window, in
    #: ms — from the daemon's ``serving.handle_seconds`` histograms
    #: (``stats`` op snapshot delta), so it cross-checks the
    #: client-side ``p95_latency_ms`` without the client's queueing
    #: delay. NaN when the harness could not capture the window.
    server_p95_ms: float
    #: Sheds the *server* counted inside the measurement window (the
    #: ``serving.shed`` counter delta from the warmup boundary), unlike
    #: ``serving_shed`` which spans the whole run including warmup.
    server_shed: int

# Fixed per-column formatting keeps the CSV byte-stable for identical
# inputs: rates and seconds at 6 decimals, latencies at 3 (µs grain),
# resource figures at 2. NaN (resource monitor unavailable on this
# platform) serialises as an empty cell.
_PRECISION = {
    "offered_rps": 6,
    "achieved_rps": 6,
    "failure_rate": 6,
    "shed_rate": 6,
    "calibration_s": 6,
    "avg_latency_ms": 3,
    "p50_latency_ms": 3,
    "p95_latency_ms": 3,
    "p99_latency_ms": 3,
    "server_p95_ms": 3,
    "cpu_usage_avg": 2,
    "rss_peak_mb": 2,
}


def _row_fields() -> dict:
    return {field.name: field.type for field in fields(RunRow)}


def write_run_table(path: str | os.PathLike, rows: Iterable[RunRow]) -> None:
    """Write header + rows; column order is exactly :data:`COLUMNS`."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(COLUMNS)
        for row in rows:
            cells = []
            for name in COLUMNS:
                value = getattr(row, name)
                if name in _FLOAT_COLUMNS:
                    if math.isnan(value):
                        cells.append("")
                    else:
                        cells.append(f"{value:.{_PRECISION.get(name, 6)}f}")
                else:
                    cells.append(str(value))
            writer.writerow(cells)


def read_run_table(path: str | os.PathLike) -> list[RunRow]:
    """Read a run table back into typed rows (the gate's input)."""
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        header = tuple(reader.fieldnames or ())
        if header != COLUMNS:
            raise ParameterError(
                f"{os.fspath(path)}: unexpected run-table header "
                f"{header!r} (expected {COLUMNS!r})"
            )
        rows = []
        for record in reader:
            kwargs = {}
            for name in COLUMNS:
                raw = record[name]
                if name in _INT_COLUMNS:
                    kwargs[name] = int(raw)
                elif name in _FLOAT_COLUMNS:
                    kwargs[name] = float(raw) if raw else float("nan")
                else:
                    kwargs[name] = raw
            rows.append(RunRow(**kwargs))
        return rows


_INT_COLUMNS = frozenset(
    name
    for name, kind in _row_fields().items()
    if kind in (int, "int")
)
_FLOAT_COLUMNS = frozenset(
    name
    for name, kind in _row_fields().items()
    if kind in (float, "float")
)


def write_samples_jsonl(
    path: str | os.PathLike,
    scenario: str,
    repetition: int,
    samples: Iterable[Sample],
) -> None:
    """Append one JSON object per raw sample (warmup included)."""
    with open(path, "a", encoding="utf-8") as handle:
        for sample in samples:
            record = {"scenario": scenario, "repetition": repetition}
            record.update(sample.to_json())
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (0 < q <= 1)."""
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def aggregate(
    *,
    scenario: str,
    repetition: int,
    topology: str,
    workers: int,
    offered_rps: float,
    samples: list[Sample],
    measure_window_s: float,
    cpu_usage_avg: float = float("nan"),
    rss_peak_mb: float = float("nan"),
    calibration_s: float = float("nan"),
    counters: dict | None = None,
    server_p95_ms: float = float("nan"),
    server_shed: int = 0,
) -> RunRow:
    """Fold one repetition's raw samples into a run-table row.

    Warmup samples are excluded from every aggregate (they exist only
    in the raw JSONL). ``counters`` is the delta of the daemon's
    ``serving.*`` obs counters over the whole run (from the protocol's
    ``stats`` op before/after); ``server_p95_ms``/``server_shed`` are
    the measurement-window server-side cross-checks (histogram and
    counter deltas from the warmup boundary — see the harness).

    ``shed`` samples are intentional refusals, not failures: they get
    their own ``shed_requests``/``shed_rate`` columns and stay out of
    ``failure_rate`` and out of the accepted-latency percentiles.
    """
    measured = [s for s in samples if not s.warmup]
    failures = {
        "deadline": 0,
        "protocol-error": 0,
        "connection-refused": 0,
    }
    latencies = []
    shed = 0
    retried = 0
    retries_total = 0
    for sample in measured:
        if sample.retries:
            retried += 1
            retries_total += sample.retries
        if sample.outcome == "ok":
            latencies.append(sample.latency_ms)
        elif sample.outcome == "shed":
            shed += 1
        else:
            failures[sample.outcome] += 1
    latencies.sort()
    count = len(measured)
    failed = sum(failures.values())
    window = max(measure_window_s, 1e-9)
    counters = counters or {}
    return RunRow(
        scenario=scenario,
        repetition=repetition,
        topology=topology,
        workers=workers,
        offered_rps=offered_rps,
        achieved_rps=len(latencies) / window,
        request_count=count,
        failure_rate=(failed / count) if count else 0.0,
        failures_deadline=failures["deadline"],
        failures_protocol=failures["protocol-error"],
        failures_connection=failures["connection-refused"],
        shed_requests=shed,
        shed_rate=(shed / count) if count else 0.0,
        retried_requests=retried,
        retries_total=retries_total,
        avg_latency_ms=(
            sum(latencies) / len(latencies) if latencies else float("nan")
        ),
        p50_latency_ms=percentile(latencies, 0.50),
        p95_latency_ms=percentile(latencies, 0.95),
        p99_latency_ms=percentile(latencies, 0.99),
        cpu_usage_avg=cpu_usage_avg,
        rss_peak_mb=rss_peak_mb,
        calibration_s=calibration_s,
        server_p95_ms=server_p95_ms,
        server_shed=server_shed,
        **{
            column: int(counters.get(counter, 0))
            for column, counter in COUNTER_COLUMNS.items()
        },
    )
