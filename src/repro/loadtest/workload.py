"""Deterministic open-loop schedules: when to send what, fixed up front.

The whole request stream — arrival instants, request kinds, payloads,
expected responses, and storm mutations — is materialised *before* the
run from the scenario's seed. Workers then race the wall clock to honor
it. Precomputing the schedule is what makes the harness open-loop: the
k-th request is due at its scheduled instant whether or not request
k-1 has been answered, so a slow server accumulates visible queueing
delay instead of silently throttling the generator (coordinated
omission). It is also what makes runs reproducible and the run-table
row testable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.errors import ParameterError
from repro.loadtest.scenario import Scenario

__all__ = ["Request", "build_schedule"]

#: Vertex-id offset for storm-appended pendant vertices: far above any
#: real benchmark graph, so mutations never collide with served ids.
STORM_VERTEX_BASE = 10_000_000


@dataclass(frozen=True)
class Request:
    """One scheduled protocol request.

    ``expect`` is the outcome the scenario *intends*: ``"ok"`` or an
    error code (the ``unknown`` kind expects ``unknown-vertex``). A
    response matching its expectation is a success for the run table;
    anything else is a failure classified by the taxonomy in
    :mod:`repro.loadtest.run_table`. ``mutate_append`` is a line the
    client appends to the served graph file immediately before sending
    (storm events only).
    """

    offset_s: float
    kind: str
    payload: dict
    expect: str = "ok"
    mutate_append: str | None = None


def _arrivals(scenario: Scenario, rng: random.Random) -> list[float]:
    """Arrival offsets over [0, duration): exponential or fixed gaps."""
    offsets: list[float] = []
    mean_gap = 1.0 / scenario.offered_rps
    t = 0.0
    while True:
        gap = (
            rng.expovariate(scenario.offered_rps)
            if scenario.arrival == "poisson"
            else mean_gap
        )
        t += gap
        if t >= scenario.duration_s:
            return offsets
        offsets.append(t)


def build_schedule(
    scenario: Scenario,
    vertices: Sequence[Hashable],
    *,
    graph_anchor: Hashable | None = None,
) -> list[Request]:
    """Materialise the full request stream for one repetition.

    ``vertices`` is the served graph's vertex set in a deterministic
    order (sort it); payload vertices are drawn from it. A storm
    request appends a pendant edge ``{fresh_id} {graph_anchor}`` to the
    graph file (degree-1, so the k-VCCs are unchanged while the
    fingerprint is not) and then sends ``reload``. Repetition r of a
    scenario uses seed ``scenario.seed + r`` — pass the reseeded
    scenario via :meth:`Scenario.with_overrides`.
    """
    if not vertices:
        raise ParameterError("cannot build a schedule over zero vertices")
    rng = random.Random(scenario.seed)
    kinds = [kind for kind, _ in scenario.mix]
    weights = [weight for _, weight in scenario.mix]
    anchor = graph_anchor if graph_anchor is not None else vertices[0]
    schedule: list[Request] = []
    storm_serial = 0
    for offset in _arrivals(scenario, rng):
        kind = rng.choices(kinds, weights)[0]
        if kind == "point":
            request = Request(
                offset,
                kind,
                {
                    "op": "query",
                    "v": rng.choice(vertices),
                    "k": rng.randint(1, scenario.max_k),
                },
            )
        elif kind == "batch":
            request = Request(
                offset,
                kind,
                {
                    "op": "batch",
                    "queries": [
                        {
                            "v": rng.choice(vertices),
                            "k": rng.randint(1, scenario.max_k),
                        }
                        for _ in range(scenario.batch_size)
                    ],
                },
            )
        elif kind == "scan":
            vertex = rng.choice(vertices)
            request = Request(
                offset,
                kind,
                {
                    "op": "batch",
                    "queries": [
                        {"v": vertex, "k": k}
                        for k in range(1, scenario.max_k + 1)
                    ],
                },
            )
        elif kind == "unknown":
            request = Request(
                offset,
                kind,
                {
                    "op": "query",
                    "v": f"ghost-{rng.randrange(1_000_000)}",
                    "k": rng.randint(1, scenario.max_k),
                },
                expect="unknown-vertex",
            )
        else:  # storm
            storm_serial += 1
            request = Request(
                offset,
                kind,
                {"op": "reload"},
                mutate_append=(
                    f"{STORM_VERTEX_BASE + storm_serial} {anchor}"
                ),
            )
        schedule.append(request)
    return schedule
