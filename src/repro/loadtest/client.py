"""Concurrent open-loop client workers for the ``repro.serve/1`` wire.

Each worker owns one TCP connection and an interleaved slice of the
precomputed schedule (request i belongs to worker ``i % workers``, so
every worker sees the same arrival-rate share). A worker sleeps until
each request's scheduled instant, fires, and measures latency **from
the scheduled instant** — if the previous response was late and this
send is delayed, the delay is charged to the server as queueing time
rather than silently dropped (open-loop, coordinated-omission-safe).

Failure taxonomy (one outcome per request, see
:data:`repro.loadtest.run_table.OUTCOMES`):

* ``ok`` — the response matched the request's expectation (including
  expected error codes from ``unknown`` probes);
* ``deadline`` — the daemon answered with an unexpected ``deadline``
  code, or the client's own read timed out;
* ``protocol-error`` — an unexpected error code, an un-decodable
  response, or a success where an error was expected;
* ``connection-refused`` — the connection could not be made or died
  mid-request (refused, reset, broken pipe).
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.loadtest.run_table import Sample
from repro.loadtest.scenario import Scenario
from repro.loadtest.workload import Request
from repro.resilience import Deadline

__all__ = ["drive", "request_once"]

#: Client-side read budget: generous, so only a genuinely wedged
#: daemon trips it (the per-request serving deadline is the real gate).
CLIENT_TIMEOUT_S = 30.0


def _classify(request: Request, line: str) -> Sample:
    """Judge one response line against the request's expectation."""

    def sample(outcome: str, code: str, latency_ms: float = 0.0) -> Sample:
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=latency_ms,
            outcome=outcome,
            code=code,
        )

    try:
        response = json.loads(line)
    except ValueError:
        return sample("protocol-error", "undecodable")
    code = response.get("code", "")
    if request.expect == "ok":
        if response.get("ok"):
            return sample("ok", "")
        if code == "deadline":
            return sample("deadline", code)
        return sample("protocol-error", code or "error")
    # An error was expected: the exact code is the success condition.
    if code == request.expect:
        return sample("ok", code)
    return sample("protocol-error", code or "unexpected-success")


class _Connection:
    """One lazily-(re)connected line-protocol client socket."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self._sock: socket.socket | None = None
        self._stream = None

    def ensure(self):
        if self._stream is None:
            self._sock = socket.create_connection(
                self.address, timeout=CLIENT_TIMEOUT_S
            )
            self._stream = self._sock.makefile(
                "rw", encoding="utf-8", newline="\n"
            )
        return self._stream

    def drop(self) -> None:
        for closer in (self._stream, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = None
        self._stream = None

    def close(self) -> None:
        self.drop()


def request_once(
    connection: _Connection, request: Request, scheduled_at: float
) -> Sample:
    """Send one request and classify the outcome (latency from the
    scheduled instant, not the actual send)."""
    try:
        stream = connection.ensure()
        stream.write(
            json.dumps(request.payload, separators=(",", ":")) + "\n"
        )
        stream.flush()
        line = stream.readline()
    except socket.timeout:
        connection.drop()
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=(time.monotonic() - scheduled_at) * 1000.0,
            outcome="deadline",
            code="client-timeout",
        )
    except OSError as exc:
        connection.drop()
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=(time.monotonic() - scheduled_at) * 1000.0,
            outcome="connection-refused",
            code=type(exc).__name__,
        )
    latency_ms = (time.monotonic() - scheduled_at) * 1000.0
    if not line:
        # EOF mid-session: the daemon hung up on us.
        connection.drop()
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=latency_ms,
            outcome="connection-refused",
            code="eof",
        )
    judged = _classify(request, line)
    return Sample(
        kind=judged.kind,
        scheduled_s=judged.scheduled_s,
        latency_ms=latency_ms,
        outcome=judged.outcome,
        code=judged.code,
    )


def _worker(
    address: tuple[str, int],
    slice_: list[Request],
    start: float,
    warmup_s: float,
    graph_path: str | None,
    mutate_lock: threading.Lock,
    deadline: Deadline | None,
    out: list[Sample],
) -> None:
    connection = _Connection(address)
    try:
        for request in slice_:
            if deadline is not None and deadline.expired():
                return
            scheduled_at = start + request.offset_s
            delay = scheduled_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if request.mutate_append and graph_path:
                # Storm event: grow the graph on disk, then tell the
                # daemon to reload. The lock serialises appends from
                # concurrent workers; each append is one whole line.
                with mutate_lock:
                    with open(graph_path, "a", encoding="utf-8") as handle:
                        handle.write(request.mutate_append + "\n")
            sample = request_once(connection, request, scheduled_at)
            if request.offset_s < warmup_s:
                sample = Sample(
                    kind=sample.kind,
                    scheduled_s=sample.scheduled_s,
                    latency_ms=sample.latency_ms,
                    outcome=sample.outcome,
                    code=sample.code,
                    warmup=True,
                )
            out.append(sample)
    finally:
        connection.close()


def drive(
    address: tuple[str, int],
    schedule: list[Request],
    scenario: Scenario,
    *,
    graph_path: str | None = None,
    deadline: Deadline | None = None,
) -> tuple[list[Sample], float]:
    """Run one repetition's schedule; returns ``(samples, start)``.

    ``start`` is the monotonic instant offset 0 maps to (resource
    windows are computed against it). Samples come back in schedule
    order. A harness :class:`~repro.resilience.Deadline` makes workers
    stop scheduling cooperatively; already-sent requests still land.
    """
    workers = max(1, scenario.workers)
    slices: list[list[Request]] = [[] for _ in range(workers)]
    for i, request in enumerate(schedule):
        slices[i % workers].append(request)
    outputs: list[list[Sample]] = [[] for _ in range(workers)]
    mutate_lock = threading.Lock()
    # A small lead so every worker is parked on its first sleep before
    # offset 0 arrives.
    start = time.monotonic() + 0.05
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                address,
                slices[w],
                start,
                scenario.warmup_s,
                graph_path,
                mutate_lock,
                deadline,
                outputs[w],
            ),
            name=f"loadtest-worker-{w}",
            daemon=True,
        )
        for w in range(workers)
    ]
    for thread in threads:
        thread.start()
    join_budget = scenario.duration_s + CLIENT_TIMEOUT_S + 10.0
    join_by = time.monotonic() + join_budget
    for thread in threads:
        thread.join(timeout=max(0.0, join_by - time.monotonic()))
    samples = [s for out in outputs for s in out]
    samples.sort(key=lambda s: s.scheduled_s)
    return samples, start
