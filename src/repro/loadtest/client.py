"""Concurrent open-loop client workers for the ``repro.serve/1`` wire.

Each worker owns one TCP connection and an interleaved slice of the
precomputed schedule (request i belongs to worker ``i % workers``, so
every worker sees the same arrival-rate share). A worker sleeps until
each request's scheduled instant, fires, and measures latency **from
the scheduled instant** — if the previous response was late and this
send is delayed, the delay is charged to the server as queueing time
rather than silently dropped (open-loop, coordinated-omission-safe).

Failure taxonomy (one outcome per request, see
:data:`repro.loadtest.run_table.OUTCOMES`):

* ``ok`` — the response matched the request's expectation (including
  expected error codes from ``unknown`` probes);
* ``deadline`` — the daemon answered with an unexpected ``deadline``
  code, or the client's own read timed out;
* ``protocol-error`` — an unexpected error code, an un-decodable
  response, or a success where an error was expected;
* ``connection-refused`` — the connection could not be made or died
  mid-request (refused, reset, broken pipe);
* ``shed`` — the daemon refused the request with ``overloaded`` and it
  stayed refused through the retry budget (shedding is the daemon
  *working as designed*, so it is not a failure).

When the scenario grants a ``retry_budget``, a worker retries
``overloaded`` answers (waiting at least the response's
``retry_after_ms`` hint), undecodable response lines, and dropped
connections — with exponential backoff and *seeded* full jitter, so
retry timing is as reproducible as the schedule itself. Latency is
still measured from the original scheduled instant: a request that
succeeded on retry charges its backoff to the server, open-loop style.
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import threading
import time

from repro.loadtest.run_table import Sample
from repro.loadtest.scenario import Scenario
from repro.loadtest.workload import Request
from repro.resilience import Deadline

__all__ = ["drive", "request_once", "request_with_retries"]

#: Client-side read budget: generous, so only a genuinely wedged
#: daemon trips it (the per-request serving deadline is the real gate).
CLIENT_TIMEOUT_S = 30.0


def _classify(request: Request, line: str) -> tuple[Sample, float | None]:
    """Judge one response line against the request's expectation.

    Returns ``(sample, retry_after_ms)`` — the hint is non-None only
    for ``overloaded`` responses that advertised one.
    """

    def sample(outcome: str, code: str, latency_ms: float = 0.0) -> Sample:
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=latency_ms,
            outcome=outcome,
            code=code,
        )

    try:
        response = json.loads(line)
    except ValueError:
        return sample("protocol-error", "undecodable"), None
    code = response.get("code", "")
    if code == "overloaded":
        # Shedding applies regardless of the expectation: even an
        # `unknown` probe is admitted (or not) before it is judged.
        hint = response.get("retry_after_ms")
        return (
            sample("shed", code),
            float(hint) if isinstance(hint, (int, float)) else None,
        )
    if request.expect == "ok":
        if response.get("ok"):
            return sample("ok", ""), None
        if code == "deadline":
            return sample("deadline", code), None
        return sample("protocol-error", code or "error"), None
    # An error was expected: the exact code is the success condition.
    if code == request.expect:
        return sample("ok", code), None
    return sample("protocol-error", code or "unexpected-success"), None


class _Connection:
    """One lazily-(re)connected line-protocol client socket."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self._sock: socket.socket | None = None
        self._stream = None

    def ensure(self):
        if self._stream is None:
            self._sock = socket.create_connection(
                self.address, timeout=CLIENT_TIMEOUT_S
            )
            self._stream = self._sock.makefile(
                "rw", encoding="utf-8", newline="\n"
            )
        return self._stream

    def drop(self) -> None:
        for closer in (self._stream, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = None
        self._stream = None

    def close(self) -> None:
        self.drop()


def _attempt(
    connection: _Connection, request: Request, scheduled_at: float
) -> tuple[Sample, float | None]:
    """One send + classify; returns ``(sample, retry_after_ms hint)``.

    Latency is measured from the scheduled instant, not the actual
    send.
    """
    try:
        stream = connection.ensure()
        stream.write(
            json.dumps(request.payload, separators=(",", ":")) + "\n"
        )
        stream.flush()
        line = stream.readline()
    except socket.timeout:
        connection.drop()
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=(time.monotonic() - scheduled_at) * 1000.0,
            outcome="deadline",
            code="client-timeout",
        ), None
    except OSError as exc:
        connection.drop()
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=(time.monotonic() - scheduled_at) * 1000.0,
            outcome="connection-refused",
            code=type(exc).__name__,
        ), None
    latency_ms = (time.monotonic() - scheduled_at) * 1000.0
    if not line:
        # EOF mid-session: the daemon hung up on us.
        connection.drop()
        return Sample(
            kind=request.kind,
            scheduled_s=request.offset_s,
            latency_ms=latency_ms,
            outcome="connection-refused",
            code="eof",
        ), None
    judged, hint = _classify(request, line)
    return dataclasses.replace(judged, latency_ms=latency_ms), hint


def request_once(
    connection: _Connection, request: Request, scheduled_at: float
) -> Sample:
    """Send one request and classify the outcome (no retries)."""
    sample, _ = _attempt(connection, request, scheduled_at)
    return sample


def _retriable(sample: Sample) -> bool:
    """Whether a retry could plausibly change this outcome: shed
    requests (the daemon said so), garbage response lines, and dropped
    connections. Client-side timeouts are NOT retried — the daemon
    still owes a response on that connection."""
    return (
        sample.outcome == "shed"
        or sample.outcome == "connection-refused"
        or (
            sample.outcome == "protocol-error"
            and sample.code == "undecodable"
        )
    )


def request_with_retries(
    connection: _Connection,
    request: Request,
    scheduled_at: float,
    scenario: Scenario,
    rng: random.Random,
    deadline: Deadline | None = None,
) -> Sample:
    """Send one request, retrying per the scenario's budget/backoff.

    The n-th retry waits ``backoff_base_ms * 2**(n-1)`` (capped at
    ``backoff_cap_ms``), raised to the daemon's ``retry_after_ms`` hint
    when one was given, then multiplied by full jitter in [0.5, 1.0)
    from the seeded per-worker RNG. The returned sample reflects the
    *final* attempt, with latency from the original scheduled instant
    and the consumed retry count attached.
    """
    sample, hint_ms = _attempt(connection, request, scheduled_at)
    retries = 0
    while (
        retries < scenario.retry_budget
        and _retriable(sample)
        and not (deadline is not None and deadline.expired())
    ):
        retries += 1
        delay_ms = min(
            scenario.backoff_cap_ms,
            scenario.backoff_base_ms * (2 ** (retries - 1)),
        )
        if hint_ms is not None:
            delay_ms = max(delay_ms, hint_ms)
        time.sleep((0.5 + 0.5 * rng.random()) * delay_ms / 1000.0)
        sample, hint_ms = _attempt(connection, request, scheduled_at)
    if retries:
        sample = dataclasses.replace(sample, retries=retries)
    return sample


def _worker(
    address: tuple[str, int],
    slice_: list[Request],
    start: float,
    scenario: Scenario,
    worker_index: int,
    graph_path: str | None,
    mutate_lock: threading.Lock,
    deadline: Deadline | None,
    out: list[Sample],
) -> None:
    connection = _Connection(address)
    # Seeded per-worker jitter: retry timing replays exactly, like the
    # schedule it perturbs.
    rng = random.Random(scenario.seed * 1_000_003 + worker_index)
    try:
        for request in slice_:
            if deadline is not None and deadline.expired():
                return
            scheduled_at = start + request.offset_s
            delay = scheduled_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if request.mutate_append and graph_path:
                # Storm event: grow the graph on disk, then tell the
                # daemon to reload. The lock serialises appends from
                # concurrent workers; each append is one whole line.
                with mutate_lock:
                    with open(graph_path, "a", encoding="utf-8") as handle:
                        handle.write(request.mutate_append + "\n")
            if scenario.retry_budget:
                sample = request_with_retries(
                    connection, request, scheduled_at, scenario, rng,
                    deadline,
                )
            else:
                sample = request_once(connection, request, scheduled_at)
            if request.offset_s < scenario.warmup_s:
                sample = dataclasses.replace(sample, warmup=True)
            out.append(sample)
    finally:
        connection.close()


def drive(
    address: tuple[str, int],
    schedule: list[Request],
    scenario: Scenario,
    *,
    graph_path: str | None = None,
    deadline: Deadline | None = None,
) -> tuple[list[Sample], float]:
    """Run one repetition's schedule; returns ``(samples, start)``.

    ``start`` is the monotonic instant offset 0 maps to (resource
    windows are computed against it). Samples come back in schedule
    order. A harness :class:`~repro.resilience.Deadline` makes workers
    stop scheduling cooperatively; already-sent requests still land.
    """
    workers = max(1, scenario.workers)
    slices: list[list[Request]] = [[] for _ in range(workers)]
    for i, request in enumerate(schedule):
        slices[i % workers].append(request)
    outputs: list[list[Sample]] = [[] for _ in range(workers)]
    mutate_lock = threading.Lock()
    # A small lead so every worker is parked on its first sleep before
    # offset 0 arrives.
    start = time.monotonic() + 0.05
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                address,
                slices[w],
                start,
                scenario,
                w,
                graph_path,
                mutate_lock,
                deadline,
                outputs[w],
            ),
            name=f"loadtest-worker-{w}",
            daemon=True,
        )
        for w in range(workers)
    ]
    for thread in threads:
        thread.start()
    join_budget = scenario.duration_s + CLIENT_TIMEOUT_S + 10.0
    join_by = time.monotonic() + join_budget
    for thread in threads:
        thread.join(timeout=max(0.0, join_by - time.monotonic()))
    samples = [s for out in outputs for s in out]
    samples.sort(key=lambda s: s.scheduled_s)
    return samples, start
