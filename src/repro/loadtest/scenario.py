"""Load-test scenarios: named, validated, reproducible traffic shapes.

A :class:`Scenario` fixes everything about a run except the target —
the arrival process (open-loop rate, Poisson or uniform spacing), the
query mix, the warmup/measure split, client parallelism, repetitions,
and the RNG seed the whole schedule derives from. Two runs of the same
scenario against the same graph issue byte-identical request streams,
which is what lets CI gate on the resulting run-table row.

The mix is pluggable by weight over the request kinds of
:mod:`repro.loadtest.workload`:

* ``point`` — one QkVCS lookup of a random known vertex;
* ``batch`` — ``batch_size`` lookups in one round trip;
* ``scan`` — a hierarchy scan: one vertex queried at every k up to the
  scenario's ceiling (the nesting structure in one request);
* ``unknown`` — a lookup of a vertex not in the graph, *expecting* the
  ``unknown-vertex`` error (error-path latency is traffic too);
* ``storm`` — a stale-index rebuild storm event: mutate the served
  graph file on disk, then send ``reload`` so the daemon's fingerprint
  check notices and rebuilds mid-traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ParameterError

__all__ = ["KINDS", "SCENARIOS", "Scenario", "get_scenario"]

#: The request kinds a mix may weight (see module docstring).
KINDS = ("point", "batch", "scan", "unknown", "storm")


@dataclass(frozen=True)
class Scenario:
    """One reproducible open-loop traffic shape (see module docstring)."""

    name: str
    #: ``(kind, weight)`` pairs; weights are relative, not normalised.
    mix: tuple[tuple[str, float], ...]
    #: Target arrival rate (requests/second) across all workers.
    offered_rps: float = 50.0
    #: Total run length in seconds (warmup included).
    duration_s: float = 2.0
    #: Leading window excluded from every aggregate.
    warmup_s: float = 0.5
    #: Concurrent client connections issuing the schedule.
    workers: int = 4
    #: Repetitions — one run-table row each, fresh daemon each.
    repetitions: int = 1
    #: Arrival process: ``poisson`` (exponential gaps, the open-loop
    #: default — bursts probe queueing) or ``uniform`` (fixed gaps).
    arrival: str = "poisson"
    #: Lookups per ``batch`` request.
    batch_size: int = 8
    #: Highest k drawn by ``point``/``batch`` and swept by ``scan``.
    max_k: int = 4
    #: Seed the whole schedule (arrivals, kinds, payloads) derives from.
    seed: int = 0
    #: Client-side retries per request (0 disables). Retries fire on
    #: ``overloaded`` responses (honouring ``retry_after_ms``),
    #: undecodable response lines, and dropped connections — with
    #: seeded-jitter exponential backoff. A request still ``overloaded``
    #: after the budget lands in the ``shed`` outcome.
    retry_budget: int = 0
    #: First-retry backoff (doubles per retry, full jitter).
    backoff_base_ms: float = 25.0
    #: Backoff growth ceiling.
    backoff_cap_ms: float = 1000.0

    def __post_init__(self) -> None:
        if not self.mix:
            raise ParameterError("scenario mix must not be empty")
        for kind, weight in self.mix:
            if kind not in KINDS:
                raise ParameterError(
                    f"unknown mix kind {kind!r} (expected one of {KINDS})"
                )
            if weight <= 0:
                raise ParameterError(
                    f"mix weight for {kind!r} must be > 0, got {weight}"
                )
        if self.offered_rps <= 0:
            raise ParameterError(
                f"offered_rps must be > 0, got {self.offered_rps}"
            )
        if self.duration_s <= 0:
            raise ParameterError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if not 0 <= self.warmup_s < self.duration_s:
            raise ParameterError(
                f"warmup_s must be in [0, duration_s), got "
                f"{self.warmup_s} of {self.duration_s}"
            )
        if self.workers < 1:
            raise ParameterError(f"workers must be >= 1, got {self.workers}")
        if self.repetitions < 1:
            raise ParameterError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.arrival not in ("poisson", "uniform"):
            raise ParameterError(
                f"arrival must be 'poisson' or 'uniform', got "
                f"{self.arrival!r}"
            )
        if self.batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.max_k < 1:
            raise ParameterError(f"max_k must be >= 1, got {self.max_k}")
        if self.retry_budget < 0:
            raise ParameterError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.backoff_base_ms <= 0:
            raise ParameterError(
                f"backoff_base_ms must be > 0, got {self.backoff_base_ms}"
            )
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise ParameterError(
                f"backoff_cap_ms must be >= backoff_base_ms, got "
                f"{self.backoff_cap_ms} < {self.backoff_base_ms}"
            )

    @property
    def measure_window_s(self) -> float:
        """Seconds of measured (post-warmup) traffic."""
        return self.duration_s - self.warmup_s

    def with_overrides(self, **changes) -> "Scenario":
        """A copy with fields replaced (CLI flag overrides)."""
        return replace(self, **changes)


#: The built-in scenario library (``ripple loadtest --scenario NAME``).
SCENARIOS = {
    scenario.name: scenario
    for scenario in (
        Scenario("point", (("point", 1.0),)),
        Scenario(
            "mixed",
            (
                ("point", 0.60),
                ("batch", 0.20),
                ("scan", 0.15),
                ("unknown", 0.05),
            ),
        ),
        Scenario("errors", (("point", 0.5), ("unknown", 0.5))),
        Scenario(
            "storm",
            (("point", 0.80), ("batch", 0.12), ("storm", 0.08)),
        ),
        # The CI smoke scenario: short, modest rate, every kind except
        # the storm (CI gates failure_rate == 0 and the reload path is
        # gated by its own tests; keeping the smoke mix mutation-free
        # keeps the gated latencies index-shaped).
        Scenario(
            "smoke",
            (
                ("point", 0.70),
                ("batch", 0.15),
                ("scan", 0.10),
                ("unknown", 0.05),
            ),
            offered_rps=40.0,
            duration_s=3.0,
            warmup_s=0.75,
            workers=4,
            repetitions=2,
        ),
        # The degradation-curve scenario: point-only traffic meant to
        # be swept past calibrated capacity (`--rate` overrides the
        # offered rate per sweep step). Many client workers so the
        # open-loop schedule keeps firing while earlier requests queue;
        # a small retry budget so one overloaded answer is retried
        # with jittered backoff before counting as shed.
        Scenario(
            "degrade",
            (("point", 1.0),),
            offered_rps=50.0,
            duration_s=3.0,
            warmup_s=0.75,
            workers=16,
            retry_budget=3,
        ),
        # The shard-router scenario: the smoke mix leaning on batches
        # and scans — the shapes that exercise the router's scatter-
        # gather fan-out — at a modest rate. Run it against a sharded
        # daemon (`--daemon-shards N --daemon-replicas M`, either
        # backend) to measure routing overhead vs the monolithic
        # engine under the same schedule.
        Scenario(
            "sharded",
            (
                ("point", 0.50),
                ("batch", 0.30),
                ("scan", 0.15),
                ("unknown", 0.05),
            ),
            offered_rps=40.0,
            duration_s=3.0,
            warmup_s=0.75,
            workers=4,
            repetitions=2,
        ),
        # The chaos-smoke scenario: the smoke mix (minus storms) with
        # a retry budget, run under injected serving faults in CI —
        # crashed sessions and garbage responses must be absorbed by
        # retries, keeping failure_rate at 0.
        Scenario(
            "chaos",
            (
                ("point", 0.70),
                ("batch", 0.15),
                ("scan", 0.10),
                ("unknown", 0.05),
            ),
            offered_rps=40.0,
            duration_s=3.0,
            warmup_s=0.75,
            workers=4,
            repetitions=2,
            retry_budget=3,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a built-in scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ParameterError(
            f"unknown scenario {name!r} "
            f"(built-ins: {', '.join(sorted(SCENARIOS))})"
        ) from None
