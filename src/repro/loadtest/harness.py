"""The capacity harness: spawn the daemon, drive it, write the table.

One :func:`run_scenario` call is one run: per repetition it

1. restores the served graph file (storm mutations must not leak
   across repetitions), spawns a fresh ``ripple serve --tcp`` daemon
   subprocess, and waits for its "listening on" line to learn the
   ephemeral port;
2. snapshots the daemon's ``serving.*`` counters and histograms
   (``stats`` op), starts the ``/proc`` resource monitor, and fires
   the scenario's precomputed open-loop schedule at it — taking one
   more ``stats`` snapshot mid-run at the warmup boundary so the
   server-side view of the *measurement window* can be isolated;
3. snapshots stats again, folds samples + counter deltas + CPU/RSS +
   the server-observed handle-time p95 (``serving.handle_seconds``
   histogram delta over the measurement window) into one
   :class:`~repro.loadtest.run_table.RunRow`, and appends the raw
   samples to the run's JSONL;
4. tears the daemon down — cooperatively on a clean run, immediately
   when the harness :class:`~repro.resilience.Deadline` expires.

Repetition r reseeds the scenario with ``seed + r`` so repetitions are
independent draws of the same traffic shape, yet every rerun of the
harness reproduces them exactly.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.graph.io import read_edge_list
from repro.obs.histogram import Histogram, subtract_snapshots
from repro.loadtest import client as loadclient
from repro.loadtest.monitor import ResourceMonitor
from repro.loadtest.run_table import RunRow, Sample, aggregate
from repro.loadtest.scenario import Scenario
from repro.loadtest.workload import build_schedule
from repro.resilience import Deadline

__all__ = ["DaemonProcess", "LoadTestError", "RunOutcome", "run_scenario"]

_LISTENING = re.compile(r"listening on ([0-9.]+):(\d+)")
_METRICS = re.compile(r"metrics on http://([0-9.]+):(\d+)")


class LoadTestError(ReproError):
    """The harness could not complete a run (daemon died, no port, …)."""


class DaemonProcess:
    """A managed ``ripple serve --tcp`` subprocess.

    The daemon binds an ephemeral port (``--tcp 127.0.0.1:0``) and
    announces it on stderr; :meth:`start` parses that line. stderr is
    drained continuously afterwards (a full pipe would wedge the
    daemon) and kept for diagnostics.
    """

    def __init__(
        self,
        graph_path: str | os.PathLike,
        *,
        index_path: str | os.PathLike | None = None,
        workers: int = 4,
        request_timeout: float | None = None,
        cache_size: int = 1024,
        max_k: int | None = None,
        max_queue: int | None = None,
        shed_policy: str | None = None,
        access_log: str | os.PathLike | None = None,
        metrics_port: int | None = None,
        extra_env: dict[str, str] | None = None,
        backend: str | None = None,
        shards: int | None = None,
        replicas: int | None = None,
    ) -> None:
        self.graph_path = os.fspath(graph_path)
        self.index_path = (
            os.fspath(index_path) if index_path is not None else None
        )
        #: Daemon backend (``serve --backend``): "thread", "aio", or
        #: None for the CLI default.
        self.backend = backend
        self.shards = shards
        self.replicas = replicas
        self.workers = workers
        self.request_timeout = request_timeout
        self.cache_size = cache_size
        self.max_k = max_k
        self.max_queue = max_queue
        self.shed_policy = shed_policy
        self.access_log = (
            os.fspath(access_log) if access_log is not None else None
        )
        self.metrics_port = metrics_port
        #: Extra environment for the daemon subprocess — e.g. a
        #: ``REPRO_FAULT`` plan arming serving-stage chaos in the
        #: daemon only, not the harness (the subprocess otherwise
        #: inherits the caller's whole environment).
        self.extra_env = dict(extra_env) if extra_env else {}
        self.address: tuple[str, int] | None = None
        #: The daemon's ``/metrics`` listener address, parsed from its
        #: announce line (None until announced / without
        #: ``metrics_port``).
        self.metrics_address: tuple[str, int] | None = None
        self.stderr_lines: list[str] = []
        self._process: subprocess.Popen | None = None
        self._drain: threading.Thread | None = None
        self._ready = threading.Event()

    @property
    def pid(self) -> int | None:
        return self._process.pid if self._process is not None else None

    def poll(self) -> int | None:
        """The daemon's exit code, or None while it is still alive."""
        return self._process.poll() if self._process is not None else None

    def _command(self) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--graph",
            self.graph_path,
            "--tcp",
            "127.0.0.1:0",
            "--workers",
            str(self.workers),
            "--cache-size",
            str(self.cache_size),
        ]
        if self.index_path is not None:
            command += ["--index", self.index_path]
        if self.backend is not None:
            command += ["--backend", self.backend]
        if self.shards is not None:
            command += ["--shards", str(self.shards)]
        if self.replicas is not None:
            command += ["--replicas", str(self.replicas)]
        if self.request_timeout is not None:
            command += ["--request-timeout", str(self.request_timeout)]
        if self.max_k is not None:
            command += ["--max-k", str(self.max_k)]
        if self.max_queue is not None:
            command += ["--max-queue", str(self.max_queue)]
        if self.shed_policy is not None:
            command += ["--shed-policy", self.shed_policy]
        if self.access_log is not None:
            command += ["--access-log", self.access_log]
        if self.metrics_port is not None:
            command += ["--metrics-port", str(self.metrics_port)]
        return command

    def start(self, timeout_s: float = 30.0) -> tuple[str, int]:
        """Spawn and block until the daemon announces its port."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src if not existing else src + os.pathsep + existing
        )
        env.update(self.extra_env)
        self._process = subprocess.Popen(
            self._command(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        # One thread drains stderr for the daemon's whole life (a full
        # pipe would wedge it) and flags the announce line when it
        # scrolls past — so a daemon that dies or hangs before binding
        # can't block start() beyond the timeout.
        self._drain = threading.Thread(
            target=self._drain_stderr, name="loadtest-daemon-stderr",
            daemon=True,
        )
        self._drain.start()
        if not self._ready.wait(timeout=timeout_s) or self.address is None:
            self.stop()
            raise LoadTestError(
                "daemon never announced a listening address; stderr: "
                + " | ".join(self.stderr_lines[-5:])
            )
        return self.address

    def _drain_stderr(self) -> None:
        assert self._process is not None and self._process.stderr is not None
        for line in self._process.stderr:
            self.stderr_lines.append(line.rstrip("\n"))
            if self.metrics_address is None:
                match = _METRICS.search(line)
                if match:
                    self.metrics_address = (
                        match.group(1),
                        int(match.group(2)),
                    )
            if self.address is None:
                match = _LISTENING.search(line)
                if match:
                    self.address = (match.group(1), int(match.group(2)))
                    self._ready.set()
        self._ready.set()  # EOF: unblock start() even without a match

    def stop(self, grace_s: float = 5.0) -> None:
        """Terminate (SIGTERM, then SIGKILL past the grace period)."""
        if self._process is None:
            return
        if self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=grace_s)
        if self._drain is not None:
            self._drain.join(timeout=2)
        if self._process.stderr is not None:
            self._process.stderr.close()

    def __enter__(self) -> "DaemonProcess":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def ask(address: tuple[str, int], payload: dict, timeout_s: float = 10.0):
    """One request, one response, over a throwaway connection."""
    with socket.create_connection(address, timeout=timeout_s) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write(json.dumps(payload, separators=(",", ":")) + "\n")
        stream.flush()
        return json.loads(stream.readline())


def _serving_stats(address: tuple[str, int]) -> dict:
    """One full ``stats`` response (counters + histogram snapshots)."""
    return ask(address, {"op": "stats"})


def _counter_delta(before: dict, after: dict) -> dict:
    return {
        name: after.get(name, 0) - before.get(name, 0)
        for name in set(before) | set(after)
    }


#: Histogram family backing the ``server_p95_ms`` cross-check column.
_HANDLE_FAMILY = "serving.handle_seconds"


def _merged_handle(stats: dict) -> Histogram:
    """Merge the per-class handle-time histograms of one stats snapshot.

    The ``control`` class (stats/reload/shutdown ops — including the
    harness's own snapshot requests) is excluded: the client-side p95
    this column cross-checks only ever measures scheduled workload
    requests.
    """
    merged = Histogram()
    prefix = _HANDLE_FAMILY + "."
    for name, snapshot in (stats.get("histograms") or {}).items():
        if name == _HANDLE_FAMILY or (
            name.startswith(prefix) and name != prefix + "control"
        ):
            merged.merge(snapshot)
    return merged


def _server_window(window_start: dict, after: dict) -> tuple[float, int]:
    """``(server_p95_ms, server_shed)`` between two stats snapshots."""
    handle = subtract_snapshots(
        _merged_handle(after).to_snapshot(),
        _merged_handle(window_start).to_snapshot(),
    )
    p95_ms = (
        handle.quantile(0.95) * 1000.0
        if not handle.is_empty()
        else float("nan")
    )
    shed = _counter_delta(
        window_start.get("counters", {}) or {},
        after.get("counters", {}) or {},
    ).get("serving.shed", 0)
    return p95_ms, max(0, shed)


@dataclass
class RunOutcome:
    """Everything one scenario run produced."""

    rows: list[RunRow] = field(default_factory=list)
    samples: dict[int, list[Sample]] = field(default_factory=dict)
    #: ``completed`` or ``deadline`` (harness budget ran out mid-run).
    status: str = "completed"


def run_scenario(
    scenario: Scenario,
    graph_path: str | os.PathLike,
    *,
    topology: str | None = None,
    index_path: str | os.PathLike | None = None,
    daemon_workers: int = 4,
    request_timeout: float | None = None,
    calibration_s: float | None = None,
    deadline: Deadline | None = None,
    address: tuple[str, int] | None = None,
    monitor_pid: int | None = None,
    daemon_max_queue: int | None = None,
    daemon_shed_policy: str | None = None,
    daemon_access_log: str | os.PathLike | None = None,
    daemon_metrics_port: int | None = None,
    daemon_env: dict[str, str] | None = None,
    daemon_backend: str | None = None,
    daemon_shards: int | None = None,
    daemon_replicas: int | None = None,
) -> RunOutcome:
    """Run every repetition of one scenario; returns rows + raw samples.

    By default each repetition gets a **fresh daemon subprocess** (no
    cross-repetition cache warmth, no leaked storm mutations — the
    graph file is restored between repetitions). Passing ``address``
    instead drives an already-running daemon (tests, remote targets);
    pair it with ``monitor_pid`` to keep CPU/RSS columns (use
    ``os.getpid()`` for an in-process ``serve_tcp``).

    ``daemon_max_queue``/``daemon_shed_policy`` forward to the spawned
    daemon's admission controller; ``daemon_access_log`` and
    ``daemon_metrics_port`` forward the telemetry flags (the access
    log is opened in append mode, so every repetition's fresh daemon
    extends the same JSONL; both are ignored when driving an external
    ``address``); ``daemon_env`` adds environment for
    the daemon subprocess only (e.g. a ``REPRO_FAULT`` chaos plan —
    each repetition's fresh daemon re-arms the plan from scratch). A
    spawned daemon that *dies* mid-run raises :class:`LoadTestError`
    with its stderr tail: a crashed daemon is never reported as an
    ordinary slow run. ``daemon_backend``/``daemon_shards``/
    ``daemon_replicas`` forward ``serve --backend/--shards/--replicas``
    so the same scenario can gate both backends, sharded or not.
    """
    graph_path = os.fspath(graph_path)
    if calibration_s is None:
        from repro.bench.perfgate import calibrate

        calibration_s = calibrate()
    topology = topology or Path(graph_path).stem
    vertices = sorted(
        read_edge_list(graph_path, allow_self_loops=True).vertices(),
        key=lambda v: (str(type(v)), str(v)),
    )
    pristine = Path(graph_path).read_bytes()
    outcome = RunOutcome()
    for repetition in range(1, scenario.repetitions + 1):
        if deadline is not None and deadline.expired():
            outcome.status = "deadline"
            break
        Path(graph_path).write_bytes(pristine)  # undo storm mutations
        reseeded = scenario.with_overrides(
            seed=scenario.seed + repetition - 1
        )
        schedule = build_schedule(reseeded, vertices)
        daemon: DaemonProcess | None = None
        try:
            if address is None:
                daemon = DaemonProcess(
                    graph_path,
                    index_path=index_path,
                    workers=daemon_workers,
                    request_timeout=request_timeout,
                    max_k=scenario.max_k,
                    max_queue=daemon_max_queue,
                    shed_policy=daemon_shed_policy,
                    access_log=daemon_access_log,
                    metrics_port=daemon_metrics_port,
                    extra_env=daemon_env,
                    backend=daemon_backend,
                    shards=daemon_shards,
                    replicas=daemon_replicas,
                )
                target = daemon.start()
                pid = daemon.pid
            else:
                target = address
                pid = monitor_pid
            stats_before = _serving_stats(target)
            monitor = (
                ResourceMonitor(pid).start() if pid is not None else None
            )
            # One extra stats snapshot fires mid-run at the warmup
            # boundary so server-side aggregates can be windowed to
            # the measurement interval, matching what the client-side
            # percentiles measure. Best-effort: a snapshot lost to an
            # injected fault or a saturated daemon falls back to the
            # pre-run snapshot (the window then includes warmup).
            window_snapshot: dict = {}

            def _snap_window() -> None:
                try:
                    window_snapshot.update(_serving_stats(target))
                except (OSError, ValueError):
                    pass

            window_timer = threading.Timer(
                reseeded.warmup_s, _snap_window
            )
            window_timer.daemon = True
            window_timer.start()
            try:
                samples, start = loadclient.drive(
                    target,
                    schedule,
                    reseeded,
                    graph_path=graph_path,
                    deadline=deadline,
                )
            finally:
                window_timer.cancel()
                window_timer.join(timeout=5.0)
            if monitor is not None:
                monitor.stop()
            if daemon is not None and daemon.poll() is not None:
                raise LoadTestError(
                    f"daemon died mid-run (exit code {daemon.poll()}) "
                    f"during {scenario.name!r} repetition {repetition}; "
                    "stderr: " + " | ".join(daemon.stderr_lines[-5:])
                )
            stats_after = _serving_stats(target)
            server_p95_ms, server_shed = _server_window(
                window_snapshot or stats_before, stats_after
            )
            cpu, rss = (
                monitor.summary(
                    start + reseeded.warmup_s,
                    start + reseeded.duration_s,
                )
                if monitor is not None
                else (float("nan"), float("nan"))
            )
            outcome.rows.append(
                aggregate(
                    scenario=scenario.name,
                    repetition=repetition,
                    topology=topology,
                    workers=reseeded.workers,
                    offered_rps=reseeded.offered_rps,
                    samples=samples,
                    measure_window_s=reseeded.measure_window_s,
                    cpu_usage_avg=cpu,
                    rss_peak_mb=rss,
                    calibration_s=calibration_s,
                    counters=_counter_delta(
                        stats_before.get("counters", {}) or {},
                        stats_after.get("counters", {}) or {},
                    ),
                    server_p95_ms=server_p95_ms,
                    server_shed=server_shed,
                )
            )
            outcome.samples[repetition] = samples
        finally:
            if daemon is not None:
                daemon.stop()
            Path(graph_path).write_bytes(pristine)
        if deadline is not None and deadline.expired():
            outcome.status = "deadline"
            break
    return outcome
