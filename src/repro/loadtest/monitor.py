"""Daemon resource monitoring: CPU and RSS sampled from ``/proc``.

The run table's ``cpu_usage_avg`` / ``rss_peak_mb`` columns come from
polling the *daemon* process (not the client) while the load runs —
the capacity question is what the server burns to sustain the offered
rate. Sampling reads ``/proc/<pid>/stat`` (utime+stime ticks) and
``/proc/<pid>/status`` (``VmRSS``), so it works on any pid we own —
the spawned daemon subprocess, or this very process when the target is
an in-process ``serve_tcp`` (tests). No psutil dependency.

On platforms without ``/proc`` (macOS) the monitor degrades to "no
samples": the summary is NaN and the CSV cells stay empty rather than
wrong.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

__all__ = ["ResourceMonitor", "ResourceSample", "proc_available"]


@dataclass(frozen=True)
class ResourceSample:
    """One poll: monotonic instant, cumulative CPU seconds, RSS MiB."""

    t: float
    cpu_s: float
    rss_mb: float


def proc_available(pid: int) -> bool:
    """Whether ``/proc/<pid>`` exposes what the monitor reads."""
    return os.path.exists(f"/proc/{pid}/stat")


def _read_cpu_seconds(pid: int, tick: float) -> float:
    with open(f"/proc/{pid}/stat", encoding="ascii") as handle:
        stat = handle.read()
    # The comm field may contain spaces/parens; fields are positional
    # only after the last ')'. utime and stime are fields 14 and 15
    # (1-indexed), i.e. positions 11 and 12 after the comm.
    after = stat.rsplit(")", 1)[1].split()
    return (int(after[11]) + int(after[12])) * tick


def _read_rss_mb(pid: int) -> float:
    with open(f"/proc/{pid}/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0  # kB -> MiB
    return float("nan")


class ResourceMonitor:
    """Polls one pid on a background thread until stopped.

    Usage::

        monitor = ResourceMonitor(daemon.pid)
        monitor.start()
        ...drive the load...
        monitor.stop()
        cpu_pct, rss_mb = monitor.summary(window_start, window_end)
    """

    def __init__(self, pid: int, interval_s: float = 0.05) -> None:
        self.pid = pid
        self.interval_s = interval_s
        self.samples: list[ResourceSample] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._tick = 1.0 / os.sysconf("SC_CLK_TCK") if hasattr(
            os, "sysconf"
        ) else 0.01

    @property
    def available(self) -> bool:
        return proc_available(self.pid)

    def start(self) -> "ResourceMonitor":
        if not self.available:
            return self
        self._thread = threading.Thread(
            target=self._poll, name="loadtest-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _poll(self) -> None:
        while not self._stop.is_set():
            try:
                self.samples.append(
                    ResourceSample(
                        time.monotonic(),
                        _read_cpu_seconds(self.pid, self._tick),
                        _read_rss_mb(self.pid),
                    )
                )
            except (OSError, IndexError, ValueError):
                return  # the process exited; keep what we have
            self._stop.wait(self.interval_s)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def summary(
        self, window_start: float, window_end: float
    ) -> tuple[float, float]:
        """``(cpu_usage_avg_percent, rss_peak_mb)`` over a monotonic
        window — NaN/NaN when fewer than two samples landed in it."""
        window = [
            s for s in self.samples if window_start <= s.t <= window_end
        ]
        if len(window) < 2:
            return float("nan"), float("nan")
        elapsed = window[-1].t - window[0].t
        cpu = (
            (window[-1].cpu_s - window[0].cpu_s) / elapsed * 100.0
            if elapsed > 0
            else float("nan")
        )
        return cpu, max(s.rss_mb for s in window)

    def to_json(self) -> list[dict]:
        """Raw samples for the per-run JSONL (relative-time free)."""
        return [
            {
                "t": round(s.t, 6),
                "cpu_s": round(s.cpu_s, 6),
                "rss_mb": round(s.rss_mb, 3),
            }
            for s in self.samples
        ]
