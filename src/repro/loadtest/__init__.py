"""Open-loop load testing and capacity measurement for ``ripple serve``.

The serving tier (``docs/serving.md``) answers one query fast; this
package measures what it does under *traffic* — concurrent clients,
configurable arrival rates, mixed workloads, and mid-run graph
mutations — and leaves behind a flat ``run_table.csv`` (one row per
scenario×repetition: throughput, latency percentiles, failure
taxonomy, daemon CPU/RSS, ``serving.*`` counter deltas) that CI gates
row by row. See ``docs/loadtest.md`` for the run-table column glossary
and open-loop semantics.

Layers:

* :mod:`repro.loadtest.scenario` — named, validated traffic shapes;
* :mod:`repro.loadtest.workload` — the deterministic open-loop
  schedule a scenario's seed expands into;
* :mod:`repro.loadtest.client` — concurrent workers firing the
  schedule, coordinated-omission-safe;
* :mod:`repro.loadtest.monitor` — daemon CPU/RSS from ``/proc``;
* :mod:`repro.loadtest.run_table` — the CSV/JSONL artifacts;
* :mod:`repro.loadtest.harness` — daemon lifecycle + orchestration
  (what ``ripple loadtest`` and ``scripts/bench_loadtest.py`` drive).
"""

from repro.loadtest.harness import (
    DaemonProcess,
    LoadTestError,
    RunOutcome,
    run_scenario,
)
from repro.loadtest.run_table import (
    COLUMNS,
    OUTCOMES,
    RunRow,
    Sample,
    aggregate,
    read_run_table,
    write_run_table,
    write_samples_jsonl,
)
from repro.loadtest.scenario import KINDS, SCENARIOS, Scenario, get_scenario
from repro.loadtest.workload import Request, build_schedule

__all__ = [
    "COLUMNS",
    "DaemonProcess",
    "KINDS",
    "LoadTestError",
    "OUTCOMES",
    "Request",
    "RunOutcome",
    "RunRow",
    "SCENARIOS",
    "Sample",
    "Scenario",
    "aggregate",
    "build_schedule",
    "get_scenario",
    "read_run_table",
    "run_scenario",
    "write_run_table",
    "write_samples_jsonl",
]
