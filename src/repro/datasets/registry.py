"""Synthetic stand-ins for the paper's ten real-world benchmark graphs.

The paper's Table II graphs (SNAP / Network Repository, up to 59M
vertices) are unavailable offline and far beyond pure-Python scale, so
each dataset here is a seeded generator configuration that preserves
the *property the paper's evaluation uses that graph for* — see the
``mirrors`` / ``why`` fields and DESIGN.md §4. Sizes are chosen so the
exact VCCE-TD oracle finishes in seconds per run.

Every dataset fixes the three ``k`` values its accuracy rows use
(mirroring "the top three k values per dataset" of Table III) and a
``default_k`` for single-k experiments.
"""

from __future__ import annotations

import gzip
import random

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass
from typing import Callable

from repro.errors import GraphFormatError, ParameterError
from repro.graph.adjacency import Graph
from repro.graph.csr import CsrGraph
from repro.graph.generators import (
    CommunitySpec,
    attach_mixed_chains,
    attach_support_pairs,
    community_graph,
    mixed_community_graph,
    planted_kvcc_graph,
    powerlaw_cluster_graph,
)
from repro.graph.kcore import k_core

__all__ = [
    "Dataset",
    "DATASETS",
    "get_dataset",
    "dataset_names",
    "load_snap_edge_list",
    "load_snap_graph",
    "stream_snap_edges",
]


@dataclass(frozen=True)
class Dataset:
    """One benchmark dataset: a named, seeded generator configuration."""

    name: str
    mirrors: str
    why: str
    build: Callable[[], Graph]
    ks: tuple[int, ...]
    default_k: int

    def graph(self) -> Graph:
        """Build the graph (deterministic; call freely)."""
        return self.build()


def _condmat() -> Graph:
    # Collaboration network: communities of varied density (build-k 3–5)
    # so the expansion traps stay live at every evaluated k.
    specs = [
        CommunitySpec(size=26, k=3, periphery_pairs=1),
        CommunitySpec(size=42, k=4, periphery_pairs=1, mixed_chains=1),
        CommunitySpec(size=58, k=5, periphery_pairs=1),
        CommunitySpec(size=28, k=3, mixed_chains=1),
        CommunitySpec(size=60, k=5, periphery_pairs=2),
        CommunitySpec(size=40, k=4, periphery_pairs=1, mixed_chains=1),
        CommunitySpec(size=42, k=4, periphery_pairs=1),
    ]
    return mixed_community_graph(specs, seed=11, bridge_width=2)


def _uk2005() -> Graph:
    # Few very dense web communities; cliques dominate seeding.
    return community_graph(
        [60, 50, 55], k=8, seed=23, extra_edge_prob=0.5, bridge_width=3
    )


def _arabic2005() -> Graph:
    # Dense web cores with light periphery: the high-accuracy regime.
    return planted_kvcc_graph(
        4, 45, 5, seed=31, periphery_pairs=1, bridge_width=2,
        noise_vertices=20,
    )


def _shipsec() -> Graph:
    # Mesh-like communities stitched by two-star bridges: the NBM trap
    # dataset where VCCE-BU's J_Index collapses.
    return community_graph(
        [45, 45, 45, 45], k=5, seed=41, bridge_style="two_star",
        periphery_pairs=2, mixed_chains=1,
    )


def _citeseer() -> Graph:
    # Many mid-size communities of varied density, moderate periphery.
    specs = [
        CommunitySpec(size=40, k=4, periphery_pairs=1, mixed_chains=1),
        CommunitySpec(size=56, k=5, periphery_pairs=1),
        CommunitySpec(size=26, k=3, periphery_pairs=1),
        CommunitySpec(size=58, k=5, mixed_chains=1),
        CommunitySpec(size=40, k=4, periphery_pairs=1),
        CommunitySpec(size=26, k=3, mixed_chains=1),
    ]
    return mixed_community_graph(specs, seed=53, bridge_width=2)


def _dblp() -> Graph:
    # Larger collaboration structure with heavy periphery and mixed
    # chains at varied build-k: the accuracy-gap regime of Tables IV/V.
    specs = [
        CommunitySpec(size=36, k=3, periphery_pairs=3, mixed_chains=2),
        CommunitySpec(size=52, k=4, periphery_pairs=3, mixed_chains=2),
        CommunitySpec(size=66, k=5, periphery_pairs=3, mixed_chains=2),
        CommunitySpec(size=50, k=4, periphery_pairs=2, mixed_chains=2),
        CommunitySpec(size=64, k=5, periphery_pairs=3, mixed_chains=1),
    ]
    return mixed_community_graph(specs, seed=61, bridge_width=2)


def _mathscinet() -> Graph:
    # Sparse collaboration graph: clique-poor circulant communities
    # with a few dense pockets — seeding finds only the pockets and
    # every heuristic leaves most of the ring uncovered.
    return community_graph(
        [150, 140, 145], k=4, seed=71, style="circulant",
        clique_pockets=30, extra_edge_prob=0.1, bridge_width=2,
    )


def _it2004() -> Graph:
    # Dense web graph: near-perfect accuracy for both heuristics.
    return community_graph(
        [70, 64], k=7, seed=83, extra_edge_prob=0.4, bridge_width=2
    )


def _citpatent() -> Graph:
    # Heavy-tailed citation-style graph with dense pockets, decorated
    # with support pairs and mixed chains anchored in the dense core:
    # accuracy decreases with k as expansions miss more of them.
    graph = powerlaw_cluster_graph(430, attach=3, triangle_prob=0.85, seed=97)
    for build_k, seed in ((3, 1), (4, 2), (5, 3)):
        # Anchor the traps in the densest part of the giant component:
        # the deepest core that still has enough room for disjoint
        # anchor sets.
        level = 2 * build_k
        targets: list = []
        while level > build_k and len(targets) < 6 * build_k:
            targets = sorted(k_core(graph, level).vertex_set())
            level -= 1
        attach_support_pairs(graph, targets, 3, build_k, seed=seed)
        attach_mixed_chains(graph, targets, 2, build_k, seed=seed + 10)
    return graph


def _socfb() -> Graph:
    # One giant community plus a large sparse fringe and a trap bridge
    # to a second community: the socfb-konect regime.
    core = community_graph(
        [80, 40], k=4, seed=103, bridge_style="two_star",
        periphery_pairs=3,
    )
    # Attach low-degree tendrils to the giant community directly.
    rng = random.Random(107)
    next_label = core.num_vertices
    for _ in range(120):
        chain = rng.randint(1, 3)
        prev = rng.randrange(80)
        for _ in range(chain):
            core.add_edge(prev, next_label)
            prev = next_label
            next_label += 1
    return core


DATASETS: dict[str, Dataset] = {
    dataset.name: dataset
    for dataset in (
        Dataset(
            name="ca-condmat",
            mirrors="ca-CondMat",
            why="overlapping author cliques, moderate k_max",
            build=_condmat,
            ks=(3, 4, 5),
            default_k=4,
        ),
        Dataset(
            name="uk-2005",
            mirrors="uk-2005",
            why="very dense communities; BK-MCQ covers ~100% of seeds",
            build=_uk2005,
            ks=(6, 7, 8),
            default_k=7,
        ),
        Dataset(
            name="arabic-2005",
            mirrors="arabic-2005",
            why="dense cores + light periphery; high-accuracy regime",
            build=_arabic2005,
            ks=(3, 4, 5),
            default_k=4,
        ),
        Dataset(
            name="sc-shipsec",
            mirrors="sc-shipsec",
            why="two-star bridges: NBM over-merges, J_Index collapses",
            build=_shipsec,
            ks=(3, 4, 5),
            default_k=4,
        ),
        Dataset(
            name="ca-citeseer",
            mirrors="ca-citeseer",
            why="many mid-size k-VCCs",
            build=_citeseer,
            ks=(3, 4, 5),
            default_k=4,
        ),
        Dataset(
            name="ca-dblp",
            mirrors="ca-dblp",
            why="heavy periphery: the Table IV/V accuracy-gap regime",
            build=_dblp,
            ks=(3, 4, 5),
            default_k=4,
        ),
        Dataset(
            name="ca-mathscinet",
            mirrors="ca-MathSciNet",
            why="clique-poor sparse communities; seeding-dominated time",
            build=_mathscinet,
            ks=(3, 4),
            default_k=4,
        ),
        Dataset(
            name="it-2004",
            mirrors="it-2004",
            why="dense web communities; ~100% accuracy for all methods",
            build=_it2004,
            ks=(5, 6, 7),
            default_k=6,
        ),
        Dataset(
            name="cit-patent",
            mirrors="cit-patent",
            why="heavy-tailed degrees; accuracy decreases with k",
            build=_citpatent,
            ks=(3, 4, 5),
            default_k=4,
        ),
        Dataset(
            name="socfb-konect",
            mirrors="socfb-konect",
            why="giant k-VCC + sparse fringe + trap bridge",
            build=_socfb,
            ks=(3, 4),
            default_k=4,
        ),
    )
}


# ---------------------------------------------------------------------------
# Streaming SNAP loader
# ---------------------------------------------------------------------------
#
# The paper's real graphs ship as SNAP-style edge lists: ``# comment``
# header blocks, one whitespace-separated vertex pair per line, often
# with self-loops and duplicate edges left in. The loaders below stream
# such a file straight into a :class:`CsrGraph` — no intermediate dict
# graph, no per-edge adjacency sets — so the peak transient state is the
# deduplicated pair list that the CSR builder keeps anyway.


def _coerce_label(token: str) -> Hashable:
    """Integer labels stay ``int`` (the common SNAP case); anything
    else is kept as the raw string."""
    try:
        return int(token)
    except ValueError:
        return token


def stream_snap_edges(
    lines: Iterable[str], source: str | None = None
) -> Iterator[tuple[Hashable, Hashable]]:
    """Yield raw vertex pairs from SNAP-style edge-list lines.

    Blank lines and ``#`` / ``%`` comment lines are skipped. Self-loops
    and duplicate edges are *not* filtered here —
    :meth:`CsrGraph.from_edge_stream` drops them while counting what it
    dropped, so the observability counters reflect the raw file. Extra
    columns (timestamps, weights) are ignored. A line with fewer than
    two tokens raises :class:`~repro.errors.GraphFormatError` with its
    1-based line number.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(
                f"expected a vertex pair, got {line!r}",
                source=source,
                lineno=lineno,
            )
        yield _coerce_label(parts[0]), _coerce_label(parts[1])


def load_snap_edge_list(path: str) -> CsrGraph:
    """Stream a SNAP-style edge-list file into a :class:`CsrGraph`.

    ``.gz`` paths are decompressed on the fly. The file is read exactly
    once; see :func:`stream_snap_edges` for the tolerated format.
    """
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:
        return CsrGraph.from_edge_stream(
            stream_snap_edges(handle, source=str(path))
        )


def load_snap_graph(path: str) -> Graph:
    """SNAP file → adjacency :class:`Graph` with its CSR cache primed.

    The densified graph carries the streamed snapshot as its CSR cache,
    so the flow fast path takes the flat-array route immediately — the
    intended input path for ``ripple enumerate --format snap``.
    """
    return load_snap_edge_list(path).to_graph()


def dataset_names() -> list[str]:
    """All registered dataset names, registry order."""
    return list(DATASETS)


def get_dataset(name: str) -> Dataset:
    """Look up a dataset by name (raises with the valid choices)."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ParameterError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
