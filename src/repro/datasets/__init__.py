"""Benchmark dataset registry (synthetic stand-ins for Table II)."""

from repro.datasets.registry import (
    DATASETS,
    Dataset,
    dataset_names,
    get_dataset,
)

__all__ = ["DATASETS", "Dataset", "dataset_names", "get_dataset"]
