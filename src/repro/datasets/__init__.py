"""Benchmark dataset registry (synthetic stand-ins for Table II) and
the streaming SNAP edge-list loader."""

from repro.datasets.registry import (
    DATASETS,
    Dataset,
    dataset_names,
    get_dataset,
    load_snap_edge_list,
    load_snap_graph,
    stream_snap_edges,
)

__all__ = [
    "DATASETS",
    "Dataset",
    "dataset_names",
    "get_dataset",
    "load_snap_edge_list",
    "load_snap_graph",
    "stream_snap_edges",
]
