"""Reading and writing graphs as edge lists.

Supports the whitespace-separated edge-list format used by SNAP and the
Network Repository (one ``u v`` pair per line, ``#`` or ``%`` comments).
Self-loops in input files are rejected by default because the k-VCC
machinery is defined on simple graphs; parallel edges collapse silently.

Malformed input raises :class:`repro.errors.GraphFormatError` carrying
the source name and 1-based line number, never a bare ``ValueError``
traceback. The default policy is forgiving (string labels allowed,
extra columns ignored, bare labels declare isolated vertices);
``strict=True`` locks the format down to exactly two integer tokens
per data line for pipelines that must catch corrupted exports early.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.errors import GraphError, GraphFormatError
from repro.graph.adjacency import Graph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_list"]


def parse_edge_list(
    lines: Iterable[str],
    *,
    allow_self_loops: bool = False,
    strict: bool = False,
    source: str | None = None,
) -> Graph:
    """Build a graph from an iterable of edge-list lines.

    Lines that are blank or start with ``#`` / ``%`` are skipped; a line
    with a single token declares an isolated vertex. Vertex labels that
    look like integers are stored as ``int``; anything else stays a
    string. With ``allow_self_loops`` set, self-loop lines are silently
    dropped instead of raising (some public datasets contain them).

    ``strict`` rejects anything but two integer tokens per data line
    (truncated lines, trailing weight columns, non-integer labels).
    ``source`` names the input in error messages (set automatically by
    :func:`read_edge_list`). All rejections raise
    :class:`~repro.errors.GraphFormatError` with the offending line
    number.
    """
    graph = Graph()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if strict and len(parts) != 2:
            raise GraphFormatError(
                f"expected exactly 2 tokens, got {len(parts)}: {line!r}",
                source=source,
                lineno=lineno,
            )
        if len(parts) == 1:
            # A bare label declares an isolated vertex (lossless
            # round-tripping of graphs with degree-0 vertices).
            graph.add_vertex(_coerce(parts[0], strict, source, lineno))
            continue
        u = _coerce(parts[0], strict, source, lineno)
        v = _coerce(parts[1], strict, source, lineno)
        if u == v:
            if allow_self_loops:
                graph.add_vertex(u)
                continue
            raise GraphFormatError(
                f"self-loop on {u!r}", source=source, lineno=lineno
            )
        try:
            graph.add_edge(u, v)
        except GraphError as exc:  # pragma: no cover - defensive
            raise GraphFormatError(
                str(exc), source=source, lineno=lineno
            ) from exc
    return graph


def _coerce(token: str, strict: bool, source: str | None, lineno: int):
    """Interpret a vertex token as int when possible, else keep the string.

    In strict mode a non-integer token is a format error instead.
    """
    try:
        return int(token)
    except ValueError:
        if strict:
            raise GraphFormatError(
                f"non-integer vertex token {token!r}",
                source=source,
                lineno=lineno,
            ) from None
        return token


def read_edge_list(
    path: str | os.PathLike,
    *,
    allow_self_loops: bool = False,
    strict: bool = False,
) -> Graph:
    """Read a graph from an edge-list file.

    Parse failures raise :class:`~repro.errors.GraphFormatError` naming
    the file and line; unreadable or non-text files surface as
    ``OSError`` / ``UnicodeDecodeError`` from the ``open`` call.
    """
    source = os.fspath(path)
    with open(path, encoding="utf-8") as handle:
        return parse_edge_list(
            handle,
            allow_self_loops=allow_self_loops,
            strict=strict,
            source=source,
        )


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write a graph as a sorted edge list (stable output for diffing)."""
    lines = sorted(
        f"{u} {v}" if _key(u) <= _key(v) else f"{v} {u}"
        for u, v in graph.edges()
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# repro edge list: n={graph.num_vertices} m={graph.num_edges}\n"
        )
        for u in sorted(graph.vertices(), key=_key):
            if graph.degree(u) == 0:
                handle.write(f"{u}\n")
        handle.write("\n".join(lines))
        if lines:
            handle.write("\n")


def _key(value) -> tuple[int, str]:
    """Ordering key that works across mixed int/str vertex labels."""
    if isinstance(value, int):
        return (0, f"{value:020d}")
    return (1, str(value))
