"""k-round BFS forests (Nagamochi–Ibaraki style) for quick k-VCS seeding.

Lemma 4 of the paper (after Nagamochi & Ibaraki '92, Wen et al. '19): run
BFS k times, where round ``i`` builds a spanning BFS forest ``F_i`` of the
graph with the edges of forests ``F_1 … F_{i-1}`` removed. Any connected
component of the *last* forest ``F_k`` is a k-vertex connected subgraph of
the original graph — which makes the components of ``F_k`` free seeds for
the bottom-up pipeline.
"""

from __future__ import annotations

from itertools import chain

from repro import obs
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.traversal import (
    _bfs_tree_edges_avoiding,
    connected_components,
)

__all__ = [
    "bfs_forest",
    "certificate_for_flow",
    "k_bfs_forests",
    "k_bfs_seed_components",
    "sparse_certificate",
]


def bfs_forest(
    graph: Graph, forbidden_edges: set
) -> list[tuple[object, object]]:
    """A spanning BFS forest of ``graph`` avoiding ``forbidden_edges``.

    ``forbidden_edges`` holds frozensets of endpoints. Every vertex is
    covered: a fresh BFS tree is grown from each yet-unvisited vertex.
    """
    used_adj: dict = {}
    for edge in forbidden_edges:
        u, v = edge
        used_adj.setdefault(u, set()).add(v)
        used_adj.setdefault(v, set()).add(u)
    return _forest_avoiding(graph, used_adj)


def _forest_avoiding(
    graph: Graph, used_adj: dict
) -> list[tuple[object, object]]:
    """:func:`bfs_forest` on the incremental dict-of-sets form.

    The k-round construction scans every graph edge once per round, so
    the forbidden-edge probe is the hot operation: a per-vertex set
    lookup here versus a frozenset allocation per scanned edge in the
    public-API form. Traversal order — and thus the forests — are
    identical.
    """
    covered: set = set()
    forest: list[tuple[object, object]] = []
    for root in graph.vertices():
        if root in covered:
            continue
        tree = _bfs_tree_edges_avoiding(graph, root, used_adj)
        covered.add(root)
        covered.update(chain.from_iterable(tree))
        forest.extend(tree)
    return forest


def k_bfs_forests(graph: Graph, k: int) -> list[list[tuple[object, object]]]:
    """The k successive edge-disjoint BFS forests ``F_1 … F_k``."""
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    used_adj: dict = {}
    forests: list[list[tuple[object, object]]] = []
    for _ in range(k):
        forest = _forest_avoiding(graph, used_adj)
        forests.append(forest)
        for u, v in forest:
            used_adj.setdefault(u, set()).add(v)
            used_adj.setdefault(v, set()).add(u)
    return forests


def sparse_certificate(graph: Graph, k: int) -> Graph:
    """A sparse certificate for k-vertex connectivity (CKT '93).

    BFS is a scan-first search, so the union of the k edge-disjoint
    BFS forests ``F_1 … F_k`` has the Cheriyan–Kao–Thurimella
    property: for every vertex set ``W`` with ``|W| < k``, the
    certificate minus ``W`` is connected iff the original graph minus
    ``W`` is. Consequences the library exploits:

    * the certificate is k-vertex connected iff the graph is;
    * any vertex cut of size < k found *in the certificate* is a valid
      vertex cut of the original graph.

    The certificate has at most ``k · (n - 1)`` edges, so flow-based
    cut searches on dense graphs get much cheaper (Wen et al.'s
    optimisation for the top-down enumerator).
    """
    forests = k_bfs_forests(graph, k)
    certificate = Graph.from_edges(
        (edge for forest in forests for edge in forest),
        vertices=graph.vertices(),
    )
    return certificate


def certificate_for_flow(
    graph: Graph, members: set, k: int, factor: float = 2.0
) -> Graph | None:
    """The sparse certificate of ``G[members]`` when it is dense enough.

    The expansion/merging hot paths ask threshold questions —
    "κ(u, σ) ≥ k inside G[members] (+ virtuals)?" — and by the
    certificate property of :func:`sparse_certificate` any vertex cut
    of size < k exists in the certificate iff it exists in the induced
    subgraph, so those questions have the *same answer* on either
    graph. Running the flow on the certificate caps the arc count at
    ``k·(n-1)`` regardless of how dense the subgraph is.

    Returns ``None`` when the induced subgraph has at most
    ``factor · k · n`` edges (already sparse — building the certificate
    would cost more than it saves), otherwise the certificate. The
    edge count scan early-exits once the threshold is crossed.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    n = len(members)
    threshold = factor * k * n
    # The induced subgraph can have no more edges than the host graph.
    if graph.num_edges <= threshold:
        return None
    half_edges = 0
    limit = 2 * threshold
    for u in members:
        half_edges += len(graph.neighbors(u) & members)
        if half_edges > limit:
            break
    if half_edges <= limit:
        return None
    obs.count("certificate.activations")
    return sparse_certificate(graph.subgraph(members), k)


def k_bfs_seed_components(graph: Graph, k: int) -> list[set]:
    """k-vertex connected seed subgraphs found by the kBFS construction.

    Returns the vertex sets of the connected components of the k-th BFS
    forest that contain more than one vertex (singletons carry no
    connectivity information). By Lemma 4 each returned set induces a
    k-vertex connected subgraph in the *original* graph.
    """
    forests = k_bfs_forests(graph, k)
    last = Graph.from_edges(forests[-1], vertices=graph.vertices())
    return [
        comp for comp in connected_components(last) if len(comp) > k
    ]
