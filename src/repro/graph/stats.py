"""Descriptive graph statistics: degrees, triangles, clustering.

Used by the dataset registry tests to *prove* the texture claims the
stand-ins make (clique-ring communities really are triangle-rich, the
circulant regime really is triangle-poor, the powerlaw generator really
has heavy-tailed degrees) and available as public API for users
profiling their own inputs.
"""

from __future__ import annotations

from collections import Counter

from repro.graph.adjacency import Graph

__all__ = [
    "degree_histogram",
    "triangle_count",
    "average_clustering",
    "density",
]


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Mapping degree → number of vertices with that degree."""
    return dict(Counter(graph.degree(u) for u in graph.vertices()))


def triangle_count(graph: Graph) -> int:
    """Total number of triangles in the graph.

    Standard neighbour-intersection counting over edges; each triangle
    is seen from all three edges, hence the division.
    """
    total = 0
    for u, v in graph.edges():
        total += len(graph.neighbors(u) & graph.neighbors(v))
    return total // 3


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient (0.0 on degenerate inputs).

    For each vertex: the fraction of its neighbour pairs that are
    themselves adjacent; vertices of degree < 2 contribute 0.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    total = 0.0
    for u in graph.vertices():
        nbrs = list(graph.neighbors(u))
        d = len(nbrs)
        if d < 2:
            continue
        links = 0
        for i, a in enumerate(nbrs):
            a_nbrs = graph.neighbors(a)
            for b in nbrs[i + 1:]:
                if b in a_nbrs:
                    links += 1
        total += 2.0 * links / (d * (d - 1))
    return total / n


def density(graph: Graph) -> float:
    """Edge density ``2m / (n(n-1))`` (0.0 for graphs below 2 vertices)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))
