"""Adjacency-set graph: the core substrate every algorithm builds on.

The paper's reference implementation is C++; ``networkx`` is far too slow
for the benchmark-scale graphs here, so this module provides a minimal,
fast, undirected simple graph backed by ``dict[int, set]``. Membership
tests, neighbour iteration, and induced-subgraph construction — the hot
operations in seeding, expansion, and merging — are all O(1) or linear in
the touched part of the graph.

Only simple graphs are supported: self-loops raise :class:`GraphError`
and parallel edges collapse silently (adjacency is a set).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TYPE_CHECKING, TypeVar

from repro import obs
from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csr import CsrGraph

Vertex = TypeVar("Vertex", bound=Hashable)

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph stored as adjacency sets.

    Vertices may be any hashable value (benchmarks use ``int``).

    >>> g = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]

    A flat-array CSR snapshot (:class:`repro.graph.CsrGraph`) can be
    obtained via :meth:`csr`; it is cached per adjacency version and
    invalidated by any mutation, so read-heavy phases pay one build.
    """

    __slots__ = ("_adj", "_num_edges", "_version", "_csr", "_csr_version")

    def __init__(self) -> None:
        self._adj: dict[Hashable, set] = {}
        self._num_edges = 0
        # Adjacency version, bumped on every mutation; the CSR cache
        # remembers which version it snapshotted.
        self._version = 0
        self._csr: CsrGraph | None = None
        self._csr_version = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Hashable, Hashable]],
        vertices: Iterable[Hashable] = (),
    ) -> "Graph":
        """Build a graph from an edge iterable plus optional isolated vertices."""
        graph = cls()
        for vertex in vertices:
            graph.add_vertex(vertex)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "Graph":
        """Return an independent deep copy of the adjacency structure."""
        clone = Graph()
        clone._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_vertex(self, u: Hashable) -> None:
        """Add an isolated vertex (no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = set()
            self._version += 1

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Re-adding an existing edge is a no-op. Self-loops are rejected
        because k-VCC theory is defined on simple graphs.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1
            self._version += 1

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove the edge ``{u, v}``; raise if it does not exist."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist") from exc
        self._num_edges -= 1
        self._version += 1

    def remove_vertex(self, u: Hashable) -> None:
        """Remove ``u`` and all incident edges; raise if absent."""
        if u not in self._adj:
            raise GraphError(f"vertex {u!r} does not exist")
        for v in self._adj[u]:
            self._adj[v].remove(u)
        self._num_edges -= len(self._adj[u])
        del self._adj[u]
        self._version += 1

    def remove_vertices(self, vertices: Iterable[Hashable]) -> None:
        """Remove every vertex in ``vertices`` (each must exist).

        Bulk form of :meth:`remove_vertex`: edges between two doomed
        vertices are dropped without ever updating the partner's
        adjacency set, so removing a whole region costs one pass over
        its incident edges instead of one set discard per half-edge.
        """
        doomed = (
            vertices
            if isinstance(vertices, (set, frozenset))
            else set(vertices)
        )
        adj = self._adj
        missing = [u for u in doomed if u not in adj]
        if missing:
            raise GraphError(f"vertex {missing[0]!r} does not exist")
        if not doomed:
            return
        internal = 0
        external = 0
        for u in doomed:
            for v in adj[u]:
                if v in doomed:
                    internal += 1
                else:
                    adj[v].remove(u)
                    external += 1
            del adj[u]
        self._num_edges -= external + internal // 2
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices, ``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges, ``m = |E|``."""
        return self._num_edges

    def vertices(self) -> Iterator[Hashable]:
        """Iterate over all vertices (insertion order)."""
        return iter(self._adj)

    def vertex_set(self) -> set:
        """Return a fresh set of all vertices."""
        return set(self._adj)

    def vertex_view(self):
        """A read-only, set-like live view of the vertices.

        Supports C-speed membership and set algebra without the copy
        :meth:`vertex_set` pays — the flow-network constructor checks
        its member set against this on every build.
        """
        return self._adj.keys()

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Iterate over each undirected edge exactly once."""
        seen: set = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_vertex(self, u: Hashable) -> bool:
        """Whether ``u`` is a vertex of the graph."""
        return u in self._adj

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Whether the edge ``{u, v}`` exists."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, u: Hashable) -> set:
        """The adjacency set of ``u`` (the live set — do not mutate)."""
        try:
            return self._adj[u]
        except KeyError as exc:
            raise GraphError(f"vertex {u!r} does not exist") from exc

    def degree(self, u: Hashable) -> int:
        """``d(u) = |N(u)|``."""
        return len(self.neighbors(u))

    def average_degree(self) -> float:
        """Mean degree ``2m / n`` (0.0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def min_degree(self) -> int:
        """Minimum degree over all vertices; raises on the empty graph."""
        if not self._adj:
            raise GraphError("empty graph has no minimum degree")
        return min(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # CSR snapshot cache
    # ------------------------------------------------------------------

    def csr(self) -> "CsrGraph":
        """The CSR snapshot of the current adjacency (cached).

        The snapshot is rebuilt lazily after any mutation; read-only
        phases therefore share one flat-array copy no matter how many
        consumers ask. See :class:`repro.graph.CsrGraph`.
        """
        if self._csr is not None and self._csr_version == self._version:
            obs.count("graph.csr.reuses")
            return self._csr
        from repro.graph.csr import CsrGraph

        self._csr = CsrGraph.from_graph(self)
        self._csr_version = self._version
        return self._csr

    def csr_if_current(self) -> "CsrGraph | None":
        """The cached CSR snapshot if still valid, else ``None``.

        Unlike :meth:`csr` this never builds: hot paths use it so only
        graphs a caller deliberately primed take the flat-array route.
        """
        if self._csr is not None and self._csr_version == self._version:
            return self._csr
        return None

    def _prime_csr(self, snapshot: "CsrGraph") -> None:
        """Seed the CSR cache (used by ``CsrGraph.to_graph``)."""
        self._csr = snapshot
        self._csr_version = self._version

    # ------------------------------------------------------------------
    # Subgraphs and boundaries
    # ------------------------------------------------------------------

    def subgraph(self, vertices: Iterable[Hashable]) -> "Graph":
        """Return the subgraph induced by ``vertices`` (``G[S]``).

        Vertices not present in the graph raise :class:`GraphError` —
        silently dropping them would mask caller bugs.
        """
        keep = set(vertices)
        missing = [u for u in keep if u not in self._adj]
        if missing:
            raise GraphError(f"vertices not in graph: {missing[:5]!r}")
        sub = Graph()
        edge_count = 0
        for u in keep:
            inside = self._adj[u] & keep
            sub._adj[u] = inside
            edge_count += len(inside)
        sub._num_edges = edge_count // 2
        return sub

    def neighbors_in(self, u: Hashable, members: set) -> set:
        """``N(u) ∩ members`` — neighbours of ``u`` inside a vertex set."""
        return self.neighbors(u) & members

    def boundary(self, members: set) -> set:
        """``B(S)``: vertices of ``members`` with a neighbour outside it."""
        return {
            u for u in members if any(v not in members for v in self._adj[u])
        }

    def external_boundary(self, members: set) -> set:
        """``B(S̄)``: vertices *outside* ``members`` adjacent to it.

        This is the one-hop candidate ring that RME expands from.
        """
        ring: set = set()
        for u in members:
            ring.update(v for v in self._adj[u] if v not in members)
        return ring

    def neighborhood(self, seeds: Iterable[Hashable], hops: int) -> set:
        """``N^h(S)``: all vertices within ``hops`` of ``seeds`` (inclusive)."""
        if hops < 0:
            raise GraphError("hops must be non-negative")
        frontier = set(seeds)
        missing = [u for u in frontier if u not in self._adj]
        if missing:
            raise GraphError(f"vertices not in graph: {missing[:5]!r}")
        reached = set(frontier)
        for _ in range(hops):
            nxt: set = set()
            for u in frontier:
                nxt.update(v for v in self._adj[u] if v not in reached)
            if not nxt:
                break
            reached |= nxt
            frontier = nxt
        return reached

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __contains__(self, u: Hashable) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
