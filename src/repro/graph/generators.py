"""Seeded synthetic graph generators.

The paper evaluates on ten real graphs (SNAP / Network Repository) of up
to 59M vertices. Those downloads are unavailable here and pure Python
cannot chew graphs that large, so the benchmark datasets are synthetic
stand-ins built by these generators (see DESIGN.md §4 for the mapping).
Every generator takes an explicit ``seed`` and is fully deterministic.

The structural ingredients the evaluation needs, and who provides them:

* **k-vertex connected communities** — :func:`community_graph` builds
  each community as a *clique ring* (circulant of width k: every k+1
  consecutive vertices form a clique, vertex connectivity 2k ≥ k). Real
  collaboration/web graphs are triangle-rich like this; it is also what
  makes clique-based seeding and ring expansion meaningful.
* **UE-vs-ME separation** — ``periphery`` attaches mutually-supporting
  vertex pairs to a community: each pair vertex has only k-1 anchors
  into the community but the pair edge supplies the k-th disjoint path
  (paper Figure 2). Unitary Expansion stalls on them; Multiple/Ring
  Expansion absorbs them; the exact k-VCC includes them.
* **NBM-vs-FBM separation** — ``bridge_style="two_star"`` joins two
  communities with two (k-1)-leaf stars: ≥ k boundary neighbours on
  both sides (so Neighbor-Based Merging fires) but a vertex cut of size
  2 (so the union is *not* k-connected and Flow-Based Merging refuses;
  paper Figure 3).
* plain sparse bridges, fringes, noise, and heavy-tailed degrees for
  realistic surroundings.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = [
    "CommunitySpec",
    "attach_mixed_chains",
    "attach_support_pairs",
    "circulant_graph",
    "clique_graph",
    "community_graph",
    "mixed_community_graph",
    "nbm_trap_graph",
    "overlapping_cliques_graph",
    "planted_kvcc_graph",
    "powerlaw_cluster_graph",
    "random_gnm",
    "social_fringe_graph",
    "ue_trap_graph",
]

#: Community construction styles accepted by :func:`community_graph`.
_STYLES = ("clique_ring", "circulant")

#: Bridge construction styles accepted by :func:`community_graph`.
_BRIDGE_STYLES = ("random", "two_star")


def circulant_graph(n: int, width: int, offset: int = 0) -> Graph:
    """Circulant graph C_n(1..width): vertex i links to i±1 … i±width.

    Its vertex connectivity is exactly ``2 * width`` (for n > 2*width).
    With ``width = k`` every window of k+1 consecutive vertices is a
    clique — the "clique ring" community brick. Labels start at
    ``offset``.
    """
    if n < 3 or width < 1:
        raise ParameterError("need n >= 3 and width >= 1")
    if 2 * width >= n:
        return clique_graph(n, offset=offset)
    graph = Graph()
    for i in range(n):
        for j in range(1, width + 1):
            graph.add_edge(offset + i, offset + (i + j) % n)
    return graph


def clique_graph(n: int, offset: int = 0) -> Graph:
    """Complete graph K_n with labels ``offset … offset + n - 1``."""
    if n < 1:
        raise ParameterError("need n >= 1")
    graph = Graph()
    graph.add_vertex(offset)
    for i, j in itertools.combinations(range(n), 2):
        graph.add_edge(offset + i, offset + j)
    return graph


def random_gnm(n: int, m: int, seed: int) -> Graph:
    """Uniform random simple graph with ``n`` vertices and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ParameterError(f"m={m} exceeds max {max_edges} for n={n}")
    rng = random.Random(seed)
    graph = Graph()
    for i in range(n):
        graph.add_vertex(i)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph


def _merge_into(target: Graph, source: Graph) -> None:
    """Union ``source``'s vertices/edges into ``target`` in place."""
    for u in source.vertices():
        target.add_vertex(u)
    for u, v in source.edges():
        target.add_edge(u, v)


def attach_support_pairs(
    graph: Graph,
    targets: list,
    count: int,
    k: int,
    seed: int,
    label_start: int | None = None,
) -> list[int]:
    """Attach ``count`` mutually-supporting pairs to ``targets``.

    Each pair (a, b) gets the edge a–b plus k-1 anchors each into
    ``targets`` with disjoint anchor sets, so the pair extends a k-VCC
    containing the targets (paper Figure 2): Unitary Expansion cannot
    absorb either vertex alone, Multiple/Ring Expansion absorbs the
    pair jointly. Returns the new labels.
    """
    if k < 3:
        raise ParameterError("support pairs need k >= 3")
    if len(targets) < 2 * (k - 1):
        raise ParameterError("not enough targets for disjoint anchor sets")
    rng = random.Random(seed)
    label = graph.num_vertices if label_start is None else label_start
    added: list[int] = []
    for _ in range(count):
        a, b = label, label + 1
        label += 2
        graph.add_edge(a, b)
        anchors_a = rng.sample(targets, k - 1)
        anchors_b = rng.sample(
            [v for v in targets if v not in anchors_a], k - 1
        )
        for w in anchors_a:
            graph.add_edge(a, w)
        for w in anchors_b:
            graph.add_edge(b, w)
        added.extend((a, b))
    return added


def attach_mixed_chains(
    graph: Graph,
    targets: list,
    count: int,
    k: int,
    seed: int,
    label_start: int | None = None,
) -> list[int]:
    """Attach ``count`` three-vertex chains whose members span buckets.

    A chain u–v–t: u and t carry k-1 anchors into ``targets``, v only
    k-2 plus the two chain edges, all anchor sets disjoint. The trio is
    jointly k-connected with any k-VCC containing the targets, but the
    members land in *different* rings of the boundary classification —
    exact Multiple Expansion absorbs them, RME's same-bucket clique
    rule cannot, and Unitary Expansion cannot either. This is the
    structure behind the RIPPLE vs RIPPLE-ME gap (Table IV). Returns
    the new labels.
    """
    if k < 3:
        raise ParameterError("mixed chains need k >= 3")
    if len(targets) < 3 * k - 4:
        raise ParameterError("not enough targets for disjoint anchor sets")
    rng = random.Random(seed)
    label = graph.num_vertices if label_start is None else label_start
    added: list[int] = []
    for _ in range(count):
        u, v, t = label, label + 1, label + 2
        label += 3
        graph.add_edge(u, v)
        graph.add_edge(v, t)
        pool = list(targets)
        anchors_u = rng.sample(pool, k - 1)
        pool = [w for w in pool if w not in anchors_u]
        anchors_t = rng.sample(pool, k - 1)
        pool = [w for w in pool if w not in anchors_t]
        anchors_v = rng.sample(pool, k - 2)
        for w in anchors_u:
            graph.add_edge(u, w)
        for w in anchors_t:
            graph.add_edge(t, w)
        for w in anchors_v:
            graph.add_edge(v, w)
        added.extend((u, v, t))
    return added


def _build_community(
    graph: Graph,
    offset: int,
    size: int,
    k: int,
    style: str,
    periphery_pairs: int,
    mixed_chains: int,
    extra_edge_prob: float,
    clique_pockets: int,
    rng: random.Random,
) -> list[int]:
    """Add one community on labels [offset, offset + size) to ``graph``.

    Returns the community's *core* vertex labels (anchoring targets for
    bridges). The core is k-vertex connected by construction; with
    ``periphery_pairs`` > 0 the last ``2 * periphery_pairs`` labels are
    mutually-supporting pairs hanging off the core with k-1 anchors
    each, and the full community is still one k-VCC.
    """
    core_size = size - 2 * periphery_pairs - 3 * mixed_chains
    if core_size < max(k + 2, 3 * k - 4):
        raise ParameterError(
            f"community of size {size} with {periphery_pairs} peripheral "
            f"pairs and {mixed_chains} chains leaves a core of "
            f"{core_size} vertices; need at least {max(k + 2, 3 * k - 4)}"
        )
    width = k if style == "clique_ring" else (k + 1) // 2
    _merge_into(graph, circulant_graph(core_size, width, offset=offset))
    core = list(range(offset, offset + core_size))
    if clique_pockets > 0 and core_size > k + 1:
        # Densify evenly spaced windows of k+1 consecutive ring vertices
        # into cliques. On a minimal-width ring these pockets are the
        # only spots local heuristics can seed from — the partial-
        # coverage regime of the paper's hardest datasets.
        stride = max(1, core_size // clique_pockets)
        for pocket in range(clique_pockets):
            base = (pocket * stride) % core_size
            window = [
                offset + (base + j) % core_size for j in range(k + 1)
            ]
            for u, v in itertools.combinations(window, 2):
                graph.add_edge(u, v)
    chords = int(extra_edge_prob * core_size)
    for _ in range(chords):
        u, v = rng.sample(core, 2)
        graph.add_edge(u, v)
    label = offset + core_size
    if periphery_pairs:
        pairs = attach_support_pairs(
            graph, core, periphery_pairs, k,
            seed=rng.randrange(1 << 30), label_start=label,
        )
        label += len(pairs)
    if mixed_chains:
        attach_mixed_chains(
            graph, core, mixed_chains, k,
            seed=rng.randrange(1 << 30), label_start=label,
        )
    return core


def _add_random_bridge(
    graph: Graph,
    left_core: list[int],
    right_core: list[int],
    width: int,
    rng: random.Random,
) -> None:
    """Up to ``width`` random cross edges (duplicates collapse)."""
    for _ in range(width):
        graph.add_edge(rng.choice(left_core), rng.choice(right_core))


def _add_two_star_bridge(
    graph: Graph,
    left_core: list[int],
    right_core: list[int],
    k: int,
    rng: random.Random,
) -> None:
    """The NBM trap: two (k-1)-leaf stars crossing between communities.

    A left centre gets k-1 leaves on the right and a right centre gets
    k-1 leaves on the left, all six sets disjoint. Both sides then see
    ≥ k boundary neighbours (Neighbor-Based Merging fires) but {left
    centre, right centre} is a vertex cut of size 2 (the union is not
    k-connected; Flow-Based Merging refuses). Every cross endpoint has
    cross-degree ≤ k-1, so no expansion strategy can legally absorb a
    vertex across the bridge either.
    """
    left_centre = rng.choice(left_core)
    right_centre = rng.choice(right_core)
    right_leaves = rng.sample(
        [v for v in right_core if v != right_centre], k - 1
    )
    left_leaves = rng.sample(
        [v for v in left_core if v != left_centre], k - 1
    )
    for leaf in right_leaves:
        graph.add_edge(left_centre, leaf)
    for leaf in left_leaves:
        graph.add_edge(right_centre, leaf)


@dataclass(frozen=True)
class CommunitySpec:
    """Recipe for one planted community inside a mixed graph.

    ``k`` is the *build* connectivity: the core is a circulant of
    width k (``clique_ring`` style) or width ⌈k/2⌉ (``circulant``
    style), so the core stays one k'-VCC for every k' up to the core
    connectivity. Periphery pairs and mixed chains are anchored at
    exactly this k, which is where their expansion traps bite.
    """

    size: int
    k: int
    style: str = "clique_ring"
    periphery_pairs: int = 0
    mixed_chains: int = 0
    clique_pockets: int = 0
    extra_edge_prob: float = 0.1

    def validate(self) -> None:
        if self.k < 2:
            raise ParameterError(f"k must be >= 2, got {self.k}")
        if self.style not in _STYLES:
            raise ParameterError(
                f"style must be one of {_STYLES}, got {self.style!r}"
            )
        for field_name in ("periphery_pairs", "mixed_chains", "clique_pockets"):
            if getattr(self, field_name) < 0:
                raise ParameterError(f"{field_name} must be non-negative")
        if (self.mixed_chains or self.periphery_pairs) and self.k < 3:
            raise ParameterError("pairs and chains need k >= 3")


def mixed_community_graph(
    specs: list[CommunitySpec],
    seed: int,
    bridge_width: int = 1,
    bridge_style: str = "random",
) -> Graph:
    """Planted communities with per-community structure, sparsely bridged.

    The workhorse behind the benchmark datasets: each
    :class:`CommunitySpec` plants one community that is exactly one
    k-VCC at its own build ``k``; consecutive communities are joined by
    bridges that never reach cross connectivity min(k) — ``"random"``
    thin bridges or ``"two_star"`` NBM-trap bridges (paper Figure 3).

    Mixing build-k values is how a dataset keeps UE/RME expansion traps
    alive at *every* evaluated k: traps anchored at build k are
    transparent below it and gone above it.
    """
    if not specs:
        raise ParameterError("need at least one CommunitySpec")
    for spec in specs:
        spec.validate()
    if bridge_style not in _BRIDGE_STYLES:
        raise ParameterError(
            f"bridge_style must be one of {_BRIDGE_STYLES}, "
            f"got {bridge_style!r}"
        )
    min_k = min(spec.k for spec in specs)
    if bridge_width >= min_k:
        raise ParameterError("bridge_width must stay below every spec's k")
    if bridge_style == "two_star" and min_k < 3:
        raise ParameterError("two_star bridges need k >= 3")
    rng = random.Random(seed)
    graph = Graph()
    cores: list[list[int]] = []
    offset = 0
    for spec in specs:
        core = _build_community(
            graph, offset, spec.size, spec.k, spec.style,
            spec.periphery_pairs, spec.mixed_chains,
            spec.extra_edge_prob, spec.clique_pockets, rng,
        )
        cores.append(core)
        offset += spec.size
    for idx in range(len(specs) - 1):
        if bridge_style == "random":
            _add_random_bridge(
                graph, cores[idx], cores[idx + 1], bridge_width, rng
            )
        else:
            # The trap is built at the smaller of the two build-k
            # values so it keeps firing at every evaluated k below it.
            pair_k = min(specs[idx].k, specs[idx + 1].k)
            _add_two_star_bridge(
                graph, cores[idx], cores[idx + 1], pair_k, rng
            )
    return graph


def community_graph(
    sizes: list[int],
    k: int,
    seed: int,
    style: str = "clique_ring",
    extra_edge_prob: float = 0.1,
    bridge_width: int = 1,
    bridge_style: str = "random",
    periphery_pairs: int = 0,
    mixed_chains: int = 0,
    clique_pockets: int = 0,
) -> Graph:
    """Planted k-VCC communities chained by sparse bridges.

    Uniform-k convenience wrapper over :func:`mixed_community_graph`:
    each entry of ``sizes`` becomes one community that is exactly one
    k-VCC; consecutive communities are joined by a bridge that never
    raises the cross connectivity to k, so the communities stay
    distinct k-VCCs.

    ``style``: ``"clique_ring"`` (triangle-rich, realistic, friendly to
    clique seeding and ring expansion) or ``"circulant"`` (minimal
    width, clique-poor — the adversarial regime where every local
    heuristic struggles). ``bridge_style``: ``"random"`` thin bridges or
    ``"two_star"`` NBM-trap bridges.
    """
    specs = [
        CommunitySpec(
            size=size,
            k=k,
            style=style,
            periphery_pairs=periphery_pairs,
            mixed_chains=mixed_chains,
            clique_pockets=clique_pockets,
            extra_edge_prob=extra_edge_prob,
        )
        for size in sizes
    ]
    return mixed_community_graph(
        specs, seed, bridge_width=bridge_width, bridge_style=bridge_style
    )


def planted_kvcc_graph(
    num_communities: int,
    community_size: int,
    k: int,
    seed: int,
    style: str = "clique_ring",
    extra_edge_prob: float = 0.15,
    bridge_width: int = 1,
    bridge_style: str = "random",
    periphery_pairs: int = 0,
    noise_vertices: int = 0,
) -> Graph:
    """Equal-size planted k-VCC communities plus optional low-degree noise.

    ``noise_vertices`` fringe vertices attach to < k vertices of a
    *single* random community each, so they are pruned by the k-core
    and belong to no k-VCC — they exercise the pruning and
    seeding-fallback paths without adding cross-community connectivity.
    """
    graph = community_graph(
        [community_size] * num_communities,
        k,
        seed,
        style=style,
        extra_edge_prob=extra_edge_prob,
        bridge_width=bridge_width,
        bridge_style=bridge_style,
        periphery_pairs=periphery_pairs,
    )
    rng = random.Random(seed + 1)
    base = num_communities * community_size
    for i in range(noise_vertices):
        fringe = base + i
        home = rng.randrange(num_communities)
        population = list(
            range(home * community_size, (home + 1) * community_size)
        )
        attachments = rng.randint(1, max(1, k - 1))
        for target in rng.sample(population, attachments):
            graph.add_edge(fringe, target)
    return graph


def overlapping_cliques_graph(
    num_cliques: int,
    clique_size: int,
    overlap: int,
    seed: int,
    noise_edges: int = 0,
) -> Graph:
    """A chain of cliques where consecutive cliques share ``overlap`` vertices.

    Models collaboration networks (ca-CondMat / ca-dblp style): papers
    are cliques of their authors, and prolific authors sit in many
    cliques. With ``overlap >= k`` adjacent cliques fuse into one
    k-VCC; with ``overlap < k`` they stay separate.
    """
    if overlap >= clique_size:
        raise ParameterError("overlap must be smaller than clique_size")
    rng = random.Random(seed)
    graph = Graph()
    stride = clique_size - overlap
    for c in range(num_cliques):
        offset = c * stride
        _merge_into(graph, clique_graph(clique_size, offset=offset))
    n = graph.num_vertices
    for _ in range(noise_edges):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def social_fringe_graph(
    core_size: int,
    k: int,
    fringe: int,
    seed: int,
    extra_edge_prob: float = 0.2,
    periphery_pairs: int = 0,
) -> Graph:
    """One giant k-vertex connected core with a large sparse fringe.

    Models socfb-konect: a single dominant k-VCC plus many low-degree
    vertices — the regime where maintaining one huge seed dominates
    memory and thin tendrils trip naive merging.
    """
    graph = community_graph(
        [core_size],
        k,
        seed,
        extra_edge_prob=extra_edge_prob,
        periphery_pairs=periphery_pairs,
    )
    rng = random.Random(seed + 7)
    next_label = core_size
    anchors = list(range(core_size - 2 * periphery_pairs))
    for _ in range(fringe):
        # Short tendrils: chains of 1–3 vertices hanging off the core.
        chain = rng.randint(1, 3)
        prev = rng.choice(anchors)
        for _ in range(chain):
            graph.add_edge(prev, next_label)
            prev = next_label
            next_label += 1
    return graph


def powerlaw_cluster_graph(
    n: int, attach: int, triangle_prob: float, seed: int
) -> Graph:
    """Holme–Kim style scale-free graph with tunable clustering.

    Grows by preferential attachment of ``attach`` edges per new vertex;
    each attachment is followed with probability ``triangle_prob`` by a
    triad-closing edge. Produces heavy-tailed degrees with dense
    pockets, the cit-patent style regime.
    """
    if attach < 1 or n <= attach:
        raise ParameterError("need n > attach >= 1")
    rng = random.Random(seed)
    graph = clique_graph(attach + 1)
    # Repeated-endpoint list implements preferential attachment.
    repeated: list[int] = []
    for u in graph.vertices():
        repeated.extend([u] * graph.degree(u))
    for new in range(attach + 1, n):
        graph.add_vertex(new)
        targets: set[int] = set()
        while len(targets) < attach:
            candidate = rng.choice(repeated)
            if candidate == new or candidate in targets:
                continue
            targets.add(candidate)
            graph.add_edge(new, candidate)
            repeated.extend((new, candidate))
            if rng.random() < triangle_prob:
                closing = [
                    w
                    for w in graph.neighbors(candidate)
                    if w != new and not graph.has_edge(new, w)
                ]
                if closing:
                    w = rng.choice(closing)
                    graph.add_edge(new, w)
                    repeated.extend((new, w))
    return graph


def ue_trap_graph(k: int, tail: int, seed: int = 0) -> Graph:
    """A seed community plus a chain of mutually supporting vertex pairs.

    Reproduces Figure 2 of the paper at any scale: a k-vertex connected
    core is followed by ``tail`` pairs ``(a_i, b_i)`` where each vertex
    has only k-1 neighbours in the current component but the pair
    together has ≥ k — Unitary Expansion is stuck at the core while
    Multiple Expansion absorbs the whole chain. The true k-VCC is the
    entire graph.
    """
    if k < 3:
        raise ParameterError("the trap needs k >= 3")
    core_size = 2 * k
    graph = circulant_graph(core_size, (k + 1) // 2)
    rng = random.Random(seed)
    frontier = list(range(core_size))
    next_label = core_size
    for _ in range(tail):
        a, b = next_label, next_label + 1
        next_label += 2
        graph.add_edge(a, b)
        # Each of a, b gets k-1 anchors; disjoint anchor sets keep the
        # pair's k vertex-disjoint paths intact.
        anchors_a = rng.sample(frontier, k - 1)
        anchors_b = rng.sample(
            [w for w in frontier if w not in anchors_a], k - 1
        )
        for w in anchors_a:
            graph.add_edge(a, w)
        for w in anchors_b:
            graph.add_edge(b, w)
        frontier.extend((a, b))
    return graph


def nbm_trap_graph(k: int, seed: int = 0) -> Graph:
    """Two k-VCCs joined so Neighbor-Based Merging wrongly fuses them.

    Reproduces Figure 3: the two-star cross pattern puts ≥ k boundary
    neighbours on each side (NBM's count reaches k) while the actual
    cross connectivity is 2 (the two star centres form a cut). The
    communities are clique rings, so seeding and expansion recover each
    side — the merge decision is the only thing under test.
    """
    if k < 3:
        raise ParameterError("the trap needs k >= 3")
    size = 3 * k
    return community_graph(
        [size, size],
        k,
        seed,
        style="clique_ring",
        bridge_style="two_star",
    )
