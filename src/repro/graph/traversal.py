"""Graph traversal primitives: BFS, DFS, connected components.

These run on :class:`repro.graph.Graph` and are shared by k-core pruning,
seeding, and the top-down partitioning baseline.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.errors import GraphError
from repro.graph.adjacency import Graph

__all__ = [
    "bfs_order",
    "bfs_tree_edges",
    "connected_components",
    "is_connected",
    "component_of",
    "shortest_path_lengths",
]


def bfs_order(graph: Graph, source: Hashable) -> list:
    """Vertices reachable from ``source`` in BFS visitation order."""
    if not graph.has_vertex(source):
        raise GraphError(f"source {source!r} not in graph")
    order = [source]
    seen = {source}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def bfs_tree_edges(
    graph: Graph, source: Hashable, forbidden_edges: set | None = None
) -> list[tuple[Hashable, Hashable]]:
    """Edges of a BFS tree rooted at ``source``.

    ``forbidden_edges`` is a set of frozensets of endpoints that the
    traversal must not use; this is what the Nagamochi–Ibaraki style
    k-round BFS forest construction needs.
    """
    if not graph.has_vertex(source):
        raise GraphError(f"source {source!r} not in graph")
    forbidden = forbidden_edges or set()
    tree: list[tuple[Hashable, Hashable]] = []
    seen = {source}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in seen or frozenset((u, v)) in forbidden:
                continue
            seen.add(v)
            tree.append((u, v))
            queue.append(v)
    return tree


def connected_components(graph: Graph) -> list[set]:
    """All connected components as vertex sets, largest-first order not guaranteed."""
    components: list[set] = []
    seen: set = set()
    for start in graph.vertices():
        if start in seen:
            continue
        comp = {start}
        queue = deque((start,))
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in comp:
                    comp.add(v)
                    queue.append(v)
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected. The empty graph counts as connected."""
    if graph.num_vertices == 0:
        return True
    first = next(iter(graph.vertices()))
    return len(bfs_order(graph, first)) == graph.num_vertices


def component_of(graph: Graph, vertex: Hashable) -> set:
    """The vertex set of the connected component containing ``vertex``."""
    return set(bfs_order(graph, vertex))


def shortest_path_lengths(graph: Graph, source: Hashable) -> dict:
    """Unweighted shortest-path length from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise GraphError(f"source {source!r} not in graph")
    dist = {source: 0}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist
