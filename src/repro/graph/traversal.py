"""Graph traversal primitives: BFS, DFS, connected components.

These run on :class:`repro.graph.Graph` and are shared by k-core pruning,
seeding, and the top-down partitioning baseline.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.errors import GraphError
from repro.graph.adjacency import Graph

__all__ = [
    "bfs_order",
    "bfs_tree_edges",
    "connected_components",
    "is_connected",
    "component_of",
    "shortest_path_lengths",
]


def bfs_order(graph: Graph, source: Hashable) -> list:
    """Vertices reachable from ``source`` in BFS visitation order."""
    if not graph.has_vertex(source):
        raise GraphError(f"source {source!r} not in graph")
    order = [source]
    seen = {source}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def bfs_tree_edges(
    graph: Graph, source: Hashable, forbidden_edges: set | None = None
) -> list[tuple[Hashable, Hashable]]:
    """Edges of a BFS tree rooted at ``source``.

    ``forbidden_edges`` is a set of frozensets of endpoints that the
    traversal must not use; this is what the Nagamochi–Ibaraki style
    k-round BFS forest construction needs.
    """
    if not graph.has_vertex(source):
        raise GraphError(f"source {source!r} not in graph")
    used_adj: dict = {}
    for edge in forbidden_edges or ():
        u, v = edge
        used_adj.setdefault(u, set()).add(v)
        used_adj.setdefault(v, set()).add(u)
    return _bfs_tree_edges_avoiding(graph, source, used_adj)


def _bfs_tree_edges_avoiding(
    graph: Graph, source: Hashable, used_adj: dict
) -> list[tuple[Hashable, Hashable]]:
    """:func:`bfs_tree_edges` with forbidden edges as a dict of sets.

    ``used_adj`` maps a vertex to the set of neighbours it must not
    reach directly. The k-round forest construction keeps this
    structure incrementally (:mod:`repro.graph.forests`), turning the
    per-scanned-edge frozenset construction of the public API into one
    set-membership probe. Traversal order is identical.
    """
    tree: list[tuple[Hashable, Hashable]] = []
    seen = {source}
    queue = deque((source,))
    # Private-dict subscript instead of the ``neighbors()`` accessor:
    # every dequeued vertex pays this lookup, and each round of the
    # k-round construction dequeues the whole graph.
    neighbors = graph._adj.__getitem__
    get_used = used_adj.get
    seen_add = seen.add
    tree_append = tree.append
    queue_append = queue.append
    while queue:
        u = queue.popleft()
        blocked = get_used(u)
        # Round 1 of the k-round construction (and any vertex with no
        # forbidden incident edges) skips the blocked probe entirely —
        # the scan touches every graph edge, so one membership test per
        # edge is measurable. Traversal order is unchanged.
        if blocked:
            for v in neighbors(u):
                if v in seen or v in blocked:
                    continue
                seen_add(v)
                tree_append((u, v))
                queue_append(v)
        else:
            for v in neighbors(u):
                if v in seen:
                    continue
                seen_add(v)
                tree_append((u, v))
                queue_append(v)
    return tree


def connected_components(graph: Graph) -> list[set]:
    """All connected components as vertex sets, largest-first order not guaranteed."""
    components: list[set] = []
    seen: set = set()
    for start in graph.vertices():
        if start in seen:
            continue
        comp = {start}
        queue = deque((start,))
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in comp:
                    comp.add(v)
                    queue.append(v)
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected. The empty graph counts as connected."""
    if graph.num_vertices == 0:
        return True
    first = next(iter(graph.vertices()))
    return len(bfs_order(graph, first)) == graph.num_vertices


def component_of(graph: Graph, vertex: Hashable) -> set:
    """The vertex set of the connected component containing ``vertex``."""
    return set(bfs_order(graph, vertex))


def shortest_path_lengths(graph: Graph, source: Hashable) -> dict:
    """Unweighted shortest-path length from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise GraphError(f"source {source!r} not in graph")
    dist = {source: 0}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist
