"""k-core decomposition by iterative peeling.

RIPPLE (Algorithm 5, line 2) prunes the input to its k-core before any
seeding: every vertex of a k-VCC has degree ≥ k inside the component, so
vertices outside the k-core can never belong to one. The peeling also
yields core numbers and graph degeneracy, which the Bron–Kerbosch
degeneracy ordering reuses.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["k_core", "core_numbers", "degeneracy", "degeneracy_ordering"]


def k_core(graph: Graph, k: int) -> Graph:
    """Return the maximal subgraph in which every vertex has degree ≥ k.

    The result may be empty or disconnected. Runs in O(n + m).
    """
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    degree = {u: graph.degree(u) for u in graph.vertices()}
    queue = deque(u for u, d in degree.items() if d < k)
    removed: set = set(queue)
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in removed:
                continue
            degree[v] -= 1
            if degree[v] < k:
                removed.add(v)
                queue.append(v)
    return graph.subgraph(graph.vertex_set() - removed)


def core_numbers(graph: Graph) -> dict:
    """Core number of every vertex (the largest k whose k-core contains it).

    Standard Batagelj–Zaveršnik bucket peeling, O(n + m).
    """
    degree = {u: graph.degree(u) for u in graph.vertices()}
    if not degree:
        return {}
    max_degree = max(degree.values())
    buckets: list[set] = [set() for _ in range(max_degree + 1)]
    for u, d in degree.items():
        buckets[d].add(u)
    core: dict = {}
    current = 0
    remaining = dict(degree)
    for _ in range(len(degree)):
        while not buckets[current]:
            current += 1
        # A vertex of minimum remaining degree is peeled at core level
        # max(current, its own degree floor) — ``current`` never decreases
        # past a previously assigned core value.
        u = buckets[current].pop()
        core[u] = current
        for v in graph.neighbors(u):
            if v in core:
                continue
            d = remaining[v]
            if d > current:
                buckets[d].remove(v)
                buckets[d - 1].add(v)
                remaining[v] = d - 1
    return core


def degeneracy(graph: Graph) -> int:
    """Graph degeneracy: the maximum core number (0 for the empty graph)."""
    numbers = core_numbers(graph)
    return max(numbers.values()) if numbers else 0


def degeneracy_ordering(graph: Graph) -> list:
    """Vertices in degeneracy (min-degree peeling) order.

    Used by Bron–Kerbosch: iterating outer vertices in this order bounds
    each candidate set by the degeneracy, giving the
    O(d · n · 3^(d/3)) clique enumeration bound.
    """
    degree = {u: graph.degree(u) for u in graph.vertices()}
    if not degree:
        return []
    max_degree = max(degree.values())
    buckets: list[set] = [set() for _ in range(max_degree + 1)]
    for u, d in degree.items():
        buckets[d].add(u)
    order: list[Hashable] = []
    placed: set = set()
    current = 0
    remaining = dict(degree)
    for _ in range(len(degree)):
        while not buckets[current]:
            current += 1
        u = buckets[current].pop()
        order.append(u)
        placed.add(u)
        for v in graph.neighbors(u):
            if v in placed:
                continue
            d = remaining[v]
            buckets[d].remove(v)
            buckets[d - 1].add(v)
            remaining[v] = d - 1
        # Removing u can only lower a neighbour's degree by one, so the
        # new minimum is at least current - 1.
        if current > 0:
            current -= 1
    return order
