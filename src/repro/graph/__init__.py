"""Graph substrate: adjacency-set graphs and the algorithms on them.

Everything the k-VCC pipelines need from a graph library — traversal,
k-core peeling, BFS forests, maximal cliques, generators, and IO — is
implemented here from scratch for speed on CPython.
"""

from repro.graph.adjacency import Graph
from repro.graph.cliques import (
    max_clique_size,
    maximal_cliques,
    maximal_cliques_at_least,
)
from repro.graph.csr import CsrGraph
from repro.graph.forests import (
    bfs_forest,
    k_bfs_forests,
    k_bfs_seed_components,
    sparse_certificate,
)
from repro.graph.generators import (
    CommunitySpec,
    attach_mixed_chains,
    attach_support_pairs,
    circulant_graph,
    clique_graph,
    community_graph,
    mixed_community_graph,
    nbm_trap_graph,
    overlapping_cliques_graph,
    planted_kvcc_graph,
    powerlaw_cluster_graph,
    random_gnm,
    social_fringe_graph,
    ue_trap_graph,
)
from repro.graph.io import parse_edge_list, read_edge_list, write_edge_list
from repro.graph.kcore import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
)
from repro.graph.stats import (
    average_clustering,
    degree_histogram,
    density,
    triangle_count,
)
from repro.graph.traversal import (
    bfs_order,
    bfs_tree_edges,
    component_of,
    connected_components,
    is_connected,
    shortest_path_lengths,
)

__all__ = [
    "CommunitySpec",
    "CsrGraph",
    "Graph",
    "attach_mixed_chains",
    "attach_support_pairs",
    "average_clustering",
    "bfs_forest",
    "bfs_order",
    "bfs_tree_edges",
    "circulant_graph",
    "clique_graph",
    "community_graph",
    "component_of",
    "connected_components",
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "degree_histogram",
    "density",
    "is_connected",
    "k_bfs_forests",
    "k_bfs_seed_components",
    "k_core",
    "max_clique_size",
    "maximal_cliques",
    "maximal_cliques_at_least",
    "mixed_community_graph",
    "nbm_trap_graph",
    "overlapping_cliques_graph",
    "parse_edge_list",
    "planted_kvcc_graph",
    "powerlaw_cluster_graph",
    "random_gnm",
    "read_edge_list",
    "shortest_path_lengths",
    "social_fringe_graph",
    "sparse_certificate",
    "triangle_count",
    "ue_trap_graph",
    "write_edge_list",
]
