"""Maximal clique enumeration (Bron–Kerbosch) for seeding and RME.

Two entry points:

* :func:`maximal_cliques` — all maximal cliques of a graph, Bron–Kerbosch
  with Tomita pivoting over a degeneracy-ordered outer loop (the
  Eppstein–Strash scheme the paper cites, O(d · n · 3^(d/3))).
* :func:`maximal_cliques_at_least` — only maximal cliques of at least a
  given size, with subtree pruning (branches where ``|R| + |P|`` cannot
  reach the threshold are cut). QkVCS uses this with ``min_size = k + 1``
  (a (k+1)-clique is k-vertex connected); RME uses it inside candidate
  rings with ``min_size = k - r + 1``.

The recursion depth equals the size of the clique being grown, which is
bounded by the largest clique in the graph — far below CPython's
recursion limit for any graph this library targets.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.kcore import degeneracy_ordering

__all__ = ["maximal_cliques", "maximal_cliques_at_least", "max_clique_size"]


def _expand(
    graph: Graph,
    clique: list,
    candidates: set,
    excluded: set,
    min_size: int,
) -> Iterator[frozenset]:
    """Bron–Kerbosch with Tomita pivoting and min-size pruning."""
    if not candidates and not excluded:
        if len(clique) >= min_size:
            yield frozenset(clique)
        return
    if len(clique) + len(candidates) < min_size:
        return
    # Tomita pivot: vertex of P ∪ X with the most neighbours in P, which
    # minimises the number of branches explored below this frame.
    pivot = max(
        candidates | excluded,
        key=lambda u: len(graph.neighbors(u) & candidates),
    )
    for v in list(candidates - graph.neighbors(pivot)):
        nbrs = graph.neighbors(v)
        clique.append(v)
        yield from _expand(
            graph, clique, candidates & nbrs, excluded & nbrs, min_size
        )
        clique.pop()
        candidates.discard(v)
        excluded.add(v)


def maximal_cliques(graph: Graph) -> Iterator[frozenset]:
    """Enumerate every maximal clique of ``graph`` exactly once."""
    yield from maximal_cliques_at_least(graph, 1)


def maximal_cliques_at_least(
    graph: Graph, min_size: int
) -> Iterator[frozenset]:
    """Enumerate maximal cliques with at least ``min_size`` vertices.

    The outer loop walks a degeneracy ordering (Eppstein–Strash), so each
    root call has a candidate set no larger than the graph degeneracy.
    """
    if min_size < 1:
        raise ParameterError(f"min_size must be >= 1, got {min_size}")
    order = degeneracy_ordering(graph)
    position = {u: i for i, u in enumerate(order)}
    for u in order:
        nbrs = graph.neighbors(u)
        later = {v for v in nbrs if position[v] > position[u]}
        earlier = set(nbrs) - later
        if 1 + len(later) < min_size:
            continue
        yield from _expand(graph, [u], later, earlier, min_size)


def cliques_from_roots(
    graph: Graph,
    min_size: int,
    position: dict,
    roots: list,
) -> Iterator[frozenset]:
    """Maximal cliques rooted at the given degeneracy-order positions.

    The parallel seeding stage splits the outer loop of
    :func:`maximal_cliques_at_least` across workers: each worker calls
    this with its slice of ``roots`` and the shared ``position`` map
    (vertex → index in one fixed degeneracy ordering). The union over
    all slices equals the sequential enumeration, with no duplicates
    across slices.
    """
    if min_size < 1:
        raise ParameterError(f"min_size must be >= 1, got {min_size}")
    for u in roots:
        nbrs = graph.neighbors(u)
        later = {v for v in nbrs if position[v] > position[u]}
        earlier = set(nbrs) - later
        if 1 + len(later) < min_size:
            continue
        yield from _expand(graph, [u], later, earlier, min_size)


def max_clique_size(graph: Graph) -> int:
    """Size of the largest clique (0 for the empty graph).

    Repeatedly raises the pruning threshold, so it is usually much
    faster than enumerating all maximal cliques.
    """
    best = 0
    lower = 1
    while True:
        found = next(iter(maximal_cliques_at_least(graph, lower)), None)
        if found is None:
            return best
        best = max(best, len(found))
        lower = best + 1
