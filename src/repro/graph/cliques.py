"""Maximal clique enumeration (Bron–Kerbosch) for seeding and RME.

Two entry points:

* :func:`maximal_cliques` — all maximal cliques of a graph, Bron–Kerbosch
  with Tomita pivoting over a degeneracy-ordered outer loop (the
  Eppstein–Strash scheme the paper cites, O(d · n · 3^(d/3))).
* :func:`maximal_cliques_at_least` — only maximal cliques of at least a
  given size, with subtree pruning (branches where ``|R| + |P|`` cannot
  reach the threshold are cut). QkVCS uses this with ``min_size = k + 1``
  (a (k+1)-clique is k-vertex connected); RME uses it inside candidate
  rings with ``min_size = k - r + 1``.

The recursion depth equals the size of the clique being grown, which is
bounded by the largest clique in the graph — far below CPython's
recursion limit for any graph this library targets.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.kcore import degeneracy_ordering

__all__ = [
    "collect_cliques_at_least",
    "maximal_cliques",
    "maximal_cliques_at_least",
    "max_clique_size",
]


def _expand(
    graph: Graph,
    clique: list,
    candidates: set,
    excluded: set,
    min_size: int,
    out: list,
) -> None:
    """Bron–Kerbosch with Tomita pivoting and min-size pruning.

    Appends maximal cliques to ``out`` eagerly (in DFS discovery
    order) instead of yielding them: the recursion runs tens of
    thousands of frames per enumeration, and a generator chain pays a
    generator object per frame plus a ``yield from`` hop per clique
    per level. The public entry points remain lazy per outer root.
    """
    if not candidates and not excluded:
        if len(clique) >= min_size:
            out.append(frozenset(clique))
        return
    if len(clique) + len(candidates) < min_size:
        return
    # Tomita pivot: vertex of P ∪ X with the most neighbours in P, which
    # minimises the number of branches explored below this frame. The
    # explicit strict-improvement loop keeps ``max``'s first-wins
    # tie-break over the same union-set iteration order while avoiding
    # a key-lambda call per element. Adjacency is read straight off the
    # graph's private dict: this loop is the single hottest call site
    # in seeding and the ``neighbors()`` accessor costs a Python frame
    # per probe.
    adj = graph._adj
    limit = len(candidates)
    best = -1
    pivot = None
    for u in candidates | excluded:
        score = len(adj[u] & candidates)
        if score > best:
            best = score
            pivot = u
            if score == limit:
                # Perfect pivot (adjacent to all of P): no later vertex
                # can strictly beat it, so first-wins is already fixed.
                break
    # The branch set is a fresh temporary, so mutating ``candidates``
    # and ``excluded`` mid-loop cannot disturb the iteration.
    for v in candidates - adj[pivot]:
        nbrs = adj[v]
        new_candidates = candidates & nbrs
        # Resolve would-be leaf frames inline (in the same DFS emission
        # order the recursive call would produce): an empty candidate
        # set can only yield the current clique itself, and a branch
        # whose ceiling is below min_size yields nothing — most frames
        # of the recursion are one of these two.
        if not new_candidates:
            if len(clique) + 1 >= min_size and excluded.isdisjoint(nbrs):
                out.append(frozenset((*clique, v)))
        elif len(clique) + 1 + len(new_candidates) >= min_size:
            clique.append(v)
            _expand(
                graph, clique, new_candidates, excluded & nbrs,
                min_size, out,
            )
            clique.pop()
        candidates.discard(v)
        excluded.add(v)


def maximal_cliques(graph: Graph) -> Iterator[frozenset]:
    """Enumerate every maximal clique of ``graph`` exactly once."""
    yield from maximal_cliques_at_least(graph, 1)


def maximal_cliques_at_least(
    graph: Graph, min_size: int
) -> Iterator[frozenset]:
    """Enumerate maximal cliques with at least ``min_size`` vertices.

    The outer loop walks a degeneracy ordering (Eppstein–Strash), so each
    root call has a candidate set no larger than the graph degeneracy.
    """
    if min_size < 1:
        raise ParameterError(f"min_size must be >= 1, got {min_size}")
    order = degeneracy_ordering(graph)
    position = {u: i for i, u in enumerate(order)}
    for u in order:
        nbrs = graph.neighbors(u)
        pu = position[u]
        later = {v for v in nbrs if position[v] > pu}
        earlier = set(nbrs) - later
        if 1 + len(later) < min_size:
            continue
        found: list = []
        _expand(graph, [u], later, earlier, min_size, found)
        yield from found


def collect_cliques_at_least(graph: Graph, min_size: int) -> list[frozenset]:
    """Eager form of :func:`maximal_cliques_at_least`.

    Returns the same cliques in the same order as the generator, but
    appends every root's findings into one list — full-enumeration
    consumers (seeding, RME rings) drain the generator anyway, and the
    per-clique resumption cost is measurable there. Early-exit callers
    (:func:`max_clique_size`) should keep the lazy form.
    """
    if min_size < 1:
        raise ParameterError(f"min_size must be >= 1, got {min_size}")
    order = degeneracy_ordering(graph)
    position = {u: i for i, u in enumerate(order)}
    adj = graph._adj
    found: list = []
    for u in order:
        nbrs = adj[u]
        pu = position[u]
        later = {v for v in nbrs if position[v] > pu}
        if 1 + len(later) < min_size:
            continue
        _expand(graph, [u], later, set(nbrs) - later, min_size, found)
    return found


def cliques_from_roots(
    graph: Graph,
    min_size: int,
    position: dict,
    roots: list,
) -> Iterator[frozenset]:
    """Maximal cliques rooted at the given degeneracy-order positions.

    The parallel seeding stage splits the outer loop of
    :func:`maximal_cliques_at_least` across workers: each worker calls
    this with its slice of ``roots`` and the shared ``position`` map
    (vertex → index in one fixed degeneracy ordering). The union over
    all slices equals the sequential enumeration, with no duplicates
    across slices.
    """
    if min_size < 1:
        raise ParameterError(f"min_size must be >= 1, got {min_size}")
    for u in roots:
        nbrs = graph.neighbors(u)
        pu = position[u]
        later = {v for v in nbrs if position[v] > pu}
        earlier = set(nbrs) - later
        if 1 + len(later) < min_size:
            continue
        found: list = []
        _expand(graph, [u], later, earlier, min_size, found)
        yield from found


def max_clique_size(graph: Graph) -> int:
    """Size of the largest clique (0 for the empty graph).

    Repeatedly raises the pruning threshold, so it is usually much
    faster than enumerating all maximal cliques.
    """
    best = 0
    lower = 1
    while True:
        found = next(iter(maximal_cliques_at_least(graph, lower)), None)
        if found is None:
            return best
        best = max(best, len(found))
        lower = best + 1
