"""Compressed-sparse-row graph snapshot: the flat-array substrate.

:class:`repro.graph.Graph` stores adjacency as ``dict[label, set]``,
which is the right shape for mutation and for algorithms keyed on
labels — but the flow-heavy inner loops (vertex-split network
construction, merge-candidate discovery) pay a Python object per
neighbour visited. :class:`CsrGraph` is the read-only companion: the
same graph densely renumbered to ``0 … n-1`` and packed into two
``array('q')`` buffers::

    indptr   : n+1 offsets        indices : m*2 neighbour ids
    ┌───┬───┬───┬─────┬───┐       ┌─────────┬───────┬─────────┐
    │ 0 │ d0│...│Σd   │ 2m│       │ row 0   │ row 1 │ ...     │
    └───┴───┴───┴─────┴───┘       └─────────┴───────┴─────────┘
    row i = indices[indptr[i] : indptr[i+1]], sorted ascending

Identifiers are assigned in **sorted label order** (``repr`` as the
tie-break when the label set has no natural order, mirroring
:class:`repro.flow.network.VertexSplitNetwork`), so for a naturally
ordered label set the sorted ids of any subset correspond 1:1 to the
sorted labels of that subset — the property that lets the network
builder reproduce its deterministic arc layout straight from CSR rows.
:attr:`natural_order` records whether that property holds.

Subgraphs are expressed as an **int8 alive-mask** (a ``bytearray``,
one byte per id) instead of copy-and-remove: ``masked_*`` queries skip
dead ids in place, so shrinking a scope costs one byte store per
removed vertex rather than an O(scope) rebuild.

Instances are immutable snapshots: :meth:`Graph.csr` caches one per
adjacency version and invalidates on mutation (see
``docs/performance.md``).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Hashable, Iterable, Iterator

from repro import obs
from repro.errors import GraphError

__all__ = ["CsrGraph"]


class CsrGraph:
    """An immutable CSR snapshot of an undirected simple graph.

    Attributes
    ----------
    n / num_edges:
        Vertex and edge counts.
    labels:
        Vertex labels in id order (``labels[i]`` is the label of id i).
    index:
        The interning table, label → id.
    indptr / indices:
        The offset and neighbour ``array('q')`` buffers; row ``i`` is
        ``indices[indptr[i]:indptr[i+1]]``, sorted ascending.
    natural_order:
        True when the full label set sorted without ``TypeError`` —
        the precondition for id-order shortcuts (see module docstring).
    """

    __slots__ = (
        "n",
        "num_edges",
        "labels",
        "index",
        "indptr",
        "indices",
        "natural_order",
        "_rows",
    )

    def __init__(
        self,
        labels: list,
        indptr: array,
        indices: array,
        natural_order: bool,
    ) -> None:
        self.labels = labels
        self.index: dict[Hashable, int] = {
            u: i for i, u in enumerate(labels)
        }
        self.indptr = indptr
        self.indices = indices
        self.natural_order = natural_order
        self.n = len(labels)
        self.num_edges = len(indices) // 2
        self._rows: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @staticmethod
    def _sorted_labels(labels: Iterable[Hashable]) -> tuple[list, bool]:
        """Labels in id-assignment order plus the natural-order flag."""
        ordered = list(labels)
        try:
            ordered.sort()
            return ordered, True
        except TypeError:
            ordered.sort(key=repr)
            return ordered, False

    @classmethod
    def from_graph(cls, graph) -> "CsrGraph":
        """Snapshot a :class:`repro.graph.Graph` (or anything with
        ``vertices()`` / ``neighbors()``)."""
        obs.count("graph.csr.builds")
        labels, natural = cls._sorted_labels(graph.vertices())
        index = {u: i for i, u in enumerate(labels)}
        indptr = array("q", [0])
        indices = array("q")
        extend = indices.extend
        cut = indptr.append
        total = 0
        neighbors = graph.neighbors
        getter = index.__getitem__
        for u in labels:
            row = sorted(map(getter, neighbors(u)))
            extend(row)
            total += len(row)
            cut(total)
        return cls(labels, indptr, indices, natural)

    @classmethod
    def from_edge_stream(
        cls, edges: Iterable[tuple[Hashable, Hashable]]
    ) -> "CsrGraph":
        """Build directly from an edge iterable — no dict graph in between.

        Self-loops are dropped and duplicate edges (either orientation)
        collapse, so a raw SNAP-style stream can be fed in as-is. The
        stream is consumed once; the deduplicated pair list is the only
        per-edge state held.
        """
        obs.count("graph.csr.stream_builds")
        seen: set = set()
        pairs: list = []
        vertices: set = set()
        loops = 0
        duplicates = 0
        for u, v in edges:
            if u == v:
                loops += 1
                vertices.add(u)
                continue
            try:
                key = (u, v) if u <= v else (v, u)
            except TypeError:
                key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key in seen:
                duplicates += 1
                continue
            seen.add(key)
            pairs.append(key)
            vertices.add(u)
            vertices.add(v)
        if loops:
            obs.count("graph.csr.stream_selfloops_dropped", loops)
        if duplicates:
            obs.count("graph.csr.stream_duplicates_dropped", duplicates)
        labels, natural = cls._sorted_labels(vertices)
        index = {u: i for i, u in enumerate(labels)}
        n = len(labels)
        degree = array("q", bytes(8 * n))
        for u, v in pairs:
            degree[index[u]] += 1
            degree[index[v]] += 1
        indptr = array("q", bytes(8 * (n + 1)))
        total = 0
        for i in range(n):
            indptr[i] = total
            total += degree[i]
        indptr[n] = total
        indices = array("q", bytes(8 * total))
        cursor = list(indptr[:n])
        for u, v in pairs:
            iu, iv = index[u], index[v]
            indices[cursor[iu]] = iv
            cursor[iu] += 1
            indices[cursor[iv]] = iu
            cursor[iv] += 1
        for i in range(n):
            start, stop = indptr[i], indptr[i + 1]
            if stop - start > 1:
                indices[start:stop] = array(
                    "q", sorted(indices[start:stop])
                )
        return cls(labels, indptr, indices, natural)

    def to_graph(self):
        """Densify back to a :class:`repro.graph.Graph`.

        The returned graph carries this snapshot as its pre-seeded CSR
        cache, so a loader → pipeline round trip does not rebuild it.
        """
        from repro.graph.adjacency import Graph

        graph = Graph()
        labels, indptr, indices = self.labels, self.indptr, self.indices
        adj = graph._adj
        for i, u in enumerate(labels):
            adj[u] = {
                labels[j] for j in indices[indptr[i] : indptr[i + 1]]
            }
        graph._num_edges = self.num_edges
        graph._prime_csr(self)
        return graph

    # ------------------------------------------------------------------
    # Id-level queries
    # ------------------------------------------------------------------

    def id_of(self, label: Hashable) -> int:
        """The dense id of ``label`` (raises :class:`GraphError` if absent)."""
        try:
            return self.index[label]
        except KeyError as exc:
            raise GraphError(f"vertex {label!r} does not exist") from exc

    def label_of(self, i: int) -> Hashable:
        """The label of id ``i``."""
        return self.labels[i]

    def degree(self, i: int) -> int:
        """``d(i)`` — row length of id ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors_ids(self, i: int) -> memoryview:
        """Row ``i`` as a zero-copy int64 view, sorted ascending."""
        return memoryview(self.indices)[self.indptr[i] : self.indptr[i + 1]]

    def neighbors_view(self) -> memoryview:
        """One int64 view over the whole neighbour buffer.

        Hot loops slice this once per vertex
        (``view[indptr[i]:indptr[i+1]]``) instead of paying a fresh
        ``memoryview`` construction per row.
        """
        return memoryview(self.indices)

    def rows_list(self) -> list[list[int]]:
        """Every row as a plain ``list[int]``, cached on the snapshot.

        The merge-candidate scan and the network builder walk rows
        element by element, where iterating a Python list of already
        boxed ints beats slicing ``array('q')`` (one unbox per element)
        by a wide margin. Materialised lazily on first use — loaders
        and one-shot queries never pay for it — and immutable like the
        snapshot itself.
        """
        rows = self._rows
        if rows is None:
            flat = self.indices.tolist()
            indptr = self.indptr
            rows = self._rows = [
                flat[indptr[i] : indptr[i + 1]] for i in range(self.n)
            ]
        return rows

    def has_edge_ids(self, i: int, j: int) -> bool:
        """Whether ids ``i`` and ``j`` are adjacent (bisect on the
        shorter row)."""
        indptr = self.indptr
        if indptr[i + 1] - indptr[i] > indptr[j + 1] - indptr[j]:
            i, j = j, i
        start, stop = indptr[i], indptr[i + 1]
        at = bisect_left(self.indices, j, start, stop)
        return at < stop and self.indices[at] == j

    def has_edge_labels(self, u: Hashable, v: Hashable) -> bool:
        """Whether labels ``u`` and ``v`` are adjacent."""
        return self.has_edge_ids(self.id_of(u), self.id_of(v))

    def ids(self) -> Iterator[int]:
        """All ids, ascending."""
        return iter(range(self.n))

    # ------------------------------------------------------------------
    # Masked (alive-subset) queries
    # ------------------------------------------------------------------

    def alive_mask(self, alive_ids: Iterable[int] | None = None) -> bytearray:
        """An int8 mask, one byte per id — 1 alive, 0 dead.

        With ``alive_ids`` given, only those ids start alive; the
        default mask has every vertex alive. Killing a vertex later is
        ``mask[i] = 0`` — no copies, no adjacency rebuild.
        """
        if alive_ids is None:
            return bytearray(b"\x01" * self.n)
        mask = bytearray(self.n)
        for i in alive_ids:
            mask[i] = 1
        return mask

    def masked_neighbors_ids(self, i: int, mask: bytearray) -> list[int]:
        """Alive neighbours of id ``i`` under ``mask``, ascending."""
        return [
            j
            for j in self.indices[self.indptr[i] : self.indptr[i + 1]]
            if mask[j]
        ]

    def masked_degree(self, i: int, mask: bytearray) -> int:
        """Alive-neighbour count of id ``i`` under ``mask``."""
        count = 0
        for j in self.indices[self.indptr[i] : self.indptr[i + 1]]:
            count += mask[j]
        return count

    def masked_neighborhood(
        self, seed_ids: Iterable[int], hops: int, mask: bytearray
    ) -> set[int]:
        """``N^h(seed_ids)`` restricted to alive ids (seeds included).

        The masked equivalent of :meth:`Graph.neighborhood`: dead ids
        neither join the result nor relay the expansion.
        """
        if hops < 0:
            raise GraphError("hops must be non-negative")
        indptr, indices = self.indptr, self.indices
        frontier = {i for i in seed_ids if mask[i]}
        reached = set(frontier)
        for _ in range(hops):
            nxt: set[int] = set()
            for i in frontier:
                for j in indices[indptr[i] : indptr[i + 1]]:
                    if mask[j] and j not in reached:
                        nxt.add(j)
            if not nxt:
                break
            reached |= nxt
            frontier = nxt
        return reached

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __contains__(self, label: Hashable) -> bool:
        return label in self.index

    def __repr__(self) -> str:
        return (
            f"CsrGraph(n={self.n}, m={self.num_edges}, "
            f"natural_order={self.natural_order})"
        )
