"""A fault-tolerant wrapper around the parallel worker pool.

:class:`SupervisedPool` sits between the RIPPLE orchestrator and a
``concurrent.futures`` executor and turns worker failures from run
aborts into recoverable events:

* every task is dispatched with a per-task timeout and bounded retries;
* a ``BrokenProcessPool`` (worker OOM-killed, segfaulted, ``os._exit``)
  rebuilds the pool and re-dispatches the in-flight work;
* a timed-out task on the process backend also rebuilds the pool, which
  is the only way to reclaim a worker stuck in a runaway flow call;
* malformed task results (caught by per-stage validators) count as
  failures and are retried like crashes;
* a task that exhausts its retries runs in-process instead, and after
  ``degrade_after`` consecutive failures the pool degrades to
  in-process sequential execution of all remaining tasks — the run
  completes with identical results, just without parallelism.

Results are returned in submission order, so supervised execution is a
drop-in replacement for ``pool.map`` and cannot change what the
pipeline computes. Recovery events are counted on the ambient
:mod:`repro.obs` collector under ``resilience.*`` (see
``docs/robustness.md`` for the catalogue), and deterministic fault
injection (:class:`~repro.resilience.faults.FaultPlan`) arms crashes,
hangs, and garbage on chosen dispatches so every path above is
exercised by the tier-1 suite.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, CancelledError, Executor
from concurrent.futures import TimeoutError as PoolTimeout

from repro import obs
from repro.errors import ParameterError
from repro.resilience.faults import GARBAGE, FaultInjected, FaultPlan

__all__ = ["SupervisedPool", "SupervisionConfig"]


class SupervisionConfig:
    """Tunables for :class:`SupervisedPool`.

    ``task_timeout``
        Seconds to wait for one task before declaring it hung
        (``None`` disables the timeout).
    ``max_retries``
        Failed pool dispatches allowed per task beyond the first; a
        task failing ``max_retries + 1`` times runs in-process instead.
    ``degrade_after``
        Consecutive task failures (across tasks, reset by any pool
        success) after which the pool degrades to in-process
        sequential execution for the rest of the run.
    ``fault_plan``
        A :class:`FaultPlan` for deterministic fault injection;
        ``None`` reads ``REPRO_FAULT`` from the environment.
    """

    def __init__(
        self,
        task_timeout: float | None = None,
        max_retries: int = 2,
        degrade_after: int = 4,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if task_timeout is not None and task_timeout <= 0:
            raise ParameterError(
                f"task_timeout must be > 0 or None, got {task_timeout}"
            )
        if max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if degrade_after < 1:
            raise ParameterError(
                f"degrade_after must be >= 1, got {degrade_after}"
            )
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.degrade_after = degrade_after
        self.fault_plan = fault_plan


class _Job:
    """One task's identity across dispatch attempts."""

    __slots__ = ("slot", "payload", "index", "attempts")

    def __init__(self, slot: int, payload, index: int) -> None:
        self.slot = slot
        self.payload = payload
        self.index = index  # stable per-stage task number (fault target)
        self.attempts = 0  # failed pool dispatches so far


def _supervised_call(fn, payload, fault=None, hang_seconds=0.0):
    """Worker-side entry point: apply an armed fault, then run the task."""
    if fault == "crash":
        # Simulates an OOM kill / segfault: the worker dies without
        # cleanup and the parent sees BrokenProcessPool.
        os._exit(66)
    if fault == "raise":
        raise FaultInjected("injected worker failure")
    if fault == "garbage":
        return GARBAGE
    if fault == "hang":
        time.sleep(hang_seconds)
    return fn(payload)


class SupervisedPool:
    """Dispatch tasks with timeouts, retries, rebuilds, and degradation.

    Parameters
    ----------
    make_pool:
        Factory for a fresh executor (called initially and after every
        rebuild).
    install_local:
        Installs the worker globals in *this* process, enabling
        in-process fallback execution of task functions that normally
        run behind a pool initializer.
    backend:
        ``"process"`` or ``"thread"`` — decides whether a crash fault
        can really kill a worker and whether a rebuild can reclaim a
        hung one.
    """

    def __init__(
        self,
        make_pool: Callable[[], Executor],
        install_local: Callable[[], None],
        backend: str,
        supervision: SupervisionConfig | None = None,
    ) -> None:
        self._make_pool = make_pool
        self._install_local = install_local
        self._backend = backend
        self._supervision = supervision or SupervisionConfig()
        self._plan = (
            self._supervision.fault_plan
            if self._supervision.fault_plan is not None
            else FaultPlan.from_env()
        )
        self._pool: Executor | None = None
        self._degraded = False
        self._local_ready = backend == "thread"
        self._consecutive_failures = 0
        self._stage_counters: dict[str, int] = {}

    # -- public surface ------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the pool has fallen back to sequential execution."""
        return self._degraded

    def run(
        self,
        stage: str,
        fn: Callable,
        payloads: Sequence,
        validate: Callable[[object], bool] | None = None,
    ) -> list:
        """Run ``fn`` over ``payloads``; results in submission order.

        ``stage`` names the dispatch site for fault targeting and
        diagnostics; ``validate`` (result → bool) catches garbage
        results and converts them into retries.
        """
        results: list = [None] * len(payloads)
        pending = [
            _Job(slot, payload, self._next_index(stage))
            for slot, payload in enumerate(payloads)
        ]
        while pending:
            if self._degraded:
                for job in pending:
                    results[job.slot] = self._run_local(fn, job)
                break
            pending = self._run_wave(stage, fn, pending, results, validate)
        return results

    def close(self) -> None:
        """Release the underlying executor (idempotent)."""
        self._teardown_pool()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- one wave of dispatches ----------------------------------------

    def _run_wave(
        self,
        stage: str,
        fn: Callable,
        jobs: list[_Job],
        results: list,
        validate: Callable[[object], bool] | None,
    ) -> list[_Job]:
        """Submit every job once; return the jobs that need another wave."""
        pool = self._ensure_pool()
        submitted = []
        unsubmitted: list[_Job] = []
        rebuilt = False  # this wave's pool break has been repaired ...
        charged = False  # ... and billed to the job presumed to blame
        for position, job in enumerate(jobs):
            fault = self._arm(stage, job)
            hang = self._plan.hang_seconds if self._plan else 0.0
            try:
                future = pool.submit(
                    _supervised_call, fn, job.payload, fault, hang
                )
            except BrokenExecutor:
                # A crashed worker is detected asynchronously, so the
                # pool can break while the wave is still being
                # submitted. Rebuild now and requeue the rest of the
                # wave; the in-flight futures settle below.
                self._rebuild_pool()
                rebuilt = True
                unsubmitted = jobs[position:]
                break
            if job.attempts:
                obs.count("resilience.retries")
                # Retries surface as sibling event spans under the
                # dispatching stage span (see docs/robustness.md).
                obs.span_event(
                    "resilience.retry",
                    stage=stage,
                    index=job.index,
                    attempt=job.attempts,
                )
            submitted.append((job, future))
        retry: list[_Job] = []
        abandoned = False
        for job, future in submitted:
            if abandoned and not future.done():
                # The pool these futures belong to was torn down (hung
                # worker) — don't block on them; requeue as collateral.
                future.cancel()
                self._settle_failure(
                    stage, job, fn, retry, results, collateral=True
                )
                continue
            try:
                value = future.result(timeout=self._supervision.task_timeout)
            except (BrokenExecutor, CancelledError):
                # One rebuild per wave; the first broken future pays
                # for the failure, the rest of the wave died with the
                # pool through no fault of its own. (CancelledError:
                # our own teardown cancelled the future.)
                if not rebuilt:
                    self._rebuild_pool()
                    rebuilt = True
                collateral = abandoned or charged
                charged = charged or not collateral
                self._settle_failure(
                    stage, job, fn, retry, results, collateral=collateral
                )
                abandoned = True
            except PoolTimeout:
                obs.count("resilience.task_timeouts")
                obs.span_event(
                    "resilience.timeout", stage=stage, index=job.index
                )
                self._settle_failure(stage, job, fn, retry, results)
                if self._backend == "process" and not self._degraded:
                    # Rebuilding is the only way to reclaim a stuck
                    # process; sibling futures become collateral.
                    self._rebuild_pool()
                    rebuilt = True
                    abandoned = True
            except Exception:
                self._settle_failure(stage, job, fn, retry, results)
            else:
                if validate is not None and not validate(value):
                    obs.count("resilience.invalid_results")
                    self._settle_failure(stage, job, fn, retry, results)
                else:
                    self._consecutive_failures = 0
                    results[job.slot] = value
        if unsubmitted and not submitted:
            # The pool broke before any job went out, so no future can
            # pay for the failure; charge the first job to guarantee
            # progress toward degradation if the breakage persists.
            self._settle_failure(stage, unsubmitted[0], fn, retry, results)
            unsubmitted = unsubmitted[1:]
        for job in unsubmitted:
            self._settle_failure(
                stage, job, fn, retry, results, collateral=True
            )
        return retry

    def _settle_failure(
        self,
        stage: str,
        job: _Job,
        fn: Callable,
        retry: list[_Job],
        results: list,
        collateral: bool = False,
    ) -> None:
        """Route one failed dispatch: retry, run locally, or degrade.

        ``collateral`` marks jobs that died only because the pool was
        torn down around them — they are requeued without being charged
        an attempt, so one bad task cannot bill its whole wave.
        """
        if not collateral:
            job.attempts += 1
            self._consecutive_failures += 1
            obs.count("resilience.task_failures")
            if (
                self._consecutive_failures >= self._supervision.degrade_after
                and not self._degraded
            ):
                self._degrade()
        if self._degraded:
            retry.append(job)  # drained locally by the outer loop
        elif job.attempts > self._supervision.max_retries:
            obs.count("resilience.local_fallback_tasks")
            obs.span_event(
                "resilience.local_fallback",
                stage=stage,
                index=job.index,
                attempts=job.attempts,
            )
            results[job.slot] = self._run_local(fn, job)
        else:
            retry.append(job)

    # -- fault arming --------------------------------------------------

    def _arm(self, stage: str, job: _Job) -> str | None:
        if self._plan is None:
            return None
        fault = self._plan.draw(stage, job.index)
        if fault is None:
            return None
        if fault == "crash" and self._backend != "process":
            # A thread cannot take the process down without taking the
            # orchestrator with it; the nearest thread-world failure is
            # an abrupt exception.
            fault = "raise"
        obs.count("resilience.faults_injected")
        obs.trace_event(
            "resilience.fault", stage=stage, index=job.index, mode=fault
        )
        return fault

    def _next_index(self, stage: str) -> int:
        index = self._stage_counters.get(stage, 0)
        self._stage_counters[stage] = index + 1
        return index

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _rebuild_pool(self) -> None:
        obs.count("resilience.pool_rebuilds")
        obs.trace_event("resilience.pool_rebuild", backend=self._backend)
        obs.span_event("resilience.pool_rebuild", backend=self._backend)
        self._teardown_pool()
        self._pool = self._make_pool()

    def _teardown_pool(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        # A hung or crashed worker can wedge a clean shutdown: kill
        # worker processes first, then release without waiting.
        processes = getattr(pool, "_processes", None)
        if processes:
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except (OSError, ValueError):  # pragma: no cover - racy
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass

    # -- degraded / local execution ------------------------------------

    def _degrade(self) -> None:
        self._degraded = True
        obs.count("resilience.degraded")
        obs.trace_event(
            "resilience.degraded",
            consecutive_failures=self._consecutive_failures,
        )
        obs.span_event(
            "resilience.degraded",
            consecutive_failures=self._consecutive_failures,
        )
        self._teardown_pool()

    def _run_local(self, fn: Callable, job: _Job) -> object:
        """Execute a task in-process (no faults, no timeout — the floor)."""
        if not self._local_ready:
            self._install_local()
            self._local_ready = True
        return fn(job.payload)
