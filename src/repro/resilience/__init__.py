"""Supervised execution: deadlines, fault injection, pool recovery.

The reliability layer the parallel pipeline runs on (see
``docs/robustness.md``):

* :class:`Deadline` — a cooperative run-wide wall-clock budget, checked
  at stage boundaries; expiry yields a partial result, not an abort;
* :class:`SupervisedPool` / :class:`SupervisionConfig` — per-task
  timeouts, bounded retries, ``BrokenProcessPool`` recovery, and
  graceful degradation to in-process execution;
* :class:`FaultPlan` / ``REPRO_FAULT`` — deterministic fault injection
  so every recovery path above is exercised by tests.
"""

from repro.resilience.deadline import Deadline, as_deadline
from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
)
from repro.resilience.supervisor import SupervisedPool, SupervisionConfig

__all__ = [
    "Deadline",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "SupervisedPool",
    "SupervisionConfig",
    "as_deadline",
]
