"""Run-wide wall-clock budgets checked at stage boundaries.

A :class:`Deadline` is *cooperative*: nothing is killed when it
expires. The pipeline drivers (:func:`repro.core.bottom_up_pipeline`,
:func:`repro.parallel.parallel_ripple`) and the bench harness poll it
at stage boundaries — after the k-core cut, after seeding, and after
every merge/expand half-round — and stop cleanly at the first expired
check, returning a partial :class:`~repro.core.result.VCCResult` whose
``status`` is ``"deadline"`` and whose ``checkpoint`` carries the
component pool for resumption (``resume_from=``).

The clock is injectable so tests can expire a deadline after an exact
number of boundary checks instead of racing real time.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.errors import ParameterError

__all__ = ["Deadline", "as_deadline"]


class Deadline:
    """A wall-clock budget starting at construction time.

    ``seconds=None`` means unlimited: :meth:`expired` is always false
    and :meth:`remaining` returns ``None``.

    >>> Deadline(None).expired()
    False
    >>> Deadline(0).expired()
    True
    """

    __slots__ = ("_clock", "_limit", "_start")

    def __init__(
        self,
        seconds: float | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ParameterError(
                f"deadline seconds must be >= 0 or None, got {seconds}"
            )
        self._clock = clock
        self._limit = None if seconds is None else float(seconds)
        self._start = clock()

    @classmethod
    def unlimited(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    @property
    def limit(self) -> float | None:
        """The budget in seconds (``None`` when unlimited)."""
        return self._limit

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._start

    def remaining(self) -> float | None:
        """Seconds left in the budget (clamped at 0; ``None`` if unlimited)."""
        if self._limit is None:
            return None
        return max(0.0, self._limit - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._limit is not None and self.elapsed() >= self._limit

    def clamp(self, timeout: float | None) -> float | None:
        """Combine a per-task timeout with the remaining budget.

        Returns the smaller of ``timeout`` and :meth:`remaining`
        (``None`` means unbounded on both sides).
        """
        remaining = self.remaining()
        if remaining is None:
            return timeout
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._limit is None:
            return "Deadline(unlimited)"
        return f"Deadline({self._limit}s, {self.elapsed():.3f}s elapsed)"


def as_deadline(value: "Deadline | float | None") -> Deadline:
    """Coerce an API argument into a :class:`Deadline`.

    Accepts an existing deadline (returned as-is, so one budget can be
    shared across several calls), a number of seconds, or ``None`` for
    unlimited.
    """
    if isinstance(value, Deadline):
        return value
    if value is None:
        return Deadline(None)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Deadline(float(value))
    raise ParameterError(
        f"deadline must be a Deadline, seconds, or None, got {value!r}"
    )
