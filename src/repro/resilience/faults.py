"""Deterministic fault injection for the supervised worker pool.

Every recovery path in :mod:`repro.resilience.supervisor` is exercised
in tier-1 tests instead of trusted, by *arming* faults on specific
dispatches. A :class:`FaultPlan` is a list of :class:`FaultSpec`
entries, each matching a named stage (``"expansion"``, ``"merging"``,
``"seeding.cliques"``, ``"seeding.lkvcs"`` — or ``"*"``) and a task
index within that stage (or ``"*"`` for any). The orchestrator draws
from the plan *at dispatch time*, so the bookkeeping is single-threaded
and deterministic: a spec with ``times=1`` faults exactly the first
matching dispatch and the retry runs clean.

Fault modes:

``crash``
    The worker process dies hard (``os._exit``), producing a
    ``BrokenProcessPool``. Under the thread backend (where killing the
    process would kill the suite) it degrades to ``raise``.
``raise``
    The task raises :class:`FaultInjected`.
``hang``
    The task sleeps for ``hang_seconds`` before answering, tripping the
    per-task timeout.
``garbage``
    The task returns a malformed payload, tripping result validation.

The plan can come from the environment::

    REPRO_FAULT="expansion:0:crash" ripple enumerate g.txt -k 4 \
        --algorithm parallel-ripple

The spec grammar is ``stage:index:mode[:times]``, comma-separated;
``times`` defaults to 1 and ``*`` means every matching dispatch.
``REPRO_FAULT_HANG_SECONDS`` tunes the hang duration (default 30).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "ENV_FAULT",
    "ENV_HANG_SECONDS",
    "FAULT_MODES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
]

ENV_FAULT = "REPRO_FAULT"
ENV_HANG_SECONDS = "REPRO_FAULT_HANG_SECONDS"

FAULT_MODES = ("crash", "raise", "hang", "garbage")

#: Sentinel returned by a ``garbage`` fault — anything that fails the
#: stage's result validation would do; a bare string is maximally wrong.
GARBAGE = "__repro_fault_garbage__"

#: How many times ``times="*"`` is stored internally (effectively
#: unlimited for any realistic run).
UNLIMITED = -1


class FaultSpecError(ReproError):
    """Raised when a ``REPRO_FAULT`` spec string cannot be parsed."""


class FaultInjected(ReproError):
    """The error raised inside a worker by a ``raise`` (or thread-mode
    ``crash``) fault. Deriving from :class:`ReproError` keeps it out of
    the "unexpected exception" bucket in logs, but the supervisor treats
    it exactly like any other task failure."""


@dataclass
class FaultSpec:
    """One armed fault: which dispatches it hits and how it misbehaves."""

    stage: str
    index: int | None  # None matches any task index
    mode: str
    times: int = 1  # UNLIMITED (-1) means every matching dispatch
    fired: int = field(default=0, compare=False)

    def matches(self, stage: str, index: int) -> bool:
        if self.times != UNLIMITED and self.fired >= self.times:
            return False
        if self.stage != "*" and self.stage != stage:
            return False
        return self.index is None or self.index == index

    def describe(self) -> str:
        index = "*" if self.index is None else str(self.index)
        times = "*" if self.times == UNLIMITED else str(self.times)
        return f"{self.stage}:{index}:{self.mode}:{times}"


class FaultPlan:
    """A deterministic schedule of faults, drawn down at dispatch time."""

    def __init__(
        self,
        specs: list[FaultSpec] | None = None,
        *,
        hang_seconds: float = 30.0,
    ) -> None:
        self.specs = list(specs or [])
        self.hang_seconds = float(hang_seconds)

    @classmethod
    def parse(
        cls, text: str, *, hang_seconds: float = 30.0
    ) -> "FaultPlan":
        """Parse a comma-separated ``stage:index:mode[:times]`` string."""
        specs = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            specs.append(cls._parse_spec(chunk))
        return cls(specs, hang_seconds=hang_seconds)

    @staticmethod
    def _parse_spec(chunk: str) -> FaultSpec:
        parts = chunk.split(":")
        if len(parts) not in (3, 4):
            raise FaultSpecError(
                f"bad fault spec {chunk!r}: expected stage:index:mode[:times]"
            )
        stage, index_text, mode = parts[0], parts[1], parts[2]
        if not stage:
            raise FaultSpecError(f"bad fault spec {chunk!r}: empty stage")
        if mode not in FAULT_MODES:
            raise FaultSpecError(
                f"bad fault spec {chunk!r}: mode must be one of "
                f"{', '.join(FAULT_MODES)}"
            )
        if index_text == "*":
            index: int | None = None
        else:
            try:
                index = int(index_text)
            except ValueError:
                raise FaultSpecError(
                    f"bad fault spec {chunk!r}: index must be an int or '*'"
                ) from None
            if index < 0:
                raise FaultSpecError(
                    f"bad fault spec {chunk!r}: index must be >= 0"
                )
        times = 1
        if len(parts) == 4:
            if parts[3] == "*":
                times = UNLIMITED
            else:
                try:
                    times = int(parts[3])
                except ValueError:
                    raise FaultSpecError(
                        f"bad fault spec {chunk!r}: times must be an int or '*'"
                    ) from None
                if times < 1:
                    raise FaultSpecError(
                        f"bad fault spec {chunk!r}: times must be >= 1"
                    )
        return FaultSpec(stage=stage, index=index, mode=mode, times=times)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """Build a plan from ``REPRO_FAULT``, or ``None`` when unset."""
        environ = os.environ if environ is None else environ
        text = environ.get(ENV_FAULT, "").strip()
        if not text:
            return None
        hang_text = environ.get(ENV_HANG_SECONDS, "").strip()
        try:
            hang_seconds = float(hang_text) if hang_text else 30.0
        except ValueError:
            raise FaultSpecError(
                f"bad {ENV_HANG_SECONDS} value {hang_text!r}: not a number"
            ) from None
        return cls.parse(text, hang_seconds=hang_seconds)

    def draw(self, stage: str, index: int) -> str | None:
        """The fault mode armed for this dispatch, consuming one firing.

        Deterministic: specs are consulted in declaration order and each
        spec fires at most ``times`` dispatches.
        """
        for spec in self.specs:
            if spec.matches(stage, index):
                spec.fired += 1
                return spec.mode
        return None

    def outstanding(self) -> list[FaultSpec]:
        """Specs that still have firings left (useful in test asserts)."""
        return [
            spec
            for spec in self.specs
            if spec.times == UNLIMITED or spec.fired < spec.times
        ]

    def is_empty(self) -> bool:
        return not self.specs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ",".join(spec.describe() for spec in self.specs)
        return f"FaultPlan({body!r})"
