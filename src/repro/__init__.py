"""RIPPLE: bottom-up k-vertex connected component enumeration.

A from-scratch reproduction of "Bottom-up k-Vertex Connected Component
Enumeration by Multiple Expansion" (Liu, Wang, Xu, Li — ICDE 2024):
the RIPPLE pipeline (QkVCS seeding + Flow-Based Merging + Ring-based
Multiple Expansion), the exact Multiple Expansion it approximates, the
VCCE-TD and VCCE-BU baselines it is evaluated against, and every graph
and max-flow substrate they rest on.

Quickstart::

    from repro import Graph, ripple

    graph = Graph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3), (1, 3),
                              (2, 3)])
    result = ripple(graph, k=3)
    print(result.summary())

See :mod:`repro.core` for the algorithms, :mod:`repro.graph` and
:mod:`repro.flow` for the substrates, :mod:`repro.datasets` for the
benchmark graphs, and :mod:`repro.bench` for the experiment harness.
"""

from repro.core import (
    ComponentReport,
    PhaseTimer,
    VCCResult,
    bottom_up_pipeline,
    kvcc_containing,
    kvcc_hierarchy,
    max_kvcc_level,
    membership_levels,
    ripple,
    ripple_me,
    vcce_bu,
    vcce_hybrid,
    vcce_td,
    verify_component,
    verify_result,
)
from repro.errors import (
    GraphError,
    GraphFormatError,
    ParameterError,
    ParseError,
    ReproError,
)
from repro.flow import (
    global_vertex_connectivity,
    is_k_vertex_connected,
    local_connectivity,
)
from repro.graph import Graph, read_edge_list, write_edge_list
from repro.metrics import accuracy_report, f_same, j_index
from repro.parallel import ParallelConfig, parallel_ripple
from repro.resilience import Deadline, FaultPlan, SupervisionConfig
from repro.serving import KvccIndex, QueryEngine

__version__ = "1.0.0"

__all__ = [
    "ComponentReport",
    "Deadline",
    "FaultPlan",
    "Graph",
    "GraphError",
    "GraphFormatError",
    "KvccIndex",
    "ParallelConfig",
    "ParameterError",
    "ParseError",
    "PhaseTimer",
    "QueryEngine",
    "ReproError",
    "SupervisionConfig",
    "VCCResult",
    "accuracy_report",
    "bottom_up_pipeline",
    "f_same",
    "global_vertex_connectivity",
    "is_k_vertex_connected",
    "j_index",
    "kvcc_containing",
    "kvcc_hierarchy",
    "local_connectivity",
    "max_kvcc_level",
    "membership_levels",
    "parallel_ripple",
    "read_edge_list",
    "ripple",
    "ripple_me",
    "vcce_bu",
    "vcce_hybrid",
    "vcce_td",
    "verify_component",
    "verify_result",
    "write_edge_list",
    "__version__",
]
