"""Tests for F_same and J_Index accuracy metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import accuracy_report, f_same, j_index


class TestFSame:
    def test_identical_results(self):
        comps = [{1, 2, 3}, {4, 5, 6}]
        assert f_same(comps, comps) == 1.0

    def test_both_empty(self):
        assert f_same([], []) == 1.0

    def test_one_empty(self):
        assert f_same([], [{1, 2}]) == 0.0
        assert f_same([{1, 2}], []) == 0.0

    def test_disjoint_results(self):
        assert f_same([{1, 2}], [{3, 4}]) == 0.0

    def test_partial_detection(self):
        # Detected half of the single true community.
        truth = [set(range(10))]
        detected = [set(range(5))]
        # raw = .5*5 + .5*5 = 5; perfect = .5*5 + .5*10 = 7.5
        assert f_same(detected, truth) == pytest.approx(5 / 7.5)

    def test_fragmentation_penalised(self):
        truth = [set(range(10))]
        shattered = [set(range(0, 5)), set(range(5, 10))]
        merged = [set(range(10))]
        assert f_same(shattered, truth) < f_same(merged, truth)

    def test_symmetric(self):
        a = [{1, 2, 3}, {4, 5}]
        b = [{1, 2}, {3, 4, 5}]
        assert f_same(a, b) == pytest.approx(f_same(b, a))


class TestJIndex:
    def test_identical(self):
        comps = [{1, 2, 3}]
        assert j_index(comps, comps) == 1.0

    def test_no_pairs_anywhere(self):
        assert j_index([], []) == 1.0
        assert j_index([{1}], [{2}]) == 1.0  # singletons have no pairs

    def test_disjoint(self):
        assert j_index([{1, 2}], [{3, 4}]) == 0.0

    def test_overmerge_penalised_quadratically(self):
        # Fusing two 10-communities creates 100 false pairs: J craters.
        truth = [set(range(10)), set(range(10, 20))]
        merged = [set(range(20))]
        value = j_index(merged, truth)
        true_pairs = 2 * (10 * 9 // 2)
        all_pairs = 20 * 19 // 2
        assert value == pytest.approx(true_pairs / all_pairs)
        assert value < 0.5

    def test_missing_community_undetected(self):
        # The documented blind spot: J cannot see missing communities
        # if the detected one is perfect... but missing pairs do count.
        truth = [{1, 2, 3}, {4, 5, 6}]
        detected = [{1, 2, 3}]
        assert j_index(detected, truth) == pytest.approx(3 / 6)

    def test_overlapping_components_pairs_counted_once(self):
        detected = [{1, 2, 3}, {2, 3, 4}]
        truth = [{1, 2, 3, 4}]
        # detected pairs: {12,13,23,24,34} (23 counted once) = 5 of 6
        assert j_index(detected, truth) == pytest.approx(5 / 6)


class TestReportAndProperties:
    def test_report_keys_percent(self):
        report = accuracy_report([{1, 2}], [{1, 2}])
        assert report == {"F_same": 100.0, "J_Index": 100.0}

    @given(
        st.lists(
            st.sets(st.integers(min_value=0, max_value=20), min_size=2),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_metrics_bounded_and_reflexive(self, comps):
        assert f_same(comps, comps) == pytest.approx(1.0)
        assert j_index(comps, comps) == pytest.approx(1.0)
        other = [{99, 100}]
        for metric in (f_same, j_index):
            value = metric(comps, other)
            assert 0.0 <= value <= 1.0
