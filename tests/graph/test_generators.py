"""Tests for the synthetic graph generators."""

import pytest

from repro.errors import ParameterError
from repro.flow import global_vertex_connectivity, is_k_vertex_connected
from repro.graph import (
    circulant_graph,
    clique_graph,
    community_graph,
    is_connected,
    k_core,
    nbm_trap_graph,
    overlapping_cliques_graph,
    planted_kvcc_graph,
    powerlaw_cluster_graph,
    random_gnm,
    social_fringe_graph,
    ue_trap_graph,
)


class TestBasicGenerators:
    def test_circulant_connectivity(self):
        g = circulant_graph(12, 2)
        assert global_vertex_connectivity(g) == 4

    def test_circulant_degenerates_to_clique(self):
        g = circulant_graph(5, 3)
        assert g.num_edges == 10  # K5

    def test_circulant_offset(self):
        g = circulant_graph(6, 1, offset=100)
        assert min(g.vertices()) == 100

    def test_circulant_validation(self):
        with pytest.raises(ParameterError):
            circulant_graph(2, 1)

    def test_clique(self):
        g = clique_graph(6)
        assert g.num_edges == 15
        assert is_k_vertex_connected(g, 5)

    def test_random_gnm_counts(self):
        g = random_gnm(30, 55, seed=0)
        assert g.num_vertices == 30
        assert g.num_edges == 55

    def test_random_gnm_deterministic(self):
        assert random_gnm(20, 30, seed=7) == random_gnm(20, 30, seed=7)

    def test_random_gnm_overfull_raises(self):
        with pytest.raises(ParameterError):
            random_gnm(4, 7, seed=0)


class TestCommunityGraphs:
    def test_each_community_is_k_connected(self):
        k = 4
        sizes = [10, 12]
        g = community_graph(sizes, k, seed=1)
        assert is_k_vertex_connected(g.subgraph(set(range(10))), k)
        assert is_k_vertex_connected(g.subgraph(set(range(10, 22))), k)

    def test_bridges_keep_communities_separate(self):
        g = community_graph([10, 10], k=4, seed=2, bridge_width=2)
        assert is_connected(g)
        assert not is_k_vertex_connected(g, 4)

    def test_bridge_width_validation(self):
        with pytest.raises(ParameterError):
            community_graph([10, 10], k=3, seed=0, bridge_width=3)

    def test_too_small_community_rejected(self):
        with pytest.raises(ParameterError):
            community_graph([4], k=5, seed=0)

    def test_planted_noise_pruned_by_kcore(self):
        k = 3
        g = planted_kvcc_graph(
            2, 10, k, seed=3, noise_vertices=6, bridge_width=1
        )
        core = k_core(g, k)
        assert core.vertex_set() == set(range(20))


class TestDomainGenerators:
    def test_overlapping_cliques(self):
        g = overlapping_cliques_graph(4, 6, overlap=2, seed=0)
        # stride 4, so n = 4 + 4*4 - 2... = last clique offset 12 + 6
        assert g.num_vertices == 18
        # every clique of size 6 is 5-connected on its own
        assert is_k_vertex_connected(g.subgraph(set(range(6))), 5)

    def test_overlap_validation(self):
        with pytest.raises(ParameterError):
            overlapping_cliques_graph(3, 4, overlap=4, seed=0)

    def test_social_fringe(self):
        g = social_fringe_graph(core_size=12, k=4, fringe=10, seed=1)
        core = k_core(g, 4)
        assert core.vertex_set() == set(range(12))
        assert g.num_vertices > 12 + 9  # tendrils added

    def test_powerlaw_cluster(self):
        g = powerlaw_cluster_graph(80, attach=3, triangle_prob=0.5, seed=2)
        assert g.num_vertices == 80
        assert is_connected(g)
        degrees = sorted((g.degree(u) for u in g.vertices()), reverse=True)
        assert degrees[0] > 3 * degrees[len(degrees) // 2]

    def test_powerlaw_validation(self):
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(3, attach=3, triangle_prob=0.1, seed=0)


class TestTrapGraphs:
    def test_ue_trap_is_one_kvcc(self):
        k = 3
        g = ue_trap_graph(k, tail=3, seed=0)
        assert is_k_vertex_connected(g, k)

    def test_ue_trap_vertices_have_low_seed_degree(self):
        k = 3
        g = ue_trap_graph(k, tail=4, seed=1)
        core_size = 2 * k
        for u in range(core_size, g.num_vertices):
            inside_core = g.neighbors_in(u, set(range(core_size)))
            assert len(inside_core) < k

    def test_ue_trap_validation(self):
        with pytest.raises(ParameterError):
            ue_trap_graph(2, tail=1)

    def test_nbm_trap_not_mergeable(self):
        k = 4
        g = nbm_trap_graph(k, seed=0)
        size = 3 * k
        left = set(range(size))
        right = set(range(size, 2 * size))
        assert is_k_vertex_connected(g.subgraph(left), k)
        assert is_k_vertex_connected(g.subgraph(right), k)
        assert not is_k_vertex_connected(g, k)

    def test_nbm_trap_validation(self):
        with pytest.raises(ParameterError):
            nbm_trap_graph(2)
