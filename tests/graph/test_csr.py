"""Property tests for the flat-array CSR graph substrate.

Three invariant families from the PR that introduced ``CsrGraph``:

* **Round-trip** — dict graph → CSR snapshot → dict graph is the
  identity, and the densified graph carries the snapshot as its primed
  CSR cache.
* **Interning stability** — ``Graph.csr()`` returns the same snapshot
  object until a mutation bumps the adjacency version, after which a
  fresh snapshot is built exactly once.
* **Masked-subgraph equivalence** — the int8 alive-mask queries agree
  with physically removing the dead vertices via
  :meth:`Graph.remove_vertices`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.graph import Graph, random_gnm
from repro.graph.csr import CsrGraph


def _random_graph(seed: int) -> Graph:
    return random_gnm(25, 60, seed=seed)


class TestRoundTrip:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_dict_csr_dict_identity(self, seed):
        graph = _random_graph(seed)
        back = CsrGraph.from_graph(graph).to_graph()
        assert back == graph
        assert back.num_edges == graph.num_edges

    def test_to_graph_primes_cache(self):
        snapshot = CsrGraph.from_graph(_random_graph(3))
        dense = snapshot.to_graph()
        assert dense.csr_if_current() is snapshot

    def test_rows_are_sorted_and_symmetric(self):
        csr = CsrGraph.from_graph(_random_graph(7))
        rows = csr.rows_list()
        for i, row in enumerate(rows):
            assert row == sorted(row)
            assert i not in row
            for j in row:
                assert i in rows[j]

    def test_string_labels_round_trip(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        csr = CsrGraph.from_graph(graph)
        assert csr.to_graph() == graph
        assert csr.labels == ["a", "b", "c"]

    def test_mixed_labels_fall_back_to_repr_order(self):
        graph = Graph.from_edges([(1, "x"), ("x", 2)])
        csr = CsrGraph.from_graph(graph)
        assert not csr.natural_order
        assert csr.to_graph() == graph

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_stream_build_equals_graph_build(self, seed):
        # An edge stream cannot declare isolated vertices, so compare
        # against the edge-covered part of the graph.
        graph = Graph.from_edges(_random_graph(seed).edges())
        streamed = CsrGraph.from_edge_stream(graph.edges())
        built = CsrGraph.from_graph(graph)
        assert streamed.labels == built.labels
        assert streamed.indptr == built.indptr
        assert streamed.indices == built.indices


class TestInterningStability:
    def test_snapshot_is_cached(self):
        graph = _random_graph(11)
        assert graph.csr() is graph.csr()
        assert graph.csr_if_current() is graph.csr()

    def test_mutation_invalidates(self):
        graph = _random_graph(13)
        first = graph.csr()
        graph.add_edge(997, 998)
        assert graph.csr_if_current() is None
        second = graph.csr()
        assert second is not first
        assert second.index[997] >= 0

    def test_rebuild_counted_once_per_version(self):
        graph = _random_graph(17)
        with obs.collecting() as collector:
            graph.csr()
            graph.csr()
            graph.csr()
        assert collector.counter("graph.csr.builds") == 1
        assert collector.counter("graph.csr.reuses") == 2

    def test_index_and_labels_agree(self):
        csr = CsrGraph.from_graph(_random_graph(19))
        for i in csr.ids():
            assert csr.id_of(csr.label_of(i)) == i


class TestMaskedSubgraphEquivalence:
    @given(
        st.integers(min_value=0, max_value=500),
        st.sets(st.integers(min_value=0, max_value=24), max_size=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_masked_queries_match_remove_vertices(self, seed, doomed):
        graph = _random_graph(seed)
        doomed = {u for u in doomed if graph.has_vertex(u)}
        csr = CsrGraph.from_graph(graph)
        mask = csr.alive_mask()
        for u in doomed:
            mask[csr.id_of(u)] = 0

        pruned = graph.copy()
        pruned.remove_vertices(doomed)

        for u in pruned.vertices():
            i = csr.id_of(u)
            masked = {
                csr.label_of(j) for j in csr.masked_neighbors_ids(i, mask)
            }
            assert masked == pruned.neighbors(u)
            assert csr.masked_degree(i, mask) == pruned.degree(u)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_masked_neighborhood_matches_pruned_bfs(self, seed):
        graph = _random_graph(seed)
        doomed = {u for u in (1, 4, 9) if graph.has_vertex(u)}
        seeds = [u for u in graph.vertices() if u not in doomed][:2]
        csr = CsrGraph.from_graph(graph)
        mask = csr.alive_mask()
        for u in doomed:
            mask[csr.id_of(u)] = 0
        pruned = graph.copy()
        pruned.remove_vertices(doomed)

        for hops in (0, 1, 2, 3):
            got = {
                csr.label_of(i)
                for i in csr.masked_neighborhood(
                    [csr.id_of(u) for u in seeds], hops, mask
                )
            }
            assert got == pruned.neighborhood(seeds, hops)


class TestEdgeQueries:
    def test_has_edge_forms_agree(self):
        graph = _random_graph(23)
        csr = CsrGraph.from_graph(graph)
        for u in graph.vertices():
            for v in graph.vertices():
                if u == v:
                    continue
                expected = graph.has_edge(u, v)
                assert csr.has_edge_labels(u, v) == expected
                assert (
                    csr.has_edge_ids(csr.id_of(u), csr.id_of(v)) == expected
                )

    def test_empty_graph(self):
        csr = CsrGraph.from_graph(Graph())
        assert csr.n == 0
        assert csr.num_edges == 0
        assert csr.to_graph() == Graph()


class TestStreamHygiene:
    def test_self_loops_and_duplicates_dropped_with_counters(self):
        edges = [(0, 1), (1, 0), (1, 1), (1, 2), (0, 1), (2, 2)]
        with obs.collecting() as collector:
            csr = CsrGraph.from_edge_stream(edges)
        assert csr.num_edges == 2
        assert csr.to_graph() == Graph.from_edges([(0, 1), (1, 2)])
        assert collector.counter("graph.csr.stream_selfloops_dropped") == 2
        assert collector.counter("graph.csr.stream_duplicates_dropped") == 2

    def test_self_loop_vertex_survives_as_isolated(self):
        csr = CsrGraph.from_edge_stream([(0, 1), (5, 5)])
        assert 5 in csr
        assert csr.degree(csr.id_of(5)) == 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
