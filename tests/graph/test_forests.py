"""Tests for k-round BFS forests (kBFS seeding, paper Lemma 4)."""

import networkx as nx
import pytest

from repro.errors import ParameterError
from repro.flow import is_k_vertex_connected
from repro.graph import (
    Graph,
    bfs_forest,
    circulant_graph,
    clique_graph,
    community_graph,
    k_bfs_forests,
    k_bfs_seed_components,
    random_gnm,
)
from repro.graph.forests import sparse_certificate
from tests.conftest import to_networkx


class TestBfsForest:
    def test_forest_spans_connected_graph(self):
        g = random_gnm(20, 50, seed=1)
        forest = bfs_forest(g, forbidden_edges=set())
        assert len(forest) == g.num_vertices - 1  # spanning tree

    def test_forest_covers_components(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)])
        forest = bfs_forest(g, forbidden_edges=set())
        assert len(forest) == 3  # n - #components = 5 - 2


class TestKBfsForests:
    def test_forests_edge_disjoint(self):
        g = random_gnm(25, 120, seed=2)
        forests = k_bfs_forests(g, 3)
        seen: set = set()
        for forest in forests:
            for e in forest:
                key = frozenset(e)
                assert key not in seen
                seen.add(key)

    def test_k_must_be_positive(self):
        with pytest.raises(ParameterError):
            k_bfs_forests(Graph(), 0)

    def test_forest_count(self):
        g = clique_graph(6)
        assert len(k_bfs_forests(g, 4)) == 4


class TestSeedComponents:
    def test_clique_yields_seed(self):
        # K6 has 5 edge-disjoint spanning trees; components of F_3 that
        # survive must induce 3-vertex connected subgraphs.
        g = clique_graph(8)
        for comp in k_bfs_seed_components(g, 3):
            assert is_k_vertex_connected(g.subgraph(comp), 3)

    def test_seeds_are_k_connected_in_induced_graph(self):
        g = community_graph([12, 12], k=3, seed=5, extra_edge_prob=0.4)
        for comp in k_bfs_seed_components(g, 3):
            # Lemma 4 guarantees k-connectivity using edges of G; our
            # seeding additionally verifies induced connectivity before
            # trusting a seed, so here we only require the weaker claim.
            assert len(comp) >= 4

    def test_sparse_graph_yields_nothing(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert k_bfs_seed_components(g, 3) == []

    def test_dense_circulant_seed_found(self):
        g = circulant_graph(20, 4)  # 8-regular, 8-connected
        comps = k_bfs_seed_components(g, 3)
        assert comps, "a dense circulant should yield at least one seed"


class TestSparseCertificate:
    def test_subgraph_of_original(self):
        g = random_gnm(30, 140, seed=6)
        cert = sparse_certificate(g, 3)
        assert cert.vertex_set() == g.vertex_set()
        for u, v in cert.edges():
            assert g.has_edge(u, v)

    def test_edge_bound(self):
        g = clique_graph(20)
        for k in (2, 3, 5):
            cert = sparse_certificate(g, k)
            assert cert.num_edges <= k * (g.num_vertices - 1)

    def test_preserves_k_connectivity_decision(self):
        # CKT property at the whole-graph level: the certificate is
        # k-vertex connected iff the original graph is.
        for seed in range(8):
            g = random_gnm(16, 60, seed=seed)
            for k in (2, 3):
                cert = sparse_certificate(g, k)
                ours = is_k_vertex_connected(cert, k)
                truth = is_k_vertex_connected(g, k)
                assert ours == truth, (seed, k)

    def test_small_cut_of_certificate_cuts_original(self):
        from repro.flow import find_vertex_cut
        from repro.graph import component_of

        for seed in range(6):
            g = community_graph([12, 12], k=3, seed=seed, bridge_width=2)
            cert = sparse_certificate(g, 3)
            cut = find_vertex_cut(cert, 3, certificate=False)
            assert cut is not None
            rest = g.vertex_set() - cut
            sub = g.subgraph(rest)
            anchor = next(iter(rest))
            assert component_of(sub, anchor) != rest

    def test_preserves_connectivity(self):
        g = random_gnm(25, 80, seed=2)
        cert = sparse_certificate(g, 4)
        assert nx.number_connected_components(
            to_networkx(cert)
        ) == nx.number_connected_components(to_networkx(g))
