"""Unit tests for the adjacency-set Graph."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph


def triangle() -> Graph:
    return Graph.from_edges([(1, 2), (2, 3), (1, 3)])


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_from_edges_with_isolated_vertices(self):
        g = Graph.from_edges([(1, 2)], vertices=[7, 8])
        assert g.num_vertices == 4
        assert g.degree(7) == 0

    def test_copy_is_independent(self):
        g = triangle()
        clone = g.copy()
        clone.add_edge(3, 4)
        assert g.num_vertices == 3
        assert clone.num_vertices == 4
        assert g != clone

    def test_copy_equal(self):
        g = triangle()
        assert g.copy() == g


class TestMutation:
    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.has_vertex("a")
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")

    def test_parallel_edge_is_noop(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_remove_edge(self):
        g = triangle()
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 2
        assert g.has_vertex(1)

    def test_remove_missing_edge_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.remove_edge(1, 99)

    def test_remove_vertex(self):
        g = triangle()
        g.remove_vertex(2)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            triangle().remove_vertex(42)

    def test_remove_vertices_bulk(self):
        g = triangle()
        g.remove_vertices([1, 2])
        assert g.vertex_set() == {3}
        assert g.num_edges == 0


class TestQueries:
    def test_neighbors(self):
        g = triangle()
        assert g.neighbors(1) == {2, 3}

    def test_neighbors_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            triangle().neighbors(9)

    def test_degree(self):
        g = Graph.from_edges([(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(2) == 1

    def test_average_degree(self):
        assert triangle().average_degree() == pytest.approx(2.0)
        assert Graph().average_degree() == 0.0

    def test_min_degree(self):
        g = Graph.from_edges([(1, 2), (1, 3)])
        assert g.min_degree() == 1

    def test_min_degree_empty_raises(self):
        with pytest.raises(GraphError):
            Graph().min_degree()

    def test_edges_each_once(self):
        g = triangle()
        edges = {frozenset(e) for e in g.edges()}
        assert edges == {
            frozenset((1, 2)),
            frozenset((2, 3)),
            frozenset((1, 3)),
        }
        assert len(list(g.edges())) == 3

    def test_dunders(self):
        g = triangle()
        assert 1 in g
        assert 9 not in g
        assert len(g) == 3
        assert set(g) == {1, 2, 3}
        assert "n=3" in repr(g)


class TestSubgraph:
    def test_induced_subgraph(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)])
        sub = g.subgraph({1, 2, 3})
        assert sub.vertex_set() == {1, 2, 3}
        assert sub.num_edges == 3

    def test_subgraph_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            triangle().subgraph({1, 99})

    def test_subgraph_is_detached(self):
        g = triangle()
        sub = g.subgraph({1, 2})
        sub.add_edge(2, 5)
        assert not g.has_vertex(5)

    def test_empty_subgraph(self):
        sub = triangle().subgraph(set())
        assert sub.num_vertices == 0


class TestBoundaries:
    def test_boundary(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 4)])
        assert g.boundary({1, 2}) == {2}
        assert g.boundary({1, 2, 3, 4}) == set()

    def test_external_boundary(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 4)])
        assert g.external_boundary({1, 2}) == {3}
        assert g.external_boundary({2, 3}) == {1, 4}

    def test_neighbors_in(self):
        g = Graph.from_edges([(1, 2), (1, 3), (1, 4)])
        assert g.neighbors_in(1, {2, 4, 9}) == {2, 4}

    def test_neighborhood_hops(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 4), (4, 5)])
        assert g.neighborhood([1], 0) == {1}
        assert g.neighborhood([1], 1) == {1, 2}
        assert g.neighborhood([1], 2) == {1, 2, 3}
        assert g.neighborhood([1, 5], 1) == {1, 2, 4, 5}

    def test_neighborhood_negative_hops_raises(self):
        with pytest.raises(GraphError):
            triangle().neighborhood([1], -1)

    def test_neighborhood_missing_seed_raises(self):
        with pytest.raises(GraphError):
            triangle().neighborhood([42], 1)
