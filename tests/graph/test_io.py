"""Tests for edge-list parsing and round-tripping."""

import pytest

from repro.errors import GraphFormatError, ParseError
from repro.graph import (
    Graph,
    parse_edge_list,
    random_gnm,
    read_edge_list,
    write_edge_list,
)


class TestParse:
    def test_basic(self):
        g = parse_edge_list(["1 2", "2 3"])
        assert g.num_vertices == 3
        assert g.has_edge(1, 2)

    def test_comments_and_blanks_skipped(self):
        g = parse_edge_list(["# header", "", "% other", "1 2"])
        assert g.num_edges == 1

    def test_extra_columns_ignored(self):
        g = parse_edge_list(["1 2 0.5 whatever"])
        assert g.has_edge(1, 2)

    def test_string_labels(self):
        g = parse_edge_list(["alice bob"])
        assert g.has_edge("alice", "bob")

    def test_mixed_numeric_coercion(self):
        g = parse_edge_list(["007 42"])
        assert g.has_edge(7, 42)

    def test_bare_label_declares_isolated_vertex(self):
        g = parse_edge_list(["1 2", "7"])
        assert g.has_vertex(7)
        assert g.degree(7) == 0

    def test_self_loop_rejected_by_default(self):
        with pytest.raises(ParseError):
            parse_edge_list(["3 3"])

    def test_self_loop_dropped_when_allowed(self):
        g = parse_edge_list(["3 3", "3 4"], allow_self_loops=True)
        assert g.num_edges == 1
        assert g.has_vertex(3)

    def test_parallel_edges_collapse(self):
        g = parse_edge_list(["1 2", "2 1", "1 2"])
        assert g.num_edges == 1


class TestFormatErrors:
    """Malformed input raises GraphFormatError locating the bad line."""

    def test_error_carries_line_number(self):
        with pytest.raises(GraphFormatError) as excinfo:
            parse_edge_list(["1 2", "3 3"])
        assert excinfo.value.lineno == 2
        assert excinfo.value.source is None
        assert "line 2" in str(excinfo.value)

    def test_comment_lines_still_counted(self):
        with pytest.raises(GraphFormatError) as excinfo:
            parse_edge_list(["# header", "", "5 5"])
        assert excinfo.value.lineno == 3

    def test_is_a_parse_error(self):
        assert issubclass(GraphFormatError, ParseError)

    def test_strict_rejects_extra_columns(self):
        with pytest.raises(GraphFormatError) as excinfo:
            parse_edge_list(["1 2", "1 2 0.5"], strict=True)
        assert "2 tokens" in str(excinfo.value)
        assert excinfo.value.lineno == 2

    def test_strict_rejects_truncated_lines(self):
        with pytest.raises(GraphFormatError):
            parse_edge_list(["7"], strict=True)

    def test_strict_rejects_string_labels(self):
        with pytest.raises(GraphFormatError) as excinfo:
            parse_edge_list(["alice bob"], strict=True)
        assert "'alice'" in str(excinfo.value)

    def test_strict_accepts_clean_input(self):
        g = parse_edge_list(["1 2", "2 3"], strict=True)
        assert g.num_edges == 2

    def test_read_edge_list_names_the_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n3 3\n")
        with pytest.raises(GraphFormatError) as excinfo:
            read_edge_list(path)
        assert excinfo.value.source == str(path)
        assert excinfo.value.lineno == 2
        assert "bad.txt" in str(excinfo.value)
        assert "line 2" in str(excinfo.value)

    def test_read_edge_list_strict(self, tmp_path):
        path = tmp_path / "weights.txt"
        path.write_text("1 2 0.9\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path, strict=True)
        assert read_edge_list(path).has_edge(1, 2)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = random_gnm(20, 40, seed=9)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back == g

    def test_isolated_vertices_roundtrip(self, tmp_path):
        g = Graph.from_edges([(1, 2)], vertices=[9, "lonely"])
        path = tmp_path / "iso.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_write_is_stable(self, tmp_path):
        g = random_gnm(15, 30, seed=1)
        p1, p2 = tmp_path / "a.txt", tmp_path / "b.txt"
        write_edge_list(g, p1)
        write_edge_list(g, p2)
        assert p1.read_text() == p2.read_text()

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_edge_list(Graph(), path)
        assert read_edge_list(path).num_vertices == 0
