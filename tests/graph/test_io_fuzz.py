"""Property-based fuzzing of the edge-list parser and writer."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, parse_edge_list, write_edge_list, read_edge_list

label = st.one_of(
    st.integers(min_value=0, max_value=999),
    st.text(
        alphabet=string.ascii_letters + string.digits + "_.-",
        min_size=1,
        max_size=8,
        # digit-only strings would canonicalise to ints on re-read
    ).filter(lambda s: not s.isdigit()),
)

edge = st.tuples(label, label).filter(lambda e: str(e[0]) != str(e[1]))


@st.composite
def graphs(draw):
    edges = draw(st.lists(edge, max_size=40))
    isolated = draw(st.lists(label, max_size=5))
    g = Graph()
    for u in isolated:
        g.add_vertex(u)
    for u, v in edges:
        if u != v:
            g.add_edge(u, v)
    return g


class TestRoundTripFuzz:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_write_read_roundtrip(self, g):
        import os
        import tempfile

        handle, path = tempfile.mkstemp(suffix=".txt")
        os.close(handle)
        try:
            write_edge_list(g, path)
            back = read_edge_list(path)
        finally:
            os.unlink(path)
        # int-looking string labels coerce to int on the way back;
        # compare via canonical string rendering of the edge set
        ours = {frozenset((str(u), str(v))) for u, v in g.edges()}
        theirs = {frozenset((str(u), str(v))) for u, v in back.edges()}
        assert ours == theirs
        assert {str(u) for u in g.vertices()} == {
            str(u) for u in back.vertices()
        }


class TestParserRobustness:
    @given(st.text(max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_never_crashes_unexpectedly(self, blob):
        """Arbitrary text either parses or raises the library's errors."""
        from repro.errors import ReproError

        try:
            g = parse_edge_list(blob.splitlines(), allow_self_loops=True)
        except ReproError:
            return
        # whatever parsed is a consistent simple graph
        for u, v in g.edges():
            assert g.has_edge(v, u)
            assert u != v

    @given(st.lists(edge, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_duplicate_lines_idempotent(self, edges):
        lines = [f"{u} {v}" for u, v in edges]
        once = parse_edge_list(lines)
        twice = parse_edge_list(lines + lines)
        assert once == twice
