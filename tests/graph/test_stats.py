"""Tests for descriptive graph statistics."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    average_clustering,
    circulant_graph,
    clique_graph,
    community_graph,
    degree_histogram,
    density,
    powerlaw_cluster_graph,
    random_gnm,
    triangle_count,
)
from tests.conftest import to_networkx


class TestBasics:
    def test_degree_histogram(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert degree_histogram(g) == {3: 1, 1: 3}

    def test_triangle_count_known(self):
        assert triangle_count(clique_graph(4)) == 4
        assert triangle_count(circulant_graph(10, 1)) == 0

    def test_clustering_known(self):
        assert average_clustering(clique_graph(5)) == pytest.approx(1.0)
        assert average_clustering(circulant_graph(10, 1)) == 0.0
        assert average_clustering(Graph()) == 0.0

    def test_density(self):
        assert density(clique_graph(6)) == pytest.approx(1.0)
        assert density(Graph.from_edges([], vertices=[1])) == 0.0


class TestAgainstNetworkx:
    @given(st.integers(min_value=0, max_value=600))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(20, 60, seed=seed)
        nxg = to_networkx(g)
        assert triangle_count(g) == sum(nx.triangles(nxg).values()) // 3
        assert average_clustering(g) == pytest.approx(
            nx.average_clustering(nxg)
        )
        assert density(g) == pytest.approx(nx.density(nxg))


class TestDatasetTextureClaims:
    """The stand-ins really have the texture DESIGN.md claims."""

    def test_clique_ring_is_triangle_rich(self):
        g = community_graph([30], k=4, seed=1)
        assert average_clustering(g) > 0.5

    def test_minimal_circulant_is_triangle_poor(self):
        g = community_graph([30], k=4, seed=1, style="circulant")
        assert average_clustering(g) < 0.5

    def test_powerlaw_has_heavy_tail(self):
        g = powerlaw_cluster_graph(150, attach=3, triangle_prob=0.6, seed=3)
        hist = degree_histogram(g)
        assert max(hist) > 4 * (2 * g.num_edges / g.num_vertices)
