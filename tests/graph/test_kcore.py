"""Tests for k-core decomposition, core numbers, and degeneracy ordering."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import (
    Graph,
    clique_graph,
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    k_core,
    random_gnm,
)
from tests.conftest import to_networkx


class TestKCore:
    def test_clique_survives(self):
        g = clique_graph(5)
        assert k_core(g, 4).vertex_set() == g.vertex_set()

    def test_pendant_pruned(self):
        g = clique_graph(4)
        g.add_edge(0, 99)
        core = k_core(g, 2)
        assert 99 not in core
        assert core.num_vertices == 4

    def test_cascading_prune(self):
        # A path hanging off a triangle peels entirely at k=2.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        core = k_core(g, 2)
        assert core.vertex_set() == {0, 1, 2}

    def test_k_zero_identity(self):
        g = random_gnm(20, 40, seed=1)
        assert k_core(g, 0).vertex_set() == g.vertex_set()

    def test_negative_k_raises(self):
        with pytest.raises(ParameterError):
            k_core(Graph(), -1)

    def test_empty_result(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert k_core(g, 5).num_vertices == 0

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(30, 70, seed=seed)
        for k in (1, 2, 3, 4):
            ours = k_core(g, k).vertex_set()
            theirs = set(nx.k_core(to_networkx(g), k).nodes())
            assert ours == theirs


class TestCoreNumbers:
    def test_matches_networkx_random(self):
        for seed in range(5):
            g = random_gnm(40, 120, seed=seed)
            assert core_numbers(g) == nx.core_number(to_networkx(g))

    def test_empty(self):
        assert core_numbers(Graph()) == {}

    def test_clique(self):
        assert set(core_numbers(clique_graph(6)).values()) == {5}


class TestDegeneracy:
    def test_clique_degeneracy(self):
        assert degeneracy(clique_graph(7)) == 6

    def test_tree_degeneracy(self):
        g = Graph.from_edges([(0, 1), (0, 2), (2, 3)])
        assert degeneracy(g) == 1

    def test_empty(self):
        assert degeneracy(Graph()) == 0

    def test_ordering_covers_all_vertices(self):
        g = random_gnm(25, 60, seed=3)
        order = degeneracy_ordering(g)
        assert sorted(order) == sorted(g.vertices())

    def test_ordering_later_neighbor_bound(self):
        # Defining property: each vertex has at most `degeneracy` many
        # neighbours later in the ordering.
        g = random_gnm(30, 90, seed=4)
        d = degeneracy(g)
        order = degeneracy_ordering(g)
        position = {u: i for i, u in enumerate(order)}
        for u in g.vertices():
            later = [v for v in g.neighbors(u) if position[v] > position[u]]
            assert len(later) <= d
