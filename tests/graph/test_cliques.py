"""Tests for Bron–Kerbosch maximal clique enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import (
    Graph,
    clique_graph,
    max_clique_size,
    maximal_cliques,
    maximal_cliques_at_least,
    random_gnm,
)
from tests.conftest import to_networkx


def nx_maximal_cliques(graph: Graph) -> set[frozenset]:
    return {frozenset(c) for c in nx.find_cliques(to_networkx(graph))}


class TestMaximalCliques:
    def test_single_clique(self):
        g = clique_graph(5)
        assert set(maximal_cliques(g)) == {frozenset(range(5))}

    def test_triangle_plus_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        cliques = set(maximal_cliques(g))
        assert cliques == {frozenset({0, 1, 2}), frozenset({2, 3})}

    def test_empty_graph(self):
        assert list(maximal_cliques(Graph())) == []

    def test_isolated_vertices_are_trivial_cliques(self):
        g = Graph.from_edges([], vertices=[1, 2])
        assert set(maximal_cliques(g)) == {frozenset({1}), frozenset({2})}

    def test_no_duplicates(self):
        g = random_gnm(25, 100, seed=11)
        found = list(maximal_cliques(g))
        assert len(found) == len(set(found))

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(20, 60, seed=seed)
        assert set(maximal_cliques(g)) == nx_maximal_cliques(g)


class TestSizeFiltered:
    def test_min_size_filter(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert set(maximal_cliques_at_least(g, 3)) == {frozenset({0, 1, 2})}

    def test_filter_matches_postfilter(self):
        for seed in range(5):
            g = random_gnm(22, 80, seed=seed)
            full = {c for c in nx_maximal_cliques(g) if len(c) >= 4}
            assert set(maximal_cliques_at_least(g, 4)) == full

    def test_invalid_min_size_raises(self):
        with pytest.raises(ParameterError):
            list(maximal_cliques_at_least(Graph(), 0))


class TestMaxCliqueSize:
    def test_known_sizes(self):
        assert max_clique_size(clique_graph(6)) == 6
        assert max_clique_size(Graph()) == 0
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert max_clique_size(g) == 2

    def test_matches_networkx(self):
        for seed in range(5):
            g = random_gnm(20, 70, seed=seed)
            expected = max(
                (len(c) for c in nx.find_cliques(to_networkx(g))), default=0
            )
            assert max_clique_size(g) == expected
