"""Tests for BFS/DFS traversal and connected components."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    bfs_order,
    bfs_tree_edges,
    component_of,
    connected_components,
    is_connected,
    shortest_path_lengths,
)


def path_graph(n: int) -> Graph:
    return Graph.from_edges((i, i + 1) for i in range(n - 1))


class TestBfs:
    def test_order_starts_at_source(self):
        order = bfs_order(path_graph(5), 2)
        assert order[0] == 2
        assert set(order) == {0, 1, 2, 3, 4}

    def test_order_respects_levels(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        order = bfs_order(g, 0)
        assert order.index(3) > order.index(1)
        assert order.index(3) > order.index(2)

    def test_missing_source_raises(self):
        with pytest.raises(GraphError):
            bfs_order(path_graph(3), 99)

    def test_tree_edges_span(self):
        g = path_graph(4)
        tree = bfs_tree_edges(g, 0)
        assert len(tree) == 3

    def test_tree_edges_forbidden(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        tree = bfs_tree_edges(g, 0, forbidden_edges={frozenset((0, 1))})
        covered = {0} | {v for e in tree for v in e}
        assert covered == {0, 1, 2}
        assert frozenset((0, 1)) not in {frozenset(e) for e in tree}


class TestComponents:
    def test_single_component(self):
        comps = connected_components(path_graph(4))
        assert comps == [{0, 1, 2, 3}]

    def test_multiple_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], vertices=[9])
        comps = connected_components(g)
        assert sorted(map(sorted, comps)) == [[0, 1], [2, 3], [9]]

    def test_is_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(Graph.from_edges([(0, 1), (2, 3)]))
        assert is_connected(Graph())  # convention: empty graph connected

    def test_component_of(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert component_of(g, 0) == {0, 1}
        assert component_of(g, 3) == {2, 3}


class TestShortestPaths:
    def test_path_lengths(self):
        dist = shortest_path_lengths(path_graph(5), 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_absent(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        dist = shortest_path_lengths(g, 0)
        assert 2 not in dist

    def test_missing_source_raises(self):
        with pytest.raises(GraphError):
            shortest_path_lengths(path_graph(2), 77)
