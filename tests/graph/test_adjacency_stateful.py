"""Stateful property testing of the Graph class.

Hypothesis drives random sequences of mutations against a shadow model
(a set of frozenset edges) and checks the structural invariants after
every step: edge symmetry, consistent counts, degree/neighbour
agreement. This is the strongest guard on the data structure that
everything else in the library stands on.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import GraphError
from repro.graph import Graph

labels = st.integers(min_value=0, max_value=30)


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = Graph()
        self.model_edges: set[frozenset] = set()
        self.model_vertices: set[int] = set()

    @rule(u=labels)
    def add_vertex(self, u):
        self.graph.add_vertex(u)
        self.model_vertices.add(u)

    @rule(u=labels, v=labels)
    def add_edge(self, u, v):
        if u == v:
            try:
                self.graph.add_edge(u, v)
            except GraphError:
                return
            raise AssertionError("self-loop accepted")
        self.graph.add_edge(u, v)
        self.model_edges.add(frozenset((u, v)))
        self.model_vertices.update((u, v))

    @rule(u=labels, v=labels)
    def remove_edge(self, u, v):
        key = frozenset((u, v))
        if key in self.model_edges:
            self.graph.remove_edge(u, v)
            self.model_edges.discard(key)
        else:
            try:
                self.graph.remove_edge(u, v)
            except GraphError:
                return
            raise AssertionError("removing a missing edge succeeded")

    @rule(u=labels)
    def remove_vertex(self, u):
        if u in self.model_vertices:
            self.graph.remove_vertex(u)
            self.model_vertices.discard(u)
            self.model_edges = {
                e for e in self.model_edges if u not in e
            }
        else:
            try:
                self.graph.remove_vertex(u)
            except GraphError:
                return
            raise AssertionError("removing a missing vertex succeeded")

    @rule()
    def copy_detaches(self):
        clone = self.graph.copy()
        assert clone == self.graph
        probe = max(self.model_vertices, default=0) + 100
        clone.add_vertex(probe)
        assert not self.graph.has_vertex(probe)

    @invariant()
    def counts_match_model(self):
        assert self.graph.num_vertices == len(self.model_vertices)
        assert self.graph.num_edges == len(self.model_edges)

    @invariant()
    def edges_match_model(self):
        seen = {frozenset(e) for e in self.graph.edges()}
        assert seen == self.model_edges

    @invariant()
    def adjacency_symmetric(self):
        for u in self.graph.vertices():
            for v in self.graph.neighbors(u):
                assert u in self.graph.neighbors(v)
            assert self.graph.degree(u) == len(self.graph.neighbors(u))


GraphMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestGraphStateful = GraphMachine.TestCase
