"""The flow fast path is invisible: every toggle yields identical output.

The optimisations of :mod:`repro.flow.fastpath` (dirty-capacity reset,
network reuse with vertex disabling, certificate-sparsified flow tests)
plus the indexed/memoized merge driver are pure speed-ups — Theorems 1
and 3 are evaluated on flow-equivalent networks either way. These tests
pin that claim: enumeration output is compared component-by-component
between the default configuration and every toggle's off position,
across the planted generators and k ∈ {2, 3, 4}.
"""

import pytest

from repro import obs
from repro.core.expansion import multiple_expansion
from repro.core.merging import flow_based_merge_condition, merge_components
from repro.core.result import PhaseTimer
from repro.core.ripple import ripple, ripple_me
from repro.flow import fastpath
from repro.graph.generators import (
    clique_graph,
    community_graph,
    planted_kvcc_graph,
)

# Each toggle individually off, plus everything off (the pre-fast-path
# behaviour); the default-on run is the reference.
TOGGLES = [
    {"csr": False},
    {"dirty_reset": False},
    {"reuse_networks": False},
    {"certificate": False},
    {
        "csr": False,
        "dirty_reset": False,
        "reuse_networks": False,
        "certificate": False,
    },
]


def _graph_for(k: int):
    if k == 2:
        return community_graph([12, 12], k=2, seed=3)
    if k == 3:
        return planted_kvcc_graph(2, 20, 3, seed=1)
    return planted_kvcc_graph(3, 30, 4, seed=0)


def _canonical(result):
    return sorted(sorted(map(str, c)) for c in result.components)


class TestConfigScoping:
    def test_defaults(self):
        config = fastpath.active()
        assert config.dirty_reset is True
        assert config.reuse_networks is True
        assert config.certificate is True

    def test_configured_overrides_and_restores(self):
        with fastpath.configured(certificate=False):
            assert fastpath.active().certificate is False
            assert fastpath.active().dirty_reset is True
            with fastpath.configured(dirty_reset=False):
                assert fastpath.active().certificate is False
                assert fastpath.active().dirty_reset is False
            assert fastpath.active().dirty_reset is True
        assert fastpath.active() is fastpath.DEFAULT

    def test_configured_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with fastpath.configured(reuse_networks=False):
                raise RuntimeError("boom")
        assert fastpath.active() is fastpath.DEFAULT

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            with fastpath.configured(warp_drive=True):
                pass  # pragma: no cover


class TestDifferential:
    """Identical components with every optimisation on vs off."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize(
        "overrides", TOGGLES, ids=lambda o: "+".join(sorted(o))
    )
    def test_ripple_output_invariant(self, k, overrides):
        graph = _graph_for(k)
        reference = _canonical(ripple(graph, k))
        with fastpath.configured(**overrides):
            toggled = _canonical(ripple(graph, k))
        assert toggled == reference

    @pytest.mark.parametrize("k", [3, 4])
    @pytest.mark.parametrize(
        "overrides", TOGGLES, ids=lambda o: "+".join(sorted(o))
    )
    def test_ripple_me_output_invariant(self, k, overrides):
        graph = _graph_for(k)
        reference = _canonical(ripple_me(graph, k))
        with fastpath.configured(**overrides):
            toggled = _canonical(ripple_me(graph, k))
        assert toggled == reference

    def test_certificate_parameter_equals_context(self):
        graph = planted_kvcc_graph(2, 20, 3, seed=1)
        via_param = _canonical(ripple(graph, 3, certificate=False))
        with fastpath.configured(certificate=False):
            via_context = _canonical(ripple(graph, 3))
        assert via_param == via_context == _canonical(ripple(graph, 3))


def _pendant_clique():
    """A K8 plus two mutually-adjacent pendants sharing two anchors.

    Each pendant has k = 3 neighbours inside the ME scope (the two
    shared anchors plus the other pendant), so the degree peel cannot
    discard it — but only 2 vertex-disjoint paths reach σ (every route
    funnels through anchors 0 and 1). ME from a 4-vertex seed keeps
    the clique remainder but must drop both pendants by flow: pass 1
    shrinks (drop), pass 2 confirms the fixed point on the reused
    network.
    """
    graph = clique_graph(8)
    graph.add_edge(100, 0)
    graph.add_edge(100, 1)
    graph.add_edge(101, 0)
    graph.add_edge(101, 1)
    graph.add_edge(100, 101)
    return graph


class TestCounters:
    """The fast path reports what it does through repro.obs."""

    def test_dirty_reset_counters(self):
        # The two-pendant scope runs several flows over one reused
        # network, so the second and later queries restore the arcs
        # the previous query touched.
        graph = _pendant_clique()
        with obs.collecting() as on:
            multiple_expansion(graph, 3, {0, 1, 2, 3})
        assert on.counter("flow.reset.dirty_edges") > 0
        assert on.counter("flow.reset.full") == 0
        with fastpath.configured(dirty_reset=False):
            with obs.collecting() as off:
                multiple_expansion(graph, 3, {0, 1, 2, 3})
        assert off.counter("flow.reset.dirty_edges") == 0
        assert off.counter("flow.reset.full") > 0

    def test_network_reuse_counters(self):
        graph = _pendant_clique()
        with obs.collecting() as collector:
            multiple_expansion(graph, 3, {0, 1, 2, 3})
        assert collector.counter("flow.network.builds") > 0
        assert collector.counter("flow.network.reuses") > 0

    def test_me_rebuilds_avoided_when_reusing(self):
        graph = _pendant_clique()
        with obs.collecting() as on:
            grown = multiple_expansion(graph, 3, {0, 1, 2, 3})
        assert grown == set(range(8))
        assert on.counter("expansion.me.network_rebuilds_avoided") > 0
        assert on.counter("flow.network.vertex_disables") > 0
        with fastpath.configured(reuse_networks=False):
            with obs.collecting() as off:
                grown = multiple_expansion(graph, 3, {0, 1, 2, 3})
        assert grown == set(range(8))
        assert off.counter("expansion.me.network_rebuilds_avoided") == 0
        assert off.counter("flow.network.vertex_disables") == 0

    def test_certificate_activates_on_dense_scope(self):
        # A 40-clique scope: 780 edges vs factor·k·n = 2·3·40 = 240.
        graph = clique_graph(40)
        with obs.collecting() as collector:
            grown = multiple_expansion(graph, 3, {0, 1, 2, 3})
        assert grown == set(range(40))
        assert collector.counter("certificate.activations") > 0
        with fastpath.configured(certificate=False):
            with obs.collecting() as off:
                grown = multiple_expansion(graph, 3, {0, 1, 2, 3})
        assert grown == set(range(40))
        assert off.counter("certificate.activations") == 0

    def test_certificate_activates_in_fbm(self):
        graph = clique_graph(40)
        side_a = set(range(20))
        side_b = set(range(20, 40))
        with obs.collecting() as collector:
            verdict = flow_based_merge_condition(
                graph, 3, side_a, side_b, PhaseTimer()
            )
        assert verdict is True
        assert collector.counter("certificate.activations") > 0

    def test_certificate_silent_on_sparse_graph(self):
        graph = community_graph([12, 12], k=2, seed=3)
        with obs.collecting() as collector:
            ripple(graph, 2)
        assert collector.counter("certificate.activations") == 0

    def test_merge_memoization_counters(self):
        # Three K6s: the first provides two overlapping halves that
        # merge in round 1; the other two touch through only 2 bridge
        # edges, so their pair is rejected — and round 2 retests it
        # with unchanged (uid, version) sides, hitting the memo.
        graph = clique_graph(6)
        for offset in (10, 20):
            clique = clique_graph(6, offset=offset)
            for u, v in clique.edges():
                graph.add_edge(u, v)
        graph.add_edge(10, 20)
        graph.add_edge(11, 21)
        pool = [
            set(range(10, 16)),
            set(range(20, 26)),
            {0, 1, 2, 3},
            {2, 3, 4, 5},
        ]
        with obs.collecting() as collector:
            merged = merge_components(
                graph, 3, pool, flow_based_merge_condition
            )
        assert sorted(map(len, merged)) == [6, 6, 6]
        assert collector.counter("merge.tests_memoized") >= 1
        assert collector.counter("merge.rounds") == 2

    def test_index_skips_far_pairs(self):
        graph = planted_kvcc_graph(3, 30, 4, seed=0)
        with obs.collecting() as collector:
            ripple(graph, 4)
        # Seeds from different communities mostly do not touch; the
        # inverted index never surfaces those pairs.
        assert collector.counter("merge.pairs_skipped_by_index") > 0
