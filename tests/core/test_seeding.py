"""Tests for LkVCS, kBFS, clique seeding, and QkVCS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PhaseTimer,
    clique_seeds,
    kbfs_seeds,
    lkvcs,
    lkvcs_seeds,
    qkvcs,
)
from repro.errors import ParameterError
from repro.flow import is_k_vertex_connected
from repro.graph import (
    circulant_graph,
    clique_graph,
    community_graph,
    k_core,
    planted_kvcc_graph,
    random_gnm,
)


class TestLkvcs:
    def test_finds_clique_seed(self):
        g = clique_graph(5)
        g.add_edge(0, 9)  # noise
        seed = lkvcs(g, 3, 1)
        assert seed is not None
        assert is_k_vertex_connected(g.subgraph(seed), 3)
        assert 1 in seed

    def test_low_degree_start_rejected(self):
        g = clique_graph(4)
        g.add_edge(0, 9)
        assert lkvcs(g, 3, 9) is None

    def test_no_kvcs_in_ball(self):
        g = circulant_graph(30, 1)  # plain cycle: nothing is 3-connected
        assert lkvcs(g, 3, 0) is None

    def test_alpha_caps_enumeration(self):
        g = clique_graph(12)
        timer = PhaseTimer()
        lkvcs(g, 3, 0, alpha=5, timer=timer)
        assert timer.counter("lkvcs_enumerations") <= 5

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            lkvcs(clique_graph(5), 1, 0)
        with pytest.raises(ParameterError):
            lkvcs(clique_graph(5), 3, 0, alpha=0)

    def test_sweep_covers_clique_ring(self):
        g = community_graph([24], k=3, seed=1)
        seeds = lkvcs_seeds(g, 3)
        covered = set().union(*seeds)
        assert covered == g.vertex_set()
        for seed in seeds:
            assert is_k_vertex_connected(g.subgraph(seed), 3)

    def test_sweep_respects_initial_coverage(self):
        g = community_graph([20], k=3, seed=2)
        seeds = lkvcs_seeds(g, 3, covered=g.vertex_set())
        assert seeds == []


class TestKbfsSeeds:
    def test_seeds_verified_k_connected(self):
        for seed_val in range(4):
            g = planted_kvcc_graph(2, 18, 3, seed=seed_val, bridge_width=2)
            for seed in kbfs_seeds(g, 3):
                assert is_k_vertex_connected(g.subgraph(seed), 3)

    def test_sparse_graph_no_seeds(self):
        g = circulant_graph(20, 1)
        assert kbfs_seeds(g, 3) == []

    def test_splits_loose_components(self):
        # Two communities joined by a thin bridge: even if kBFS lumps
        # them into one forest component, verification splits them.
        g = community_graph([14, 14], k=3, seed=5, bridge_width=2)
        for seed in kbfs_seeds(g, 3):
            assert is_k_vertex_connected(g.subgraph(seed), 3)


class TestCliqueSeeds:
    def test_finds_large_cliques(self):
        g = clique_graph(6)
        seeds = clique_seeds(g, 3)
        assert seeds == [set(range(6))]

    def test_none_below_threshold(self):
        g = circulant_graph(12, 1)  # max clique 2
        assert clique_seeds(g, 3) == []

    def test_clique_ring_fully_covered(self):
        g = circulant_graph(20, 4)  # every 5 consecutive = K5
        covered = set().union(*clique_seeds(g, 4))
        assert covered == g.vertex_set()


class TestQkvcs:
    def test_all_seeds_are_k_vcs(self):
        g = planted_kvcc_graph(
            3, 20, 3, seed=1, periphery_pairs=1, bridge_width=2
        )
        for seed in qkvcs(g, 3):
            assert is_k_vertex_connected(g.subgraph(seed), 3)

    def test_coverage_counters(self):
        g = community_graph([24, 24], k=3, seed=0)
        timer = PhaseTimer()
        qkvcs(g, 3, timer=timer)
        assert timer.counter("clique_covered") > 0
        # every vertex is in a (k+1)-clique in a clique ring
        assert timer.counter("clique_covered") == g.num_vertices

    def test_no_duplicate_or_nested_seeds(self):
        g = community_graph([20], k=3, seed=3)
        seeds = qkvcs(g, 3)
        for i, a in enumerate(seeds):
            for j, b in enumerate(seeds):
                if i != j:
                    assert not a <= b

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            qkvcs(clique_graph(4), 1)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=8, deadline=None)
    def test_random_graph_seeds_verified(self, seed_val):
        g = k_core(random_gnm(30, 110, seed=seed_val), 3)
        if g.num_vertices == 0:
            return
        for seed in qkvcs(g, 3):
            assert is_k_vertex_connected(g.subgraph(seed), 3)
