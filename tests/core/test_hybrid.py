"""Tests for the hybrid (bottom-up seeded, exact) enumerator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import vcce_hybrid, vcce_td
from repro.errors import ParameterError
from repro.graph import (
    Graph,
    clique_graph,
    community_graph,
    nbm_trap_graph,
    planted_kvcc_graph,
    random_gnm,
    ue_trap_graph,
)


class TestExactness:
    def test_matches_td_on_planted(self):
        for seed in range(3):
            g = planted_kvcc_graph(
                3, 22, 3, seed=seed, periphery_pairs=1, bridge_width=2,
                noise_vertices=4,
            )
            assert set(vcce_hybrid(g, 3).components) == set(
                vcce_td(g, 3).components
            )

    def test_matches_td_on_traps(self):
        trap = nbm_trap_graph(4, seed=0)
        assert set(vcce_hybrid(trap, 4).components) == set(
            vcce_td(trap, 4).components
        )
        trap2 = ue_trap_graph(3, tail=4, seed=1)
        assert set(vcce_hybrid(trap2, 3).components) == set(
            vcce_td(trap2, 3).components
        )

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=12, deadline=None)
    def test_matches_td_on_random_graphs(self, seed):
        g = random_gnm(22, 70, seed=seed)
        assert set(vcce_hybrid(g, 3).components) == set(
            vcce_td(g, 3).components
        )

    def test_empty_and_invalid(self):
        assert vcce_hybrid(Graph(), 3).components == []
        with pytest.raises(ParameterError):
            vcce_hybrid(clique_graph(4), 1)


class TestSkipAccounting:
    def test_certifications_skipped_where_heuristic_succeeds(self):
        # On a friendly graph RIPPLE resolves every community, so the
        # hybrid's partition loop certifies them all for free.
        g = community_graph([18, 20], k=3, seed=7, bridge_width=2)
        result = vcce_hybrid(g, 3)
        assert result.timer.counter("certifications_skipped") >= 2
        assert result.algorithm == "VCCE-Hybrid"

    def test_phase_timings_present(self):
        g = community_graph([16], k=3, seed=2)
        result = vcce_hybrid(g, 3)
        assert "bottom_up" in result.timer.phases
        assert "partition" in result.timer.phases
