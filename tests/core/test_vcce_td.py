"""Tests for the exact top-down enumerator (ground truth oracle)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import vcce_td
from repro.errors import ParameterError
from repro.flow import is_k_vertex_connected
from repro.graph import (
    Graph,
    clique_graph,
    community_graph,
    nbm_trap_graph,
    overlapping_cliques_graph,
    planted_kvcc_graph,
    random_gnm,
    ue_trap_graph,
)


def brute_force_kvccs(graph: Graph, k: int) -> set[frozenset]:
    """All maximal k-vertex connected subsets by subset enumeration.

    Exponential: only for graphs with ~12 or fewer vertices.
    """
    vertices = sorted(graph.vertices(), key=repr)
    connected_sets = [
        frozenset(subset)
        for size in range(k + 1, len(vertices) + 1)
        for subset in itertools.combinations(vertices, size)
        if is_k_vertex_connected(graph.subgraph(subset), k)
    ]
    maximal = set()
    for cand in connected_sets:
        if not any(cand < other for other in connected_sets):
            maximal.add(cand)
    return maximal


class TestKnownStructures:
    def test_single_clique(self):
        result = vcce_td(clique_graph(6), 4)
        assert result.components == [frozenset(range(6))]

    def test_clique_too_small(self):
        assert vcce_td(clique_graph(4), 4).components == []

    def test_two_communities(self):
        g = community_graph([12, 14], k=3, seed=0, bridge_width=2)
        result = vcce_td(g, 3)
        assert set(result.components) == {
            frozenset(range(12)),
            frozenset(range(12, 26)),
        }

    def test_periphery_included(self):
        g = community_graph([20], k=3, seed=1, periphery_pairs=2)
        result = vcce_td(g, 3)
        assert result.components == [frozenset(range(20))]

    def test_nbm_trap_two_components(self):
        g = nbm_trap_graph(4, seed=0)
        result = vcce_td(g, 4)
        assert set(result.components) == {
            frozenset(range(12)),
            frozenset(range(12, 24)),
        }

    def test_ue_trap_single_component(self):
        g = ue_trap_graph(3, tail=4, seed=0)
        result = vcce_td(g, 3)
        assert result.components == [frozenset(g.vertex_set())]

    def test_overlapping_kvccs_share_vertices(self):
        # Chain of K6 cliques overlapping by 2 < k=3: each clique is its
        # own 3-VCC and consecutive ones share two vertices.
        g = overlapping_cliques_graph(3, 6, overlap=2, seed=0)
        result = vcce_td(g, 3)
        assert result.num_components == 3
        first, second = result.components[0], result.components[1]
        assert len(set(result.components[0]) & set(result.components[1])) <= 2

    def test_empty_and_sparse(self):
        assert vcce_td(Graph(), 3).components == []
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert vcce_td(g, 2).components == []

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            vcce_td(clique_graph(3), 1)

    def test_figure1_structure(self, paper_figure1_graph):
        g = paper_figure1_graph
        for k, expected in (
            (2, {frozenset(range(1, 16))}),
            (3, {frozenset(range(1, 10)), frozenset(range(10, 15))}),
            (4, {frozenset(range(10, 15))}),
        ):
            assert set(vcce_td(g, k).components) == expected, f"k={k}"


class TestExactnessProperties:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_matches_brute_force(self, seed):
        g = random_gnm(10, 24, seed=seed)
        for k in (2, 3):
            ours = set(vcce_td(g, k).components)
            assert ours == brute_force_kvccs(g, k), f"k={k} seed={seed}"

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_outputs_are_kvccs(self, seed):
        g = planted_kvcc_graph(
            2, 16, 3, seed=seed, periphery_pairs=1, bridge_width=2,
            noise_vertices=4,
        )
        result = vcce_td(g, 3)
        for comp in result.components:
            assert is_k_vertex_connected(g.subgraph(comp), 3)
        # pairwise non-nested
        for a in result.components:
            for b in result.components:
                if a is not b:
                    assert not a < b
