"""Tests for UE, ME, and RME expansion strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PhaseTimer,
    multiple_expansion,
    ring_expansion,
    unitary_expansion,
)
from repro.errors import ParameterError
from repro.flow import is_k_vertex_connected
from repro.graph import (
    Graph,
    circulant_graph,
    clique_graph,
    community_graph,
    planted_kvcc_graph,
    random_gnm,
    ue_trap_graph,
)


def figure2_graph() -> tuple[Graph, set]:
    """The paper's Figure 2 instance: seed K5-ish core, two support pairs.

    Returns (graph, seed). With k=3: v6, v7 each have 2 anchors in the
    seed plus each other; v8, v9 likewise once {v6, v7} joined.
    """
    g = clique_graph(5, offset=1)  # seed {1..5}
    g.add_edge(6, 1)
    g.add_edge(6, 2)
    g.add_edge(7, 4)
    g.add_edge(7, 5)
    g.add_edge(6, 7)
    g.add_edge(8, 6)
    g.add_edge(8, 2)
    g.add_edge(9, 7)
    g.add_edge(9, 3)
    g.add_edge(8, 9)
    return g, {1, 2, 3, 4, 5}


class TestUnitaryExpansion:
    def test_absorbs_high_degree_vertex(self):
        g = clique_graph(4)
        g.add_edge(9, 0)
        g.add_edge(9, 1)
        g.add_edge(9, 2)
        assert unitary_expansion(g, 3, {0, 1, 2, 3}) == {0, 1, 2, 3, 9}

    def test_cascades(self):
        g = clique_graph(4)
        for new, anchors in ((4, (0, 1, 2)), (5, (4, 1, 2))):
            for a in anchors:
                g.add_edge(new, a)
        assert unitary_expansion(g, 3, {0, 1, 2, 3}) == set(range(6))

    def test_stalls_on_figure2(self):
        g, seed = figure2_graph()
        assert unitary_expansion(g, 3, seed) == seed

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            unitary_expansion(clique_graph(3), 1, {0, 1})

    def test_counts_checks(self):
        g = clique_graph(4)
        g.add_edge(9, 0)
        g.add_edge(9, 1)
        g.add_edge(9, 2)
        timer = PhaseTimer()
        unitary_expansion(g, 3, {0, 1, 2, 3}, timer=timer)
        assert timer.counter("ue_checks") >= 1


class TestMultipleExpansion:
    def test_absorbs_figure2_pairs(self):
        g, seed = figure2_graph()
        grown = multiple_expansion(g, 3, seed, hops=None)
        assert grown == set(range(1, 10))

    def test_one_hop_needs_iterations(self):
        # With hops=1 the second pair is reached after the first joins.
        g, seed = figure2_graph()
        grown = multiple_expansion(g, 3, seed, hops=1)
        assert grown == set(range(1, 10))

    def test_result_is_k_connected(self):
        for seed_val in range(4):
            g = planted_kvcc_graph(2, 20, 3, seed=seed_val, bridge_width=2)
            grown = multiple_expansion(g, 3, set(range(6)), hops=1)
            assert is_k_vertex_connected(g.subgraph(grown), 3)

    def test_does_not_cross_thin_bridge(self):
        g = community_graph([16, 16], k=3, seed=1, bridge_width=2)
        grown = multiple_expansion(g, 3, set(range(8)), hops=None)
        assert grown == set(range(16))

    def test_exactness_matches_unrestricted(self):
        # Theorem 2: with hops=None, ME yields the unique maximal set.
        g = ue_trap_graph(3, tail=3, seed=2)
        core = set(range(6))
        grown = multiple_expansion(g, 3, core, hops=None)
        assert grown == g.vertex_set()

    def test_flow_counter(self):
        g, seed = figure2_graph()
        timer = PhaseTimer()
        multiple_expansion(g, 3, seed, hops=1, timer=timer)
        assert timer.counter("me_flow_calls") > 0

    def test_invalid_hops(self):
        with pytest.raises(ParameterError):
            multiple_expansion(clique_graph(5), 3, {0, 1, 2, 3}, hops=0)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            multiple_expansion(clique_graph(5), 0, {0, 1, 2})


class TestRingExpansion:
    def test_absorbs_figure2_pairs(self):
        g, seed = figure2_graph()
        assert ring_expansion(g, 3, seed) == set(range(1, 10))

    def test_walks_around_clique_ring(self):
        g = circulant_graph(30, 3)  # clique ring for k=3
        seed = set(range(7))
        assert ring_expansion(g, 3, seed) == g.vertex_set()

    def test_absorbs_ue_trap_tail(self):
        g = ue_trap_graph(3, tail=5, seed=1)
        grown = ring_expansion(g, 3, set(range(6)))
        assert grown == g.vertex_set()

    def test_misses_mixed_bucket_chain_that_me_absorbs(self):
        # u and t sit in C_2 but are not adjacent; v links them from C_1.
        # The trio is jointly 3-connected with the seed (ME absorbs it),
        # but RME's same-bucket clique rule cannot see it — the known
        # accuracy gap between RIPPLE and RIPPLE-ME (Table IV).
        g = clique_graph(5)
        for edge in (
            ("u", 0), ("u", 1), ("u", "v"),
            ("v", 2), ("v", "t"),
            ("t", 3), ("t", 4),
        ):
            g.add_edge(*edge)
        seed = set(range(5))
        assert ring_expansion(g, 3, seed) == seed
        grown = multiple_expansion(g, 3, seed, hops=None)
        assert grown == seed | {"u", "v", "t"}

    def test_result_always_k_connected(self):
        for seed_val in range(5):
            g = planted_kvcc_graph(
                2, 24, 4, seed=seed_val, periphery_pairs=2, bridge_width=2
            )
            grown = ring_expansion(g, 4, set(range(9)))
            assert is_k_vertex_connected(g.subgraph(grown), 4)

    def test_does_not_cross_two_star_bridge(self):
        g = community_graph(
            [12, 12], k=4, seed=3, bridge_style="two_star"
        )
        grown = ring_expansion(g, 4, set(range(5)))
        assert grown == set(range(12))

    def test_counters(self):
        g, seed = figure2_graph()
        timer = PhaseTimer()
        ring_expansion(g, 3, seed, timer=timer)
        assert timer.counter("rme_cliques_absorbed") >= 1


class TestStrategyHierarchy:
    """UE ⊆ RME ⊆ ME(None) on any input, and all stay k-connected."""

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_inclusion_chain(self, seed_val):
        g = planted_kvcc_graph(
            2, 18, 3, seed=seed_val, periphery_pairs=1, bridge_width=1
        )
        seed = set(range(6))
        ue = unitary_expansion(g, 3, seed)
        rme = ring_expansion(g, 3, seed)
        me = multiple_expansion(g, 3, seed, hops=None)
        assert seed <= ue <= me
        assert seed <= rme <= me
        for grown in (ue, rme, me):
            assert is_k_vertex_connected(g.subgraph(grown), 3)

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_me_sound_on_random_graphs(self, seed_val):
        g = random_gnm(24, 90, seed=seed_val)
        # Grow from any (k+1)-clique seed found in the graph.
        from repro.graph import maximal_cliques_at_least

        seed = next(iter(maximal_cliques_at_least(g, 4)), None)
        if seed is None:
            return
        grown = multiple_expansion(g, 3, set(seed), hops=1)
        assert is_k_vertex_connected(g.subgraph(grown), 3)


class TestCornerCases:
    def test_expansion_of_whole_graph_is_identity(self):
        g = clique_graph(6)
        everything = g.vertex_set()
        assert unitary_expansion(g, 3, everything) == everything
        assert ring_expansion(g, 3, everything) == everything
        assert multiple_expansion(g, 3, everything, hops=None) == everything

    def test_isolated_seed_component(self):
        # seed in one component: expansion never leaks across components
        g = clique_graph(5)
        for u, v in clique_graph(5, offset=10).edges():
            g.add_edge(u, v)
        grown = multiple_expansion(g, 3, set(range(5)), hops=None)
        assert grown == set(range(5))

    def test_rme_timer_counts_consistent(self):
        g = ue_trap_graph(3, tail=3, seed=4)
        timer = PhaseTimer()
        ring_expansion(g, 3, set(range(6)), timer=timer)
        absorbed = timer.counter("rme_cliques_absorbed")
        checks = timer.counter("rme_clique_checks")
        assert checks >= absorbed >= 1
