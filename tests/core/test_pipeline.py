"""Tests for the configurable bottom-up pipeline and its named variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    bottom_up_pipeline,
    ripple,
    ripple_me,
    ripple_no_fbm,
    ripple_no_qkvcs,
    ripple_no_rme,
    vcce_bu,
    vcce_td,
)
from repro.errors import ParameterError
from repro.flow import is_k_vertex_connected
from repro.graph import (
    Graph,
    clique_graph,
    community_graph,
    nbm_trap_graph,
    planted_kvcc_graph,
    ue_trap_graph,
)


class TestPipelineValidation:
    def test_unknown_strategies_raise(self):
        g = clique_graph(5)
        with pytest.raises(ParameterError):
            bottom_up_pipeline(g, 3, seeding="nope")
        with pytest.raises(ParameterError):
            bottom_up_pipeline(g, 3, expansion="nope")
        with pytest.raises(ParameterError):
            bottom_up_pipeline(g, 3, merging="nope")
        with pytest.raises(ParameterError):
            bottom_up_pipeline(g, 1)

    def test_empty_graph(self):
        assert bottom_up_pipeline(Graph(), 3).components == []

    def test_kcore_prunes_everything(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert bottom_up_pipeline(g, 3).components == []

    def test_algorithm_name_recorded(self):
        result = ripple(clique_graph(5), 3)
        assert result.algorithm == "RIPPLE"
        assert vcce_bu(clique_graph(5), 3).algorithm == "VCCE-BU"

    def test_phase_timings_recorded(self):
        result = ripple(community_graph([16], k=3, seed=0), 3)
        for phase in ("kcore", "seeding", "merging", "expansion"):
            assert phase in result.timer.phases


class TestRippleCorrectness:
    def test_single_clique(self):
        assert ripple(clique_graph(6), 4).components == [frozenset(range(6))]

    def test_matches_exact_on_planted_graphs(self):
        for seed in range(3):
            g = planted_kvcc_graph(
                3, 24, 3, seed=seed, periphery_pairs=2, bridge_width=2,
                noise_vertices=5,
            )
            exact = set(vcce_td(g, 3).components)
            ours = set(ripple(g, 3).components)
            assert ours == exact, f"seed={seed}"

    def test_recovers_ue_trap(self):
        g = ue_trap_graph(3, tail=5, seed=3)
        assert ripple(g, 3).components == vcce_td(g, 3).components

    def test_refuses_nbm_trap(self):
        g = nbm_trap_graph(4, seed=1)
        assert set(ripple(g, 4).components) == set(vcce_td(g, 4).components)

    def test_figure1_structure(self, paper_figure1_graph):
        g = paper_figure1_graph
        for k in (2, 3, 4):
            assert set(ripple(g, k).components) == set(
                vcce_td(g, k).components
            ), f"k={k}"

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=6, deadline=None)
    def test_outputs_always_sound(self, seed):
        g = planted_kvcc_graph(
            2, 20, 3, seed=seed, periphery_pairs=1, bridge_width=1
        )
        for comp in ripple(g, 3).components:
            assert is_k_vertex_connected(g.subgraph(comp), 3)


class TestBaselineDefectsReproduced:
    def test_bu_misses_periphery(self):
        g = community_graph([40], k=3, seed=2, periphery_pairs=3)
        exact = vcce_td(g, 3).covered_vertices()
        bu = vcce_bu(g, 3).covered_vertices()
        rp = ripple(g, 3).covered_vertices()
        assert rp == exact
        assert bu < exact  # the 6 periphery vertices are missed

    def test_bu_overmerges_nbm_trap(self):
        g = nbm_trap_graph(4, seed=0)
        bu = vcce_bu(g, 4)
        assert bu.num_components == 1  # wrongly fused
        assert not is_k_vertex_connected(
            g.subgraph(bu.components[0]), 4
        )

    def test_ripple_me_superset_of_ripple_coverage(self):
        g = planted_kvcc_graph(2, 22, 3, seed=9, periphery_pairs=2)
        rp = ripple(g, 3).covered_vertices()
        me = ripple_me(g, 3, hops=1).covered_vertices()
        assert rp <= me


class TestAblations:
    def test_all_variants_run(self):
        g = planted_kvcc_graph(2, 18, 3, seed=4, bridge_width=2)
        for fn, name in (
            (ripple_no_qkvcs, "RIPPLE-noQkVCS"),
            (ripple_no_fbm, "RIPPLE-noFBM"),
            (ripple_no_rme, "RIPPLE-noRME"),
        ):
            result = fn(g, 3)
            assert result.algorithm == name
            assert result.num_components >= 1

    def test_no_fbm_fails_trap(self):
        g = nbm_trap_graph(4, seed=2)
        assert ripple_no_fbm(g, 4).num_components == 1
        assert ripple(g, 4).num_components == 2

    def test_no_rme_misses_periphery(self):
        g = community_graph([40], k=3, seed=6, periphery_pairs=3)
        full = ripple(g, 3).covered_vertices()
        reduced = ripple_no_rme(g, 3).covered_vertices()
        assert reduced < full


class TestRoundOrdering:
    def test_expand_first_is_valid_configuration(self):
        g = planted_kvcc_graph(2, 20, 3, seed=8, bridge_width=2)
        merge_first = bottom_up_pipeline(g, 3, order="merge_first")
        expand_first = bottom_up_pipeline(g, 3, order="expand_first")
        # Both orderings reach the same fixed point on planted graphs.
        assert set(merge_first.components) == set(expand_first.components)

    def test_unknown_order_rejected(self):
        with pytest.raises(ParameterError):
            bottom_up_pipeline(Graph(), 3, order="sideways")
