"""Tests for the local k-VCC query."""

import pytest

from repro.core import kvcc_containing, vcce_td
from repro.errors import ParameterError
from repro.flow import is_k_vertex_connected
from repro.graph import (
    clique_graph,
    community_graph,
    planted_kvcc_graph,
)


class TestQuery:
    def test_finds_local_community(self):
        g = community_graph([20, 24], k=3, seed=3, bridge_width=2)
        comp = kvcc_containing(g, 5, 3)
        assert comp == frozenset(range(20))

    def test_matches_exact_component(self):
        g = planted_kvcc_graph(
            3, 20, 3, seed=7, bridge_width=2, noise_vertices=6
        )
        exact = vcce_td(g, 3)
        for probe in (0, 25, 45):
            comp = kvcc_containing(g, probe, 3)
            assert comp in set(exact.components)
            assert probe in comp

    def test_pruned_vertex_returns_none(self):
        g = clique_graph(5)
        g.add_edge(0, "pendant")
        assert kvcc_containing(g, "pendant", 3) is None

    def test_result_is_valid_kvcc(self):
        from repro.core.verify import verify_component

        g = community_graph([26], k=3, seed=9, periphery_pairs=2)
        comp = kvcc_containing(g, 0, 3)
        report = verify_component(g, comp, 3)
        assert report.is_valid_kvcc

    def test_exact_fallback_on_seedless_regions(self):
        # circulant ring: no local seed exists, only the whole ring
        g = community_graph([30], k=4, seed=2, style="circulant")
        local_only = kvcc_containing(g, 0, 4, exact_fallback=False)
        assert local_only is None
        exact = kvcc_containing(g, 0, 4, exact_fallback=True)
        assert exact == frozenset(range(30))

    def test_validation(self):
        with pytest.raises(ParameterError):
            kvcc_containing(clique_graph(4), 0, 1)
        with pytest.raises(ParameterError):
            kvcc_containing(clique_graph(4), 99, 3)

    def test_result_k_connected_on_random(self):
        from repro.graph import random_gnm

        for seed in range(5):
            g = random_gnm(24, 90, seed=seed)
            for probe in list(g.vertices())[:4]:
                comp = kvcc_containing(g, probe, 3)
                if comp is not None:
                    assert is_k_vertex_connected(g.subgraph(comp), 3)
