"""Tests for NBM (baseline) and FBM (flow-based) merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PhaseTimer,
    flow_based_merge_condition,
    merge_components,
    neighbor_based_merge_condition,
)
from repro.errors import ParameterError
from repro.flow import is_k_vertex_connected
from repro.graph import (
    Graph,
    clique_graph,
    community_graph,
    nbm_trap_graph,
    planted_kvcc_graph,
)


def figure3_like(k: int = 3) -> tuple[Graph, set, set]:
    """Two K5s joined by a two-star pattern: NBM fires, FBM refuses."""
    g = clique_graph(5, offset=0)
    right = clique_graph(5, offset=5)
    for u, v in right.edges():
        g.add_edge(u, v)
    # left centre 0 → k-1 right leaves; right centre 5 → k-1 left leaves.
    for i in range(k - 1):
        g.add_edge(0, 6 + i)
        g.add_edge(5, 1 + i)
    return g, set(range(5)), set(range(5, 10))


def k_merged_pair(k: int = 3) -> tuple[Graph, set, set]:
    """Two cliques sharing k vertices: union genuinely k-connected."""
    g = clique_graph(6, offset=0)
    extra = clique_graph(6, offset=3)  # shares {3, 4, 5}
    for u, v in extra.edges():
        g.add_edge(u, v)
    return g, set(range(6)), set(range(3, 9))


class TestNBM:
    def test_fires_on_true_merge(self):
        g, a, b = k_merged_pair(3)
        assert neighbor_based_merge_condition(g, 3, a, b, PhaseTimer())

    def test_overcounts_two_star(self):
        # The deliberate defect: NBM merges although connectivity is 2.
        g, a, b = figure3_like(3)
        assert neighbor_based_merge_condition(g, 3, a, b, PhaseTimer())
        assert not is_k_vertex_connected(g.subgraph(a | b), 3)

    def test_refuses_disjoint(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert not neighbor_based_merge_condition(
            g, 2, {0, 1}, {2, 3}, PhaseTimer()
        )


class TestFBM:
    def test_fires_on_true_merge(self):
        g, a, b = k_merged_pair(3)
        timer = PhaseTimer()
        assert flow_based_merge_condition(g, 3, a, b, timer)
        # The ≥ k overlap short-circuits before any flow is computed.
        assert timer.counter("fbm_flow_calls") == 0

    def test_fires_via_flow_without_overlap(self):
        # Two K4s joined by 3 disjoint cross edges: union is 3-connected.
        g = clique_graph(4, offset=0)
        other = clique_graph(4, offset=4)
        for u, v in other.edges():
            g.add_edge(u, v)
        for i in range(3):
            g.add_edge(i, 4 + i)
        a, b = set(range(4)), set(range(4, 8))
        timer = PhaseTimer()
        assert flow_based_merge_condition(g, 3, a, b, timer)
        assert timer.counter("fbm_flow_calls") == 1
        assert is_k_vertex_connected(g.subgraph(a | b), 3)

    def test_refuses_two_star(self):
        g, a, b = figure3_like(3)
        assert not flow_based_merge_condition(g, 3, a, b, PhaseTimer())

    def test_refuses_thin_bridge(self):
        g = community_graph([10, 10], k=3, seed=4, bridge_width=2)
        a, b = set(range(10)), set(range(10, 20))
        assert not flow_based_merge_condition(g, 3, a, b, PhaseTimer())

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_fbm_merges_are_always_sound(self, seed):
        g = planted_kvcc_graph(2, 14, 3, seed=seed, bridge_width=2)
        a = set(range(14))
        b = set(range(14, 28))
        timer = PhaseTimer()
        if flow_based_merge_condition(g, 3, a, b, timer):
            assert is_k_vertex_connected(g.subgraph(a | b), 3)


class TestMergeComponents:
    def test_fixed_point_merges_chain(self):
        # Three cliques in a chain, consecutive ones share 3 vertices.
        g = Graph()
        for offset in (0, 3, 6):
            block = clique_graph(6, offset=offset)
            for u, v in block.edges():
                g.add_edge(u, v)
        pool = [set(range(6)), set(range(3, 9)), set(range(6, 12))]
        merged = merge_components(
            g, 3, pool, flow_based_merge_condition
        )
        assert merged == [set(range(12))]

    def test_no_merge_leaves_pool(self):
        g = community_graph([8, 8], k=3, seed=0, bridge_width=1)
        pool = [set(range(8)), set(range(8, 16))]
        merged = merge_components(g, 3, pool, flow_based_merge_condition)
        assert sorted(map(sorted, merged)) == [
            list(range(8)),
            list(range(8, 16)),
        ]

    def test_counts_merges(self):
        g, a, b = k_merged_pair(3)
        timer = PhaseTimer()
        merge_components(g, 3, [a, b], flow_based_merge_condition, timer)
        assert timer.counter("merges") == 1

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            merge_components(Graph(), 0, [], flow_based_merge_condition)

    def test_nbm_wrongly_merges_trap(self):
        g = nbm_trap_graph(4, seed=0)
        left = set(range(12))
        right = set(range(12, 24))
        nbm_pool = merge_components(
            g, 4, [left, right], neighbor_based_merge_condition
        )
        fbm_pool = merge_components(
            g, 4, [left, right], flow_based_merge_condition
        )
        assert len(nbm_pool) == 1  # the defect
        assert len(fbm_pool) == 2  # the fix
