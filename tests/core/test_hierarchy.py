"""Tests for the k-VCC hierarchy (Figure 1's all-k decomposition)."""

import pytest

from repro.core import kvcc_hierarchy, max_kvcc_level, membership_levels, vcce_td
from repro.errors import ParameterError
from repro.graph import Graph, clique_graph, community_graph, random_gnm


class TestHierarchy:
    def test_clique_levels(self):
        levels = kvcc_hierarchy(clique_graph(5))
        assert sorted(levels) == [1, 2, 3, 4]
        for k in levels:
            assert levels[k] == [frozenset(range(5))]

    def test_figure1_graph(self, paper_figure1_graph):
        g = paper_figure1_graph
        levels = kvcc_hierarchy(g)
        assert levels[1] == [frozenset(g.vertex_set())]
        assert levels[2] == [frozenset(range(1, 16))]
        assert set(levels[3]) == {
            frozenset(range(1, 10)),
            frozenset(range(10, 15)),
        }
        assert levels[4] == [frozenset(range(10, 15))]
        assert 5 not in levels

    def test_matches_direct_td_per_level(self):
        g = community_graph([14, 16], k=3, seed=6, bridge_width=2)
        levels = kvcc_hierarchy(g)
        for k in range(2, max(levels) + 1):
            assert set(levels.get(k, [])) == set(vcce_td(g, k).components), k

    def test_nesting_invariant(self):
        g = random_gnm(24, 80, seed=4)
        levels = kvcc_hierarchy(g)
        for k in sorted(levels)[1:]:
            for child in levels[k]:
                assert any(child <= parent for parent in levels[k - 1])

    def test_max_k_cap(self):
        levels = kvcc_hierarchy(clique_graph(6), max_k=2)
        assert sorted(levels) == [1, 2]

    def test_empty_and_edgeless(self):
        assert kvcc_hierarchy(Graph()) == {}
        assert kvcc_hierarchy(Graph.from_edges([], vertices=[1, 2])) == {}

    def test_invalid_max_k(self):
        with pytest.raises(ParameterError):
            kvcc_hierarchy(Graph(), max_k=0)


class TestDerivedQueries:
    def test_max_level(self):
        assert max_kvcc_level(clique_graph(5)) == 4
        assert max_kvcc_level(Graph()) == 0

    def test_membership_levels(self, paper_figure1_graph):
        depth = membership_levels(paper_figure1_graph)
        assert depth[16] == 1   # the pendant vertex
        assert depth[15] == 2   # the connector
        assert depth[1] == 3    # in the 9-vertex 3-VCC
        assert depth[10] == 4   # in the K5
