"""Tests for VCCResult and PhaseTimer."""

import time

from repro.core import PhaseTimer, VCCResult


class TestPhaseTimer:
    def test_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            time.sleep(0.01)
        with timer.phase("work"):
            time.sleep(0.01)
        assert timer.seconds("work") >= 0.02
        assert timer.seconds("other") == 0.0

    def test_counters(self):
        timer = PhaseTimer()
        timer.count("flows")
        timer.count("flows", 4)
        assert timer.counter("flows") == 5
        assert timer.counter("nothing") == 0

    def test_proportions_sum_to_one(self):
        timer = PhaseTimer()
        timer.add_seconds("a", 1.0)
        timer.add_seconds("b", 3.0)
        props = timer.proportions()
        assert props["a"] == 0.25
        assert props["b"] == 0.75
        assert abs(sum(props.values()) - 1.0) < 1e-12

    def test_proportions_empty(self):
        assert PhaseTimer().proportions() == {}

    def test_total(self):
        timer = PhaseTimer()
        timer.add_seconds("a", 2.0)
        timer.add_seconds("b", 1.5)
        assert timer.total_seconds() == 3.5

    def test_copies_are_snapshots(self):
        timer = PhaseTimer()
        timer.count("x")
        counters = timer.counters
        timer.count("x")
        assert counters["x"] == 1


class TestVCCResult:
    def test_components_sorted_and_frozen(self):
        result = VCCResult([{3, 4}, {1, 2, 5}], k=2, algorithm="test")
        assert result.components[0] == frozenset({1, 2, 5})
        assert all(isinstance(c, frozenset) for c in result.components)

    def test_num_components(self):
        result = VCCResult([{1, 2}, {3, 4}], k=2, algorithm="test")
        assert result.num_components == 2

    def test_covered_vertices(self):
        result = VCCResult([{1, 2}, {2, 3}], k=2, algorithm="test")
        assert result.covered_vertices() == {1, 2, 3}

    def test_component_containing(self):
        result = VCCResult([{1, 2, 3}, {4, 5}], k=2, algorithm="test")
        assert result.component_containing(4) == frozenset({4, 5})
        assert result.component_containing(99) is None

    def test_summary_mentions_algorithm(self):
        result = VCCResult([{1, 2}], k=2, algorithm="RIPPLE")
        assert "RIPPLE" in result.summary()
        assert "1" in result.summary()

    def test_empty_summary(self):
        result = VCCResult([], k=3, algorithm="x")
        assert "none" in result.summary()


class TestJsonRoundTrip:
    def test_round_trip(self):
        from repro.core import PhaseTimer

        timer = PhaseTimer()
        timer.add_seconds("seeding", 1.25)
        timer.count("merges", 3)
        result = VCCResult(
            [{1, 2, 3}, {"a", "b"}], k=3, algorithm="RIPPLE", timer=timer
        )
        back = VCCResult.from_json(result.to_json())
        assert back.components == result.components
        assert back.k == 3
        assert back.algorithm == "RIPPLE"
        assert back.timer.seconds("seeding") == 1.25
        assert back.timer.counter("merges") == 3

    def test_bad_document_raises(self):
        import pytest

        from repro.errors import ParseError

        with pytest.raises(ParseError):
            VCCResult.from_json("{}")
        with pytest.raises(ParseError):
            VCCResult.from_json("not json")
