"""Tests for the exact component verification (connectivity + maximality)."""

import pytest

from repro.core import ripple, vcce_bu, vcce_td
from repro.core.verify import verify_component, verify_result
from repro.errors import ParameterError
from repro.graph import (
    clique_graph,
    community_graph,
    nbm_trap_graph,
    ue_trap_graph,
)


class TestVerifyComponent:
    def test_valid_maximal_component(self):
        g = community_graph([16], k=3, seed=1)
        report = verify_component(g, set(range(16)), 3)
        assert report.is_k_connected
        assert report.is_maximal
        assert report.is_valid_kvcc
        assert "OK" in report.describe()

    def test_non_maximal_detected_with_missed_vertices(self):
        g = ue_trap_graph(3, tail=3, seed=0)
        core = set(range(6))  # valid 3-VCS but the tail is absorbable
        report = verify_component(g, core, 3)
        assert report.is_k_connected
        assert not report.is_maximal
        assert len(report.missed_vertices) == 6
        assert "not maximal" in report.describe()

    def test_disconnected_claim_fails(self):
        g = nbm_trap_graph(4, seed=0)
        fused = set(range(24))  # what NBM wrongly produces
        report = verify_component(g, fused, 4)
        assert not report.is_k_connected
        assert not report.is_valid_kvcc
        assert "not 4-vertex connected" in report.describe()

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            verify_component(clique_graph(4), {0, 1, 2}, 1)


class TestVerifyResult:
    def test_exact_output_always_verifies(self):
        g = community_graph([14, 16], k=3, seed=4, periphery_pairs=1)
        result = vcce_td(g, 3)
        reports = verify_result(g, result)
        assert all(r.is_valid_kvcc for r in reports)

    def test_ripple_output_verifies_on_friendly_graphs(self):
        g = community_graph([18, 18], k=3, seed=5, bridge_width=2)
        reports = verify_result(g, ripple(g, 3))
        assert all(r.is_valid_kvcc for r in reports)

    def test_buggy_baseline_is_caught(self):
        # VCCE-BU's NBM over-merge produces a component that fails the
        # connectivity audit — precisely what verify exists to expose.
        g = nbm_trap_graph(4, seed=0)
        reports = verify_result(g, vcce_bu(g, 4))
        assert any(not r.is_valid_kvcc for r in reports)
