"""Docs ↔ CLI drift gate: every documented flag and env var is real.

The docs show `ripple ...` command lines; a renamed or removed flag
must fail CI here rather than rot on the page. Symmetrically, every
``REPRO_*`` environment variable the docs mention must still be read
somewhere in the source or test tree.
"""

import argparse
import re
from pathlib import Path

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

_FLAG = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")
_ENV = re.compile(r"\bREPRO_[A-Z_]+\b")


def _parser_flags(parser: argparse.ArgumentParser) -> set[str]:
    flags: set[str] = set()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                flags |= _parser_flags(sub)
        else:
            flags.update(
                opt for opt in action.option_strings
                if opt.startswith("--")
            )
    return flags


def _documented_flags() -> dict[str, list[str]]:
    """flag -> ["file:line", ...] for every flag on a `ripple` line."""
    sightings: dict[str, list[str]] = {}
    for path in DOC_FILES:
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if "ripple" not in line and "-m repro" not in line:
                continue
            for flag in _FLAG.findall(line):
                sightings.setdefault(flag, []).append(
                    f"{path.relative_to(REPO)}:{number}"
                )
    return sightings


def test_every_documented_flag_exists_in_the_cli():
    known = _parser_flags(build_parser())
    documented = _documented_flags()
    assert len(documented) >= 15  # the grep found real content
    unknown = {
        flag: where
        for flag, where in documented.items()
        if flag not in known
    }
    assert not unknown, (
        f"docs mention flags the CLI does not define: {unknown}"
    )


def test_new_pr_flags_are_documented():
    # The inverse spot-check for this PR's surface: the sharding and
    # backend flags must appear in the docs at all.
    documented = _documented_flags()
    for flag in ("--backend", "--shards", "--replicas", "--shard-k"):
        assert flag in documented, f"{flag} is undocumented"


def test_every_documented_env_var_is_read_somewhere():
    documented: dict[str, list[str]] = {}
    for path in DOC_FILES:
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            for var in _ENV.findall(line):
                documented.setdefault(var, []).append(
                    f"{path.relative_to(REPO)}:{number}"
                )
    assert documented  # the docs do document the env surface
    haystack = ""
    for source in list(REPO.glob("src/**/*.py")) + list(
        REPO.glob("tests/**/*.py")
    ):
        haystack += source.read_text()
    missing = {
        var: where
        for var, where in documented.items()
        if var not in haystack
    }
    assert not missing, (
        f"docs mention env vars nothing reads: {missing}"
    )
